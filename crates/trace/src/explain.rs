//! Critical-path report: renders a [`SpanSummary`] as the `repro
//! explain` text — where client-visible latency comes from, at the
//! median and at the tail, plus the top-k slowest requests broken down
//! by stage.

use crate::span::SpanSummary;

/// Cycles per simulated microsecond.
const CYCLES_PER_US: f64 = 3_000.0;

fn us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US
}

/// Percentage share of `part` in `whole`, 0 when `whole` is 0.
fn share(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

/// Renders the critical-path report for a reconstructed run: request
/// counts, the per-stage p50/p99 decomposition with each stage's share
/// of the summed stage quantile (how the tail's composition differs
/// from the median's), and the `k` slowest requests by stage breakdown.
pub fn render_explain(summary: &SpanSummary, k: usize) -> String {
    let mut out = String::new();
    out.push_str("request tracing — client-visible latency attribution\n");
    out.push_str(&format!(
        "  requests: {} arrived, {} completed, {} failed, {} unfinished\n",
        summary.arrived, summary.completed, summary.failed, summary.unfinished
    ));
    out.push_str(&format!(
        "  retries: {} client, {} admission backoffs, {} admission rejections\n",
        summary.client_retries, summary.admission_retries, summary.admission_rejections
    ));
    out.push_str(&format!(
        "  activity: {} queue entries, {} slices, {} migrations\n",
        summary.queue_enters, summary.slices, summary.migrations
    ));
    out.push_str(&format!(
        "  invariants: {} checks, {} violations\n",
        summary.invariant_checks,
        summary.violations_total()
    ));
    if let Some(detail) = &summary.first_violation {
        out.push_str(&format!("  first violation: {detail}\n"));
    }

    let stages = [
        ("queue", &summary.queue_us),
        ("service", &summary.service_us),
        ("backoff", &summary.backoff_us),
        ("other", &summary.other_us),
    ];
    let p50s: Vec<f64> = stages.iter().map(|(_, s)| s.p50().unwrap_or(0.0)).collect();
    let p99s: Vec<f64> = stages.iter().map(|(_, s)| s.p99().unwrap_or(0.0)).collect();
    let p50_sum: f64 = p50s.iter().sum();
    let p99_sum: f64 = p99s.iter().sum();

    out.push_str("\nstage decomposition (per-request totals, us)\n");
    out.push_str(&format!(
        "  {:<10} {:>12} {:>9} {:>12} {:>9}\n",
        "stage", "p50_us", "p50 %", "p99_us", "p99 %"
    ));
    for (i, (name, _)) in stages.iter().enumerate() {
        out.push_str(&format!(
            "  {:<10} {:>12.1} {:>8.1}% {:>12.1} {:>8.1}%\n",
            name,
            p50s[i],
            share(p50s[i], p50_sum),
            p99s[i],
            share(p99s[i], p99_sum),
        ));
    }
    out.push_str(&format!(
        "  {:<10} {:>12.1} {:>9} {:>12.1} {:>9}\n",
        "visible",
        summary.client_visible_us.p50().unwrap_or(0.0),
        "",
        summary.client_visible_us.p99().unwrap_or(0.0),
        "",
    ));

    let shown = summary.top.len().min(k);
    out.push_str(&format!("\ntop {shown} slowest completed requests\n"));
    for t in summary.top.iter().take(k) {
        out.push_str(&format!(
            "  shard {} req {:>6}: {:>10.1}us = queue {:.1} + service {:.1} \
             + backoff {:.1} + other {:.1}  ({} attempt{})\n",
            t.shard,
            t.rid,
            us(t.total),
            us(t.queue),
            us(t.service),
            us(t.backoff),
            us(t.other),
            t.attempts,
            if t.attempts == 1 { "" } else { "s" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;
    use rbv_sim::Cycles;
    use rbv_telemetry::TraceEvent;

    fn summary() -> SpanSummary {
        let t = Cycles::new;
        let events = vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 1,
                app: "web".into(),
                class: "static".into(),
            },
            TraceEvent::QueueEnter {
                ts: t(0),
                rid: 1,
                queue: 0,
                attempt: 0,
            },
            TraceEvent::SliceBegin {
                ts: t(3000),
                core: 0,
                rid: 1,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::SliceEnd {
                ts: t(9000),
                core: 0,
                rid: 1,
            },
            TraceEvent::RequestEnd {
                ts: t(9000),
                rid: 1,
            },
        ];
        SpanCollector::collect(&events).into_summary()
    }

    #[test]
    fn report_names_every_stage_and_top_entry() {
        let text = render_explain(&summary(), 5);
        for needle in [
            "client-visible latency attribution",
            "queue",
            "service",
            "backoff",
            "other",
            "visible",
            "top 1 slowest",
            "shard 0 req",
            "1 attempt",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_summary_renders_without_panicking() {
        let text = render_explain(&SpanSummary::default(), 3);
        assert!(text.contains("0 arrived"));
        assert!(text.contains("top 0 slowest"));
    }
}
