//! Perfetto span export: retained [`SpanRecord`]s rendered as async
//! request spans with per-attempt sub-spans and flow arrows linking the
//! retry chain.
//!
//! Each serve shard becomes its own process (`pid` = shard + 1) so a
//! multi-shard run loads as side-by-side tracks; within a shard every
//! request is one async track (`id` = request id) holding:
//!
//! * the end-to-end client-visible span (`cat` `"request"`, with the
//!   stage decomposition in `args`);
//! * one `"attempt"` sub-span per client attempt, bounded by the retry
//!   and resumption instants;
//! * a flow arrow (`ph` `"s"` → `"f"`) from each abandoned attempt's
//!   retry instant to the next attempt's first queue entry, so the
//!   viewer draws the causal chain across the backoff gap.

use rbv_telemetry::{Json, PerfettoTrace};

use crate::span::SpanRecord;

/// Cycles per simulated microsecond.
const CYCLES_PER_US: f64 = 3_000.0;

fn us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US
}

fn event(name: &str, cat: &str, ph: &str, ts: f64, pid: f64, id: &str) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::str(name)),
        ("cat".into(), Json::str(cat)),
        ("ph".into(), Json::str(ph)),
        ("ts".into(), Json::Num(ts)),
        ("pid".into(), Json::Num(pid)),
        ("tid".into(), Json::Num(1.0)),
        ("id".into(), Json::str(id)),
    ]
}

/// Renders retained spans — one `(shard, spans)` pair per serve shard,
/// in shard order — as a Perfetto trace.
pub fn spans_to_perfetto(shards: &[(u32, Vec<SpanRecord>)]) -> PerfettoTrace {
    let mut out = Vec::new();
    for (shard, spans) in shards {
        let pid = f64::from(*shard) + 1.0;
        out.push(Json::Obj(vec![
            ("name".into(), Json::str("process_name")),
            ("cat".into(), Json::str("__metadata")),
            ("ph".into(), Json::str("M")),
            ("ts".into(), Json::Num(0.0)),
            ("pid".into(), Json::Num(pid)),
            ("tid".into(), Json::Num(0.0)),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::str(format!("serve shard {shard}")),
                )]),
            ),
        ]));
        for span in spans {
            let id = format!("{:#x}", span.rid);
            let name = format!("req #{}", span.rid);
            let mut begin = event(&name, "request", "b", us(span.arrived), pid, &id);
            begin.push((
                "args".into(),
                Json::Obj(vec![
                    ("completed".into(), Json::Bool(span.completed)),
                    ("queue_us".into(), Json::Num(us(span.queue))),
                    ("service_us".into(), Json::Num(us(span.service))),
                    ("backoff_us".into(), Json::Num(us(span.backoff))),
                    ("other_us".into(), Json::Num(us(span.other))),
                    (
                        "attempts".into(),
                        Json::Num(span.attempts.len() as f64 + 1.0),
                    ),
                ]),
            ));
            out.push(Json::Obj(begin));
            // Per-attempt sub-spans: attempt g runs from its resumption
            // (or first arrival) to its abandonment (or the finish).
            let attempts = span.attempts.len();
            for g in 0..=attempts {
                let start = if g == 0 {
                    span.arrived
                } else {
                    span.attempts[g - 1].1
                };
                let end = if g < attempts {
                    span.attempts[g].0
                } else {
                    span.finished
                };
                out.push(Json::Obj(event(
                    &format!("attempt {g}"),
                    "request_attempt",
                    "b",
                    us(start),
                    pid,
                    &id,
                )));
                out.push(Json::Obj(event(
                    &format!("attempt {g}"),
                    "request_attempt",
                    "e",
                    us(end),
                    pid,
                    &id,
                )));
            }
            // Flow arrows across each backoff gap.
            for (g, &(retry_ts, resume_ts)) in span.attempts.iter().enumerate() {
                let flow_id = format!("{:#x}.{g}", span.rid);
                out.push(Json::Obj(event(
                    "retry",
                    "retry_flow",
                    "s",
                    us(retry_ts),
                    pid,
                    &flow_id,
                )));
                let mut finish = event("retry", "retry_flow", "f", us(resume_ts), pid, &flow_id);
                finish.push(("bp".into(), Json::str("e")));
                out.push(Json::Obj(finish));
            }
            out.push(Json::Obj(event(
                &name,
                "request",
                "e",
                us(span.finished),
                pid,
                &id,
            )));
        }
    }
    PerfettoTrace::from_raw_events(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample_shards() -> Vec<(u32, Vec<SpanRecord>)> {
        vec![
            (
                0,
                vec![SpanRecord {
                    rid: 1,
                    arrived: 0,
                    finished: 900,
                    completed: true,
                    queue: 550,
                    service: 150,
                    backoff: 200,
                    other: 0,
                    attempts: vec![(500, 700)],
                }],
            ),
            (
                1,
                vec![SpanRecord {
                    rid: 1,
                    arrived: 30,
                    finished: 430,
                    completed: false,
                    queue: 400,
                    service: 0,
                    backoff: 0,
                    other: 0,
                    attempts: vec![],
                }],
            ),
        ]
    }

    fn events(doc: &Json) -> &[Json] {
        doc.get("traceEvents").unwrap().as_array().unwrap()
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let trace = spans_to_perfetto(&sample_shards());
        let text = trace.to_json_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert!(!events(&parsed).is_empty());
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    }

    #[test]
    fn async_spans_balance_per_pid_and_id() {
        let doc = spans_to_perfetto(&sample_shards()).to_json();
        let mut depth: HashMap<(i64, String), i64> = HashMap::new();
        for e in events(&doc) {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            if ph != "b" && ph != "e" {
                continue;
            }
            let key = (
                e.get("pid").unwrap().as_f64().unwrap() as i64,
                e.get("id").unwrap().as_str().unwrap().to_string(),
            );
            *depth.entry(key).or_insert(0) += if ph == "b" { 1 } else { -1 };
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
    }

    #[test]
    fn flow_arrows_pair_start_and_finish() {
        let doc = spans_to_perfetto(&sample_shards()).to_json();
        let starts = events(&doc)
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .count();
        let finishes = events(&doc)
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .count();
        assert_eq!(starts, 1, "one retry in the sample");
        assert_eq!(starts, finishes);
    }

    #[test]
    fn shards_map_to_distinct_pids() {
        let doc = spans_to_perfetto(&sample_shards()).to_json();
        let pids: std::collections::BTreeSet<i64> = events(&doc)
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap() as i64)
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn attempt_subspans_cover_every_generation() {
        let doc = spans_to_perfetto(&sample_shards()).to_json();
        let attempt_begins = events(&doc)
            .iter()
            .filter(|e| {
                e.get("cat").unwrap().as_str() == Some("request_attempt")
                    && e.get("ph").unwrap().as_str() == Some("b")
            })
            .count();
        // Shard 0's request has 2 attempts; shard 1's has 1.
        assert_eq!(attempt_begins, 3);
    }
}
