//! Per-request causal span tracing for the RBV reproduction.
//!
//! The engine emits a rich [`TraceEvent`](rbv_telemetry::TraceEvent)
//! stream, but no layer reconstructed what a *request* experienced end
//! to end. This crate closes that gap:
//!
//! * [`span`] — [`SpanCollector`], a streaming
//!   [`TraceSink`](rbv_telemetry::TraceSink) folding the event stream
//!   into per-request causal timelines in bounded memory (state ∝ live
//!   requests), deriving the client-visible latency decomposition
//!   (queue wait / service / retry backoff / admission + network) as
//!   mergeable [`QuantileSketch`](rbv_telemetry::QuantileSketch)es, and
//!   checking the span-accounting and attempt-conservation invariants
//!   for every finished request;
//! * [`export`] — [`spans_to_perfetto`]: retained spans rendered as
//!   Perfetto async tracks with per-attempt sub-spans and flow arrows
//!   linking retry chains;
//! * [`explain`] — [`render_explain`]: the `repro explain` critical-path
//!   report (stage share of p99 vs p50, top-k slowest requests by stage
//!   breakdown);
//! * [`tier`] — [`TierSpanCollector`]: the cross-machine extension —
//!   the `rbv-cluster` event loop's tier-leg/tier-hop stream folded
//!   into per-tier latency/CPI attribution whose stages (per-tier
//!   residence plus network hops) exactly partition each request's
//!   client-visible latency, plus [`cluster_to_perfetto`] rendering one
//!   track-group per machine with cross-tier flow arrows.
//!
//! Everything here is observation-only and deterministic: shard
//!   summaries merged in canonical order serialize byte-identically at
//!   any `--threads` value, and a run with tracing disabled is
//!   bit-identical to one that predates this crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod explain;
pub mod export;
pub mod span;
pub mod tier;

pub use explain::render_explain;
pub use export::spans_to_perfetto;
pub use span::{SpanCollector, SpanRecord, SpanSummary, TopSpan, TOP_K};
pub use tier::{
    cluster_to_perfetto, ClusterHopRecord, ClusterLegRecord, ClusterSpanRecord, TierSpanCollector,
    TierStats, TierSummary, TierTopSpan,
};
