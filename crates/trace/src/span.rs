//! Streaming span reconstruction from the engine's trace events.
//!
//! [`SpanCollector`] is a [`TraceSink`] that folds the event stream into
//! per-request causal timelines as the simulation runs: arrival → queue
//! wait → admission → service slices → retry backoff → completion. State
//! is proportional to the number of *live* requests (the same discipline
//! as `run_simulation_streaming`): a finished request collapses into the
//! aggregate [`SpanSummary`] and, optionally, one compact [`SpanRecord`]
//! for Perfetto export.
//!
//! Every duration is exact `u64` cycle arithmetic bucketed by the phase
//! the request was in when the clock advanced:
//!
//! * **queue** — from a runqueue insertion ([`TraceEvent::QueueEnter`])
//!   to dispatch;
//! * **service** — from dispatch to the end of the execution slice;
//! * **backoff** — from a scheduled retry (admission backoff or client
//!   resubmission) to the request's next admission attempt;
//! * **other** — everything else a client experiences but the server
//!   never accounts: admission-decision instants and inter-machine
//!   network hops between stages.
//!
//! Because the buckets partition the request's lifetime, they sum
//! *exactly* to its client-visible latency (first arrival → final
//! completion) — the [`SpanAccounting`](InvariantKind::SpanAccounting)
//! invariant checked for every finished request. The engine's attempt
//! generation, threaded through [`TraceEvent::QueueEnter`] and
//! [`TraceEvent::RetryScheduled`], is checked against the span's own
//! generation count
//! ([`AttemptConservation`](InvariantKind::AttemptConservation)).

use std::collections::HashMap;

use rbv_guard::{InvariantKind, InvariantMonitor};
use rbv_telemetry::{Json, QuantileSketch, TraceEvent, TraceSink};

/// Slowest-request entries retained per shard and after merging.
pub const TOP_K: usize = 8;

/// Cycles per simulated microsecond (the ledger's latency convention).
const CYCLES_PER_US: f64 = 3_000.0;

/// What the request was doing, between two consecutive events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Between arrival (or rejection) and the admission outcome.
    Admitting,
    /// Sitting in a runqueue awaiting dispatch.
    Queued,
    /// Executing on a core.
    Running,
    /// Waiting out a retry backoff (admission or client).
    Backoff,
    /// Off-CPU between a slice end and the next queue entry (stage
    /// hand-off or inter-machine network hop).
    Limbo,
}

/// Live per-request reconstruction state (dropped the moment the request
/// finishes, keeping collector memory ∝ live requests).
#[derive(Debug, Clone)]
struct LiveSpan {
    /// First-arrival instant in cycles.
    arrived: u64,
    /// Instant the current phase began.
    since: u64,
    /// Current phase.
    phase: Phase,
    /// Client attempt generation the collector expects (0 = first).
    gen: u32,
    /// Cycle totals per bucket.
    queue: u64,
    service: u64,
    backoff: u64,
    other: u64,
    /// Execution slices observed.
    slices: u32,
    /// `(retry_ts, resume_ts)` per client retry, for flow arrows.
    attempts: Vec<(u64, u64)>,
    /// A client retry was scheduled and its resumption queue entry has
    /// not arrived yet.
    awaiting_resume: bool,
}

impl LiveSpan {
    fn new(arrived: u64) -> LiveSpan {
        LiveSpan {
            arrived,
            since: arrived,
            phase: Phase::Admitting,
            gen: 0,
            queue: 0,
            service: 0,
            backoff: 0,
            other: 0,
            slices: 0,
            attempts: Vec::new(),
            awaiting_resume: false,
        }
    }

    /// Charges the time since the last event to the current phase.
    fn charge(&mut self, now: u64) {
        let delta = now.saturating_sub(self.since);
        match self.phase {
            Phase::Queued => self.queue += delta,
            Phase::Running => self.service += delta,
            Phase::Backoff => self.backoff += delta,
            Phase::Admitting | Phase::Limbo => self.other += delta,
        }
        self.since = now;
    }
}

/// One finished request's compact timeline, retained only when the
/// collector is constructed with [`SpanCollector::retaining`] (Perfetto
/// export needs every span; the decomposition alone does not).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Engine request id (unique within one shard).
    pub rid: u64,
    /// First-arrival instant, cycles.
    pub arrived: u64,
    /// Final completion or failure instant, cycles.
    pub finished: u64,
    /// Whether the request completed (vs shed / timed out).
    pub completed: bool,
    /// Queue-wait cycles across all attempts.
    pub queue: u64,
    /// Service cycles across all slices.
    pub service: u64,
    /// Retry-backoff cycles.
    pub backoff: u64,
    /// Admission + network-hop cycles.
    pub other: u64,
    /// `(retry_ts, resume_ts)` cycle instants per client retry, linking
    /// consecutive attempts.
    pub attempts: Vec<(u64, u64)>,
}

/// One slowest-request entry in the summary's top-k list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopSpan {
    /// Shard the request ran in (0 until [`SpanSummary::set_shard`]).
    pub shard: u32,
    /// Engine request id within the shard.
    pub rid: u64,
    /// Client attempts consumed (1 = no retry).
    pub attempts: u32,
    /// Client-visible latency, cycles.
    pub total: u64,
    /// Queue-wait cycles.
    pub queue: u64,
    /// Service cycles.
    pub service: u64,
    /// Retry-backoff cycles.
    pub backoff: u64,
    /// Admission + network-hop cycles.
    pub other: u64,
}

impl TopSpan {
    /// Canonical ordering: slowest first, ties broken by shard then rid
    /// so merged lists are byte-stable.
    fn key(&self) -> (std::cmp::Reverse<u64>, u32, u64) {
        (std::cmp::Reverse(self.total), self.shard, self.rid)
    }
}

/// Mergeable per-shard (or whole-run) span digest: request counts, the
/// latency decomposition sketches, invariant results, and the top-k
/// slowest requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanSummary {
    /// Requests that arrived (RequestBegin events).
    pub arrived: u64,
    /// Requests that completed end to end.
    pub completed: u64,
    /// Requests shed, timed out, or aborted.
    pub failed: u64,
    /// Requests still live when the stream ended (0 on a finished run).
    pub unfinished: u64,
    /// Client-generation retries observed.
    pub client_retries: u64,
    /// Admission-level backoff retries observed.
    pub admission_retries: u64,
    /// Admission rejections observed.
    pub admission_rejections: u64,
    /// Runqueue insertions observed.
    pub queue_enters: u64,
    /// Execution slices observed.
    pub slices: u64,
    /// Work-stealing migrations observed.
    pub migrations: u64,
    /// Per-request queue-wait totals, µs.
    pub queue_us: QuantileSketch,
    /// Per-request service totals, µs.
    pub service_us: QuantileSketch,
    /// Per-request retry-backoff totals, µs.
    pub backoff_us: QuantileSketch,
    /// Per-request admission/network totals, µs.
    pub other_us: QuantileSketch,
    /// Per-request client-visible latency (arrival → completion), µs.
    /// Completed requests only: a shed request has no client-visible
    /// completion.
    pub client_visible_us: QuantileSketch,
    /// Invariant checks performed.
    pub invariant_checks: u64,
    /// Invariant violations, indexed by [`InvariantKind::index`].
    pub invariant_violations: [u64; InvariantKind::ALL.len()],
    /// First violation's labeled detail, if any.
    pub first_violation: Option<String>,
    /// Slowest completed requests, canonical order, at most [`TOP_K`].
    pub top: Vec<TopSpan>,
}

impl SpanSummary {
    /// Total invariant violations across every kind.
    pub fn violations_total(&self) -> u64 {
        self.invariant_violations.iter().sum()
    }

    /// Stamps `shard` onto the top-k entries (called once per shard
    /// before merging, so merged entries stay attributable).
    pub fn set_shard(&mut self, shard: u32) {
        for t in &mut self.top {
            t.shard = shard;
        }
    }

    /// Folds `other` into `self`. Counts add, sketches merge losslessly,
    /// and the top-k lists combine under the canonical ordering — so
    /// folding shard summaries in shard order yields byte-identical
    /// serialized output at any thread count.
    pub fn merge(&mut self, other: &SpanSummary) {
        self.arrived += other.arrived;
        self.completed += other.completed;
        self.failed += other.failed;
        self.unfinished += other.unfinished;
        self.client_retries += other.client_retries;
        self.admission_retries += other.admission_retries;
        self.admission_rejections += other.admission_rejections;
        self.queue_enters += other.queue_enters;
        self.slices += other.slices;
        self.migrations += other.migrations;
        self.queue_us.merge(&other.queue_us);
        self.service_us.merge(&other.service_us);
        self.backoff_us.merge(&other.backoff_us);
        self.other_us.merge(&other.other_us);
        self.client_visible_us.merge(&other.client_visible_us);
        self.invariant_checks += other.invariant_checks;
        for (mine, theirs) in self
            .invariant_violations
            .iter_mut()
            .zip(other.invariant_violations)
        {
            *mine += theirs;
        }
        if self.first_violation.is_none() {
            self.first_violation = other.first_violation.clone();
        }
        self.top.extend(other.top.iter().cloned());
        self.top.sort_by_key(TopSpan::key);
        self.top.truncate(TOP_K);
    }

    /// Serializes the summary with a fixed member order (the serve
    /// ledger's byte-identity depends on it).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str("rbv-trace/v1")),
            ("arrived".into(), Json::Num(self.arrived as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("unfinished".into(), Json::Num(self.unfinished as f64)),
            (
                "client_retries".into(),
                Json::Num(self.client_retries as f64),
            ),
            (
                "admission_retries".into(),
                Json::Num(self.admission_retries as f64),
            ),
            (
                "admission_rejections".into(),
                Json::Num(self.admission_rejections as f64),
            ),
            ("queue_enters".into(), Json::Num(self.queue_enters as f64)),
            ("slices".into(), Json::Num(self.slices as f64)),
            ("migrations".into(), Json::Num(self.migrations as f64)),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("queue".into(), self.queue_us.to_json()),
                    ("service".into(), self.service_us.to_json()),
                    ("backoff".into(), self.backoff_us.to_json()),
                    ("other".into(), self.other_us.to_json()),
                    ("client_visible".into(), self.client_visible_us.to_json()),
                ]),
            ),
            (
                "invariants".into(),
                Json::Obj(vec![
                    ("checks".into(), Json::Num(self.invariant_checks as f64)),
                    (
                        "violations".into(),
                        Json::Num(self.violations_total() as f64),
                    ),
                    (
                        "by_kind".into(),
                        Json::Obj(
                            InvariantKind::ALL
                                .iter()
                                .map(|k| {
                                    (
                                        k.label().to_string(),
                                        Json::Num(self.invariant_violations[k.index()] as f64),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "top".into(),
                Json::Arr(
                    self.top
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("shard".into(), Json::Num(f64::from(t.shard))),
                                ("rid".into(), Json::Num(t.rid as f64)),
                                ("attempts".into(), Json::Num(f64::from(t.attempts))),
                                ("total_cycles".into(), Json::Num(t.total as f64)),
                                ("queue_cycles".into(), Json::Num(t.queue as f64)),
                                ("service_cycles".into(), Json::Num(t.service as f64)),
                                ("backoff_cycles".into(), Json::Num(t.backoff as f64)),
                                ("other_cycles".into(), Json::Num(t.other as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a summary serialized by [`SpanSummary::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed member.
    pub fn from_json(json: &Json) -> Result<SpanSummary, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("trace: missing schema")?;
        if schema != "rbv-trace/v1" {
            return Err(format!("trace: schema {schema:?} != \"rbv-trace/v1\""));
        }
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("trace: missing number {key:?}"))
        };
        let latency = json.get("latency_us").ok_or("trace: missing latency_us")?;
        let sketch = |key: &str| -> Result<QuantileSketch, String> {
            QuantileSketch::from_json(
                latency
                    .get(key)
                    .ok_or_else(|| format!("trace: missing sketch {key:?}"))?,
            )
        };
        let inv = json.get("invariants").ok_or("trace: missing invariants")?;
        let by_kind = inv.get("by_kind").ok_or("trace: missing by_kind")?;
        let mut invariant_violations = [0u64; InvariantKind::ALL.len()];
        for kind in InvariantKind::ALL {
            invariant_violations[kind.index()] = by_kind
                .get(kind.label())
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("trace: missing kind {:?}", kind.label()))?
                as u64;
        }
        let mut top = Vec::new();
        for item in json
            .get("top")
            .and_then(Json::as_array)
            .ok_or("trace: missing top")?
        {
            let field = |key: &str| -> Result<f64, String> {
                item.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("trace: top entry missing {key:?}"))
            };
            top.push(TopSpan {
                shard: field("shard")? as u32,
                rid: field("rid")? as u64,
                attempts: field("attempts")? as u32,
                total: field("total_cycles")? as u64,
                queue: field("queue_cycles")? as u64,
                service: field("service_cycles")? as u64,
                backoff: field("backoff_cycles")? as u64,
                other: field("other_cycles")? as u64,
            });
        }
        Ok(SpanSummary {
            arrived: num("arrived")? as u64,
            completed: num("completed")? as u64,
            failed: num("failed")? as u64,
            unfinished: num("unfinished")? as u64,
            client_retries: num("client_retries")? as u64,
            admission_retries: num("admission_retries")? as u64,
            admission_rejections: num("admission_rejections")? as u64,
            queue_enters: num("queue_enters")? as u64,
            slices: num("slices")? as u64,
            migrations: num("migrations")? as u64,
            queue_us: sketch("queue")?,
            service_us: sketch("service")?,
            backoff_us: sketch("backoff")?,
            other_us: sketch("other")?,
            client_visible_us: sketch("client_visible")?,
            invariant_checks: inv
                .get("checks")
                .and_then(Json::as_f64)
                .ok_or("trace: missing invariant checks")? as u64,
            invariant_violations,
            first_violation: None,
            top,
        })
    }
}

/// Streaming span reconstructor: a [`TraceSink`] holding one small state
/// record per *live* request and folding each finished request into the
/// aggregate [`SpanSummary`] (plus an optional [`SpanRecord`] when
/// retention is on).
#[derive(Debug, Default)]
pub struct SpanCollector {
    live: HashMap<u64, LiveSpan>,
    summary: SpanSummary,
    monitor: InvariantMonitor,
    retain: bool,
    spans: Vec<SpanRecord>,
}

impl SpanCollector {
    /// A collector that keeps only the bounded-memory decomposition.
    pub fn new() -> SpanCollector {
        SpanCollector::default()
    }

    /// A collector that additionally retains one compact [`SpanRecord`]
    /// per finished request (memory ∝ total requests) for Perfetto
    /// export.
    pub fn retaining() -> SpanCollector {
        SpanCollector {
            retain: true,
            ..SpanCollector::default()
        }
    }

    /// Folds every event in `events` through a fresh collector
    /// (convenience for tests and post-hoc reconstruction).
    pub fn collect(events: &[TraceEvent]) -> SpanCollector {
        let mut c = SpanCollector::new();
        for e in events {
            c.record(e.clone());
        }
        c.finish();
        c
    }

    /// Requests currently being reconstructed.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// The retained span records (empty unless built with
    /// [`SpanCollector::retaining`]).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Finalizes and returns the summary, counting still-live requests
    /// as unfinished. Call after the run (or let openloop do it).
    pub fn into_summary(mut self) -> SpanSummary {
        self.seal();
        self.summary
    }

    /// Finalizes and splits the collector into its summary and retained
    /// spans.
    pub fn into_parts(mut self) -> (SpanSummary, Vec<SpanRecord>) {
        self.seal();
        (self.summary, self.spans)
    }

    fn seal(&mut self) {
        self.summary.unfinished = self.live.len() as u64;
        self.summary.invariant_checks = self.monitor.checks();
        self.summary.invariant_violations = self.monitor.violations();
        self.summary.first_violation = self.monitor.first_violation().map(str::to_string);
    }

    /// Closes out a finished request: exact-sum invariant, sketch
    /// observations, top-k maintenance, optional retention.
    fn finish_request(&mut self, rid: u64, now: u64, completed: bool) {
        let Some(mut span) = self.live.remove(&rid) else {
            return;
        };
        span.charge(now);
        let total = now.saturating_sub(span.arrived);
        self.monitor.check_span_accounting(
            rid,
            span.queue,
            span.service,
            span.backoff,
            span.other,
            total,
        );
        self.summary
            .queue_us
            .observe(span.queue as f64 / CYCLES_PER_US);
        self.summary
            .service_us
            .observe(span.service as f64 / CYCLES_PER_US);
        self.summary
            .backoff_us
            .observe(span.backoff as f64 / CYCLES_PER_US);
        self.summary
            .other_us
            .observe(span.other as f64 / CYCLES_PER_US);
        if completed {
            self.summary.completed += 1;
            self.summary
                .client_visible_us
                .observe(total as f64 / CYCLES_PER_US);
            let entry = TopSpan {
                shard: 0,
                rid,
                attempts: span.gen + 1,
                total,
                queue: span.queue,
                service: span.service,
                backoff: span.backoff,
                other: span.other,
            };
            let pos = self
                .summary
                .top
                .binary_search_by_key(&entry.key(), TopSpan::key)
                .unwrap_or_else(|p| p);
            if pos < TOP_K {
                self.summary.top.insert(pos, entry);
                self.summary.top.truncate(TOP_K);
            }
        } else {
            self.summary.failed += 1;
        }
        if self.retain {
            self.spans.push(SpanRecord {
                rid,
                arrived: span.arrived,
                finished: now,
                completed,
                queue: span.queue,
                service: span.service,
                backoff: span.backoff,
                other: span.other,
                attempts: span.attempts,
            });
        }
    }
}

impl TraceSink for SpanCollector {
    fn record(&mut self, event: TraceEvent) {
        let now = event.ts().get();
        match event {
            TraceEvent::RequestBegin { rid, .. } => {
                self.summary.arrived += 1;
                self.live.insert(rid, LiveSpan::new(now));
            }
            TraceEvent::QueueEnter { rid, attempt, .. } => {
                self.summary.queue_enters += 1;
                if let Some(span) = self.live.get_mut(&rid) {
                    span.charge(now);
                    self.monitor
                        .check_attempt_conservation(rid, "queue_enter", span.gen, attempt);
                    if span.awaiting_resume {
                        span.awaiting_resume = false;
                        if let Some(last) = span.attempts.last_mut() {
                            last.1 = now;
                        }
                    }
                    span.phase = Phase::Queued;
                }
            }
            TraceEvent::SliceBegin { rid, .. } => {
                if let Some(span) = self.live.get_mut(&rid) {
                    span.charge(now);
                    span.phase = Phase::Running;
                    span.slices += 1;
                    self.summary.slices += 1;
                }
            }
            TraceEvent::SliceEnd { rid, .. } => {
                if let Some(span) = self.live.get_mut(&rid) {
                    span.charge(now);
                    span.phase = Phase::Limbo;
                }
            }
            TraceEvent::AdmissionRejected { rid, .. } => {
                self.summary.admission_rejections += 1;
                if let Some(span) = self.live.get_mut(&rid) {
                    span.charge(now);
                    span.phase = Phase::Admitting;
                }
            }
            TraceEvent::RetryScheduled {
                rid,
                attempt,
                client,
                ..
            } => {
                if let Some(span) = self.live.get_mut(&rid) {
                    span.charge(now);
                    if client {
                        self.monitor.check_attempt_conservation(
                            rid,
                            "client_retry",
                            span.gen + 1,
                            attempt,
                        );
                        span.gen += 1;
                        span.attempts.push((now, now));
                        span.awaiting_resume = true;
                        self.summary.client_retries += 1;
                    } else {
                        self.summary.admission_retries += 1;
                    }
                    span.phase = Phase::Backoff;
                }
            }
            TraceEvent::Migration { rid, .. } if self.live.contains_key(&rid) => {
                self.summary.migrations += 1;
            }
            TraceEvent::RequestEnd { rid, .. } => {
                self.finish_request(rid, now, true);
            }
            TraceEvent::RequestFailed { rid, .. } => {
                self.finish_request(rid, now, false);
            }
            // Samples, syscalls, scheduler gates, governor/ladder moves,
            // and campaign markers carry no span boundary.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_sim::Cycles;

    fn t(c: u64) -> Cycles {
        Cycles::new(c)
    }

    /// One request: queued 100, runs 200, hops 50, queued 30, runs 70.
    fn simple_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 1,
                app: "web".into(),
                class: "static".into(),
            },
            TraceEvent::QueueEnter {
                ts: t(0),
                rid: 1,
                queue: 0,
                attempt: 0,
            },
            TraceEvent::SliceBegin {
                ts: t(100),
                core: 0,
                rid: 1,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::SliceEnd {
                ts: t(300),
                core: 0,
                rid: 1,
            },
            TraceEvent::QueueEnter {
                ts: t(350),
                rid: 1,
                queue: 1,
                attempt: 0,
            },
            TraceEvent::SliceBegin {
                ts: t(380),
                core: 1,
                rid: 1,
                stage: 1,
                component: "db".into(),
            },
            TraceEvent::SliceEnd {
                ts: t(450),
                core: 1,
                rid: 1,
            },
            TraceEvent::RequestEnd { ts: t(450), rid: 1 },
        ]
    }

    #[test]
    fn stage_buckets_partition_the_lifetime() {
        let c = SpanCollector::collect(&simple_events());
        let s = c.into_summary();
        assert_eq!(s.arrived, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.unfinished, 0);
        assert_eq!(s.top.len(), 1);
        let top = &s.top[0];
        assert_eq!(top.queue, 130); // 100 + 30
        assert_eq!(top.service, 270); // 200 + 70
        assert_eq!(top.backoff, 0);
        assert_eq!(top.other, 50); // the network hop
        assert_eq!(top.total, 450);
        assert_eq!(top.attempts, 1);
        assert_eq!(s.violations_total(), 0);
        assert!(s.invariant_checks >= 3); // 2 queue enters + span accounting
    }

    /// A client retry: attempt 0 is abandoned mid-queue, attempt 1 runs.
    fn retry_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 7,
                app: "web".into(),
                class: "static".into(),
            },
            TraceEvent::QueueEnter {
                ts: t(0),
                rid: 7,
                queue: 0,
                attempt: 0,
            },
            TraceEvent::RetryScheduled {
                ts: t(500),
                rid: 7,
                attempt: 1,
                backoff: Cycles::new(200),
                client: true,
            },
            TraceEvent::QueueEnter {
                ts: t(700),
                rid: 7,
                queue: 2,
                attempt: 1,
            },
            TraceEvent::SliceBegin {
                ts: t(750),
                core: 2,
                rid: 7,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::SliceEnd {
                ts: t(900),
                core: 2,
                rid: 7,
            },
            TraceEvent::RequestEnd { ts: t(900), rid: 7 },
        ]
    }

    #[test]
    fn client_retries_split_queue_and_backoff() {
        let c = SpanCollector::collect(&retry_events());
        assert_eq!(c.live_len(), 0);
        let s = c.into_summary();
        assert_eq!(s.client_retries, 1);
        let top = &s.top[0];
        assert_eq!(top.attempts, 2);
        assert_eq!(top.queue, 550); // 500 on attempt 0 + 50 on attempt 1
        assert_eq!(top.backoff, 200);
        assert_eq!(top.service, 150);
        assert_eq!(top.other, 0);
        assert_eq!(top.total, 900);
        assert_eq!(s.violations_total(), 0, "{:?}", s.first_violation);
    }

    #[test]
    fn attempt_mismatch_trips_the_invariant() {
        let mut events = retry_events();
        // Corrupt the resumption queue entry's generation.
        if let TraceEvent::QueueEnter { attempt, .. } = &mut events[3] {
            *attempt = 9;
        }
        let s = SpanCollector::collect(&events).into_summary();
        assert_eq!(
            s.invariant_violations[InvariantKind::AttemptConservation.index()],
            1
        );
        assert!(s
            .first_violation
            .as_deref()
            .is_some_and(|d| d.contains("queue_enter")));
    }

    #[test]
    fn failed_requests_skip_client_visible_but_keep_accounting() {
        let events = vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 3,
                app: "web".into(),
                class: "static".into(),
            },
            TraceEvent::QueueEnter {
                ts: t(0),
                rid: 3,
                queue: 0,
                attempt: 0,
            },
            TraceEvent::RequestFailed {
                ts: t(400),
                rid: 3,
                reason: "shed".into(),
            },
        ];
        let s = SpanCollector::collect(&events).into_summary();
        assert_eq!(s.failed, 1);
        assert_eq!(s.completed, 0);
        assert!(s.client_visible_us.is_empty());
        assert_eq!(s.queue_us.count(), 1);
        assert!(s.top.is_empty());
        assert_eq!(s.violations_total(), 0);
    }

    #[test]
    fn merge_matches_concatenated_stream() {
        let a = SpanCollector::collect(&simple_events()).into_summary();
        let b = SpanCollector::collect(&retry_events()).into_summary();
        let mut merged = a.clone();
        merged.merge(&b);
        let concat: Vec<TraceEvent> = simple_events().into_iter().chain(retry_events()).collect();
        let whole = SpanCollector::collect(&concat).into_summary();
        assert_eq!(
            merged.to_json().to_string_compact(),
            whole.to_json().to_string_compact()
        );
    }

    #[test]
    fn summary_json_round_trips() {
        let mut s = SpanCollector::collect(&retry_events()).into_summary();
        s.set_shard(3);
        let text = s.to_json().to_string_compact();
        let back = SpanSummary::from_json(&Json::parse(&text).expect("valid")).expect("parses");
        assert_eq!(back.to_json().to_string_compact(), text);
        assert_eq!(back.top[0].shard, 3);
    }

    #[test]
    fn retaining_collector_keeps_span_records() {
        let mut c = SpanCollector::retaining();
        for e in retry_events() {
            c.record(e);
        }
        let (summary, spans) = c.into_parts();
        assert_eq!(summary.completed, 1);
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert_eq!(span.attempts, vec![(500, 700)]);
        assert!(span.completed);
        assert_eq!(
            span.queue + span.service + span.backoff + span.other,
            span.finished - span.arrived
        );
    }

    #[test]
    fn top_k_is_bounded_and_sorted() {
        let mut events = Vec::new();
        for rid in 0..20u64 {
            events.push(TraceEvent::RequestBegin {
                ts: t(0),
                rid,
                app: "web".into(),
                class: "static".into(),
            });
            events.push(TraceEvent::QueueEnter {
                ts: t(0),
                rid,
                queue: 0,
                attempt: 0,
            });
            events.push(TraceEvent::RequestEnd {
                ts: t(100 + rid),
                rid,
            });
        }
        let s = SpanCollector::collect(&events).into_summary();
        assert_eq!(s.top.len(), TOP_K);
        assert_eq!(s.top[0].total, 119);
        assert!(s.top.windows(2).all(|w| w[0].total >= w[1].total));
    }
}
