//! Cross-tier span reconstruction: folds the cluster event loop's
//! [`TraceEvent::TierLeg`]/[`TraceEvent::TierHop`] stream into per-tier
//! latency/CPI attribution whose stages — per-tier residence plus
//! network hops — exactly partition every request's client-visible
//! latency.
//!
//! This is the multi-machine extension of [`crate::span`]: the same
//! streaming discipline (state ∝ live requests, canonical shard merge,
//! fixed-order serialization) applied to a request's whole causal path
//! across frontend/app/DB machines instead of one machine's queue.

use std::collections::HashMap;

use rbv_guard::ClusterInvariants;
use rbv_telemetry::{Json, PerfettoTrace, QuantileSketch, TraceEvent, TraceSink};

use crate::span::TOP_K;

/// Cycles per simulated microsecond.
const CYCLES_PER_US: f64 = 3_000.0;

fn us(cycles: u64) -> f64 {
    cycles as f64 / CYCLES_PER_US
}

/// Aggregate latency/CPI attribution for one cluster machine (= one
/// tier instance): how long requests waited and ran there, and at what
/// CPI.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierStats {
    /// Machine index in the cluster.
    pub machine: u32,
    /// Tier label (`frontend`, `app`, `db`, or `standalone`).
    pub tier: String,
    /// Tier legs resolved on the machine.
    pub legs: u64,
    /// Queueing/wait share of leg residence, in µs.
    pub wait_us: QuantileSketch,
    /// On-CPU service share of leg residence, in µs.
    pub service_us: QuantileSketch,
    /// Whole-leg residence (wait + service), in µs.
    pub leg_us: QuantileSketch,
    /// Per-leg cycles-per-instruction on the machine.
    pub cpi: QuantileSketch,
}

/// One tier leg of a retained cluster span.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLegRecord {
    /// Machine that served the leg.
    pub machine: u32,
    /// Tier label of that machine.
    pub tier: String,
    /// Arrival instant at the machine, in cycles.
    pub arrived: u64,
    /// Completion instant on the machine, in cycles.
    pub finished: u64,
    /// Queueing/wait cycles of the leg.
    pub wait: u64,
    /// On-CPU service cycles of the leg.
    pub service: u64,
}

/// One network hop of a retained cluster span.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHopRecord {
    /// Source machine.
    pub from: u32,
    /// Destination machine.
    pub to: u32,
    /// Departure instant from the source, in cycles.
    pub departed: u64,
    /// Delivery instant at the destination, in cycles.
    pub delivered: u64,
    /// Payload bytes serialized onto the link.
    pub bytes: u64,
}

/// A fully reconstructed cross-machine request span (retained only when
/// the collector is built with [`TierSpanCollector::retaining`], for
/// Perfetto export).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpanRecord {
    /// Cluster-global request id.
    pub rid: u64,
    /// Shard the request ran in (stamped before merging).
    pub shard: u32,
    /// Application label.
    pub app: String,
    /// Request-class label.
    pub class: String,
    /// Client submission instant, in cycles.
    pub arrived: u64,
    /// Client-visible completion instant, in cycles.
    pub finished: u64,
    /// Whether the request completed (failed requests keep their
    /// partial path).
    pub completed: bool,
    /// Tier legs along the causal path, in path order.
    pub legs: Vec<ClusterLegRecord>,
    /// Network hops along the causal path, in path order.
    pub hops: Vec<ClusterHopRecord>,
}

/// One of the top-k slowest requests, by client-visible latency, with
/// its per-tier breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct TierTopSpan {
    /// Shard the request ran in.
    pub shard: u32,
    /// Cluster-global request id.
    pub rid: u64,
    /// Client-visible latency in cycles.
    pub total: u64,
    /// Network share of the total, in cycles.
    pub network: u64,
    /// `(machine, wait_cycles, service_cycles)` per leg, in path order.
    pub legs: Vec<(u32, u64, u64)>,
}

impl TierTopSpan {
    /// Canonical ordering: slowest first, ties broken by shard then
    /// request id, so merged lists serialize identically at any thread
    /// count.
    fn key(&self) -> (std::cmp::Reverse<u64>, u32, u64) {
        (std::cmp::Reverse(self.total), self.shard, self.rid)
    }
}

/// Mergeable aggregate of a cluster run's cross-tier attribution.
///
/// Shard summaries merge in canonical shard order ([`TierSummary::merge`])
/// and serialize with a fixed member order ([`TierSummary::to_json`]),
/// so the `rbv-cluster/v1` ledger stays byte-identical at any
/// `--threads` value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierSummary {
    /// Requests submitted to the cluster.
    pub arrived: u64,
    /// Requests delivered back to the client.
    pub completed: u64,
    /// Requests that failed along the path.
    pub failed: u64,
    /// Requests still live when the collector sealed (must be zero on a
    /// drained run).
    pub unfinished: u64,
    /// Per-machine attribution, in machine-index order.
    pub tiers: Vec<TierStats>,
    /// Network hops delivered.
    pub hops: u64,
    /// Total payload bytes across all hops.
    pub hop_bytes: u64,
    /// Per-hop network time, in µs.
    pub hop_us: QuantileSketch,
    /// Client-visible latency, in µs.
    pub client_visible_us: QuantileSketch,
    /// Cross-tier conservation checks (leg partition per leg, whole-path
    /// partition per request).
    pub invariants: ClusterInvariants,
    /// Top-k slowest requests under the canonical ordering.
    pub top: Vec<TierTopSpan>,
}

impl TierSummary {
    /// Stamps `shard` onto the top-k entries (called once per shard
    /// before merging, so merged entries stay attributable).
    pub fn set_shard(&mut self, shard: u32) {
        for t in &mut self.top {
            t.shard = shard;
        }
    }

    /// Folds `other` into `self`: counts add, sketches merge losslessly,
    /// tiers align by machine index, and the top-k lists combine under
    /// the canonical ordering.
    pub fn merge(&mut self, other: &TierSummary) {
        self.arrived += other.arrived;
        self.completed += other.completed;
        self.failed += other.failed;
        self.unfinished += other.unfinished;
        if self.tiers.len() < other.tiers.len() {
            self.tiers
                .resize_with(other.tiers.len(), TierStats::default);
        }
        for (mine, theirs) in self.tiers.iter_mut().zip(&other.tiers) {
            if mine.tier.is_empty() {
                mine.machine = theirs.machine;
                mine.tier = theirs.tier.clone();
            }
            debug_assert_eq!(mine.tier, theirs.tier, "shards must share a topology");
            mine.legs += theirs.legs;
            mine.wait_us.merge(&theirs.wait_us);
            mine.service_us.merge(&theirs.service_us);
            mine.leg_us.merge(&theirs.leg_us);
            mine.cpi.merge(&theirs.cpi);
        }
        self.hops += other.hops;
        self.hop_bytes += other.hop_bytes;
        self.hop_us.merge(&other.hop_us);
        self.client_visible_us.merge(&other.client_visible_us);
        self.invariants.absorb(&other.invariants);
        self.top.extend(other.top.iter().cloned());
        self.top.sort_by_key(TierTopSpan::key);
        self.top.truncate(TOP_K);
    }

    /// Serializes the summary with a fixed member order (the cluster
    /// ledger's byte-identity depends on it).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("arrived".into(), Json::Num(self.arrived as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("unfinished".into(), Json::Num(self.unfinished as f64)),
            (
                "tiers".into(),
                Json::Arr(
                    self.tiers
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("machine".into(), Json::Num(f64::from(t.machine))),
                                ("tier".into(), Json::str(t.tier.clone())),
                                ("legs".into(), Json::Num(t.legs as f64)),
                                ("wait_us".into(), t.wait_us.to_json()),
                                ("service_us".into(), t.service_us.to_json()),
                                ("leg_us".into(), t.leg_us.to_json()),
                                ("cpi".into(), t.cpi.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "network".into(),
                Json::Obj(vec![
                    ("hops".into(), Json::Num(self.hops as f64)),
                    ("bytes".into(), Json::Num(self.hop_bytes as f64)),
                    ("hop_us".into(), self.hop_us.to_json()),
                ]),
            ),
            ("client_visible_us".into(), self.client_visible_us.to_json()),
            ("invariants".into(), self.invariants.to_json()),
            (
                "top".into(),
                Json::Arr(
                    self.top
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("shard".into(), Json::Num(f64::from(t.shard))),
                                ("rid".into(), Json::Num(t.rid as f64)),
                                ("total_cycles".into(), Json::Num(t.total as f64)),
                                ("network_cycles".into(), Json::Num(t.network as f64)),
                                (
                                    "legs".into(),
                                    Json::Arr(
                                        t.legs
                                            .iter()
                                            .map(|&(machine, wait, service)| {
                                                Json::Obj(vec![
                                                    (
                                                        "machine".into(),
                                                        Json::Num(f64::from(machine)),
                                                    ),
                                                    ("wait_cycles".into(), Json::Num(wait as f64)),
                                                    (
                                                        "service_cycles".into(),
                                                        Json::Num(service as f64),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-request reconstruction state while the request is in flight.
struct LiveTier {
    app: String,
    class: String,
    arrived: u64,
    leg_cycles: u64,
    hop_cycles: u64,
    hop_bytes: u64,
    legs: Vec<ClusterLegRecord>,
    hops: Vec<ClusterHopRecord>,
}

/// Streaming cross-tier span reconstructor: a [`TraceSink`] holding one
/// state record per *live* request and folding each finished request
/// into the aggregate [`TierSummary`].
///
/// The collector consumes the cluster loop's event stream —
/// [`TraceEvent::RequestBegin`], [`TraceEvent::TierLeg`],
/// [`TraceEvent::TierHop`], [`TraceEvent::RequestEnd`] /
/// [`TraceEvent::RequestFailed`] — and ignores every single-machine
/// event kind, so it can share a stream with other sinks.
///
/// # Example
///
/// ```
/// use rbv_sim::Cycles;
/// use rbv_telemetry::{TraceEvent, TraceSink};
/// use rbv_trace::TierSpanCollector;
///
/// let mut collector = TierSpanCollector::new();
/// collector.record(TraceEvent::RequestBegin {
///     ts: Cycles::new(0),
///     rid: 1,
///     app: "tpcc".into(),
///     class: "NewOrder".into(),
/// });
/// collector.record(TraceEvent::TierLeg {
///     ts: Cycles::new(900),
///     rid: 1,
///     machine: 2,
///     tier: "db".into(),
///     leg: 0,
///     arrived: Cycles::new(100),
///     wait_cycles: 300,
///     service_cycles: 500,
///     cpi: 1.7,
/// });
/// collector.record(TraceEvent::TierHop {
///     ts: Cycles::new(100),
///     rid: 1,
///     from_machine: 0,
///     to_machine: 2,
///     hop: 0,
///     departed: Cycles::new(0),
///     bytes: 1024,
/// });
/// collector.record(TraceEvent::TierHop {
///     ts: Cycles::new(1000),
///     rid: 1,
///     from_machine: 2,
///     to_machine: 0,
///     hop: 1,
///     departed: Cycles::new(900),
///     bytes: 256,
/// });
/// collector.record(TraceEvent::RequestEnd { ts: Cycles::new(1000), rid: 1 });
/// let summary = collector.into_summary();
/// assert_eq!(summary.completed, 1);
/// // 800 leg cycles + 200 hop cycles partition the 1000-cycle latency.
/// assert_eq!(summary.invariants.violations(), 0);
/// ```
#[derive(Default)]
pub struct TierSpanCollector {
    live: HashMap<u64, LiveTier>,
    summary: TierSummary,
    retain: bool,
    records: Vec<ClusterSpanRecord>,
}

impl TierSpanCollector {
    /// A summarizing collector (no span retention; bounded memory).
    pub fn new() -> TierSpanCollector {
        TierSpanCollector::default()
    }

    /// A collector that additionally retains every finished request's
    /// [`ClusterSpanRecord`] for Perfetto export. Memory grows with the
    /// number of finished requests — use on bounded runs only.
    pub fn retaining() -> TierSpanCollector {
        TierSpanCollector {
            retain: true,
            ..TierSpanCollector::default()
        }
    }

    /// Live (not yet finished) requests currently tracked.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Seals the collector and returns the aggregate summary. Requests
    /// still live are counted as `unfinished`.
    pub fn into_summary(mut self) -> TierSummary {
        self.seal();
        self.summary
    }

    /// Seals the collector and returns the summary together with the
    /// retained span records (empty unless built with
    /// [`TierSpanCollector::retaining`]).
    pub fn into_parts(mut self) -> (TierSummary, Vec<ClusterSpanRecord>) {
        self.seal();
        let mut records = std::mem::take(&mut self.records);
        records.sort_by_key(|r| r.rid);
        (self.summary, records)
    }

    fn seal(&mut self) {
        self.summary.unfinished += self.live.len() as u64;
        self.live.clear();
    }

    fn tier_stats_mut(&mut self, machine: u32, tier: &str) -> &mut TierStats {
        let idx = machine as usize;
        if self.summary.tiers.len() <= idx {
            self.summary.tiers.resize_with(idx + 1, TierStats::default);
        }
        let stats = &mut self.summary.tiers[idx];
        if stats.tier.is_empty() {
            stats.machine = machine;
            stats.tier = tier.to_string();
        }
        stats
    }

    fn finish_request(&mut self, rid: u64, now: u64, completed: bool) {
        let Some(state) = self.live.remove(&rid) else {
            return;
        };
        let client_visible = now.saturating_sub(state.arrived);
        if completed {
            self.summary.completed += 1;
            // The load-bearing check: per-tier legs plus network hops
            // exactly partition the client-visible latency, in integer
            // cycles.
            self.summary.invariants.check_latency_partition(
                rid,
                state.leg_cycles,
                state.hop_cycles,
                client_visible,
            );
            self.summary.client_visible_us.observe(us(client_visible));
            self.summary.top.push(TierTopSpan {
                shard: 0,
                rid,
                total: client_visible,
                network: state.hop_cycles,
                legs: state
                    .legs
                    .iter()
                    .map(|l| (l.machine, l.wait, l.service))
                    .collect(),
            });
            self.summary.top.sort_by_key(TierTopSpan::key);
            self.summary.top.truncate(TOP_K);
        } else {
            self.summary.failed += 1;
        }
        if self.retain {
            self.records.push(ClusterSpanRecord {
                rid,
                shard: 0,
                app: state.app,
                class: state.class,
                arrived: state.arrived,
                finished: now,
                completed,
                legs: state.legs,
                hops: state.hops,
            });
        }
    }
}

impl TraceSink for TierSpanCollector {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::RequestBegin {
                ts,
                rid,
                app,
                class,
                ..
            } => {
                self.summary.arrived += 1;
                self.live.insert(
                    rid,
                    LiveTier {
                        app,
                        class,
                        arrived: ts.get(),
                        leg_cycles: 0,
                        hop_cycles: 0,
                        hop_bytes: 0,
                        legs: Vec::new(),
                        hops: Vec::new(),
                    },
                );
            }
            TraceEvent::TierLeg {
                ts,
                rid,
                machine,
                tier,
                arrived,
                wait_cycles,
                service_cycles,
                cpi,
                ..
            } => {
                let residence = ts.get().saturating_sub(arrived.get());
                let total = wait_cycles + service_cycles;
                self.summary.invariants.check_leg_partition(
                    rid,
                    wait_cycles,
                    service_cycles,
                    residence,
                );
                let stats = self.tier_stats_mut(machine, &tier);
                stats.legs += 1;
                stats.wait_us.observe(us(wait_cycles));
                stats.service_us.observe(us(service_cycles));
                stats.leg_us.observe(us(total));
                stats.cpi.observe(cpi);
                if let Some(state) = self.live.get_mut(&rid) {
                    state.leg_cycles += total;
                    state.legs.push(ClusterLegRecord {
                        machine,
                        tier,
                        arrived: arrived.get(),
                        finished: ts.get(),
                        wait: wait_cycles,
                        service: service_cycles,
                    });
                }
            }
            TraceEvent::TierHop {
                ts,
                rid,
                from_machine,
                to_machine,
                departed,
                bytes,
                ..
            } => {
                let hop_cycles = ts.get().saturating_sub(departed.get());
                self.summary.hops += 1;
                self.summary.hop_bytes += bytes;
                self.summary.hop_us.observe(us(hop_cycles));
                if let Some(state) = self.live.get_mut(&rid) {
                    state.hop_cycles += hop_cycles;
                    state.hop_bytes += bytes;
                    state.hops.push(ClusterHopRecord {
                        from: from_machine,
                        to: to_machine,
                        departed: departed.get(),
                        delivered: ts.get(),
                        bytes,
                    });
                }
            }
            TraceEvent::RequestEnd { ts, rid } => self.finish_request(rid, ts.get(), true),
            TraceEvent::RequestFailed { ts, rid, .. } => self.finish_request(rid, ts.get(), false),
            _ => {}
        }
    }
}

/// Renders retained cluster spans as a Perfetto trace with **one
/// track-group (process) per machine** and cross-tier flow arrows.
///
/// Each machine becomes a process (`pid` = machine + 1, named
/// `machine <i> · <tier>`); within it, each shard is one thread track.
/// Every tier leg renders as an async span on its machine's track, and
/// every network hop draws a flow arrow (`ph` `"s"` → `"f"`) from the
/// departure instant on the source machine to the delivery instant on
/// the destination machine, so the viewer shows each request's causal
/// path hopping across tiers.
pub fn cluster_to_perfetto(
    records: &[ClusterSpanRecord],
    machines: &[(u32, String)],
) -> PerfettoTrace {
    let mut out = Vec::new();
    for (machine, tier) in machines {
        let pid = f64::from(*machine) + 1.0;
        out.push(Json::Obj(vec![
            ("name".into(), Json::str("process_name")),
            ("cat".into(), Json::str("__metadata")),
            ("ph".into(), Json::str("M")),
            ("ts".into(), Json::Num(0.0)),
            ("pid".into(), Json::Num(pid)),
            ("tid".into(), Json::Num(0.0)),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::str(format!("machine {machine} · {tier}")),
                )]),
            ),
        ]));
    }
    let event = |name: &str, cat: &str, ph: &str, ts: f64, pid: f64, tid: f64, id: &str| {
        vec![
            ("name".into(), Json::str(name)),
            ("cat".into(), Json::str(cat)),
            ("ph".into(), Json::str(ph)),
            ("ts".into(), Json::Num(ts)),
            ("pid".into(), Json::Num(pid)),
            ("tid".into(), Json::Num(tid)),
            ("id".into(), Json::str(id)),
        ]
    };
    for span in records {
        let id = format!("{:#x}", span.rid);
        let tid = f64::from(span.shard) + 1.0;
        for (k, leg) in span.legs.iter().enumerate() {
            let pid = f64::from(leg.machine) + 1.0;
            let name = format!("{} {} #{} leg {k}", span.app, span.class, span.rid);
            let mut begin = event(&name, "leg", "b", us(leg.arrived), pid, tid, &id);
            begin.push((
                "args".into(),
                Json::Obj(vec![
                    ("tier".into(), Json::str(leg.tier.clone())),
                    ("completed".into(), Json::Bool(span.completed)),
                    ("wait_us".into(), Json::Num(us(leg.wait))),
                    ("service_us".into(), Json::Num(us(leg.service))),
                ]),
            ));
            out.push(Json::Obj(begin));
            out.push(Json::Obj(event(
                &name,
                "leg",
                "e",
                us(leg.finished),
                pid,
                tid,
                &id,
            )));
        }
        for (h, hop) in span.hops.iter().enumerate() {
            let flow_id = format!("{:#x}.{h}", span.rid);
            out.push(Json::Obj(event(
                "hop",
                "tier_flow",
                "s",
                us(hop.departed),
                f64::from(hop.from) + 1.0,
                tid,
                &flow_id,
            )));
            let mut finish = event(
                "hop",
                "tier_flow",
                "f",
                us(hop.delivered),
                f64::from(hop.to) + 1.0,
                tid,
                &flow_id,
            );
            finish.push(("bp".into(), Json::str("e")));
            out.push(Json::Obj(finish));
        }
    }
    PerfettoTrace::from_raw_events(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_sim::Cycles;

    fn t(c: u64) -> Cycles {
        Cycles::new(c)
    }

    fn three_tier_events(rid: u64, base: u64) -> Vec<TraceEvent> {
        // frontend leg [base, base+100], hop to app [+100, +150],
        // app leg [+150, +400], hop to db [+400, +450],
        // db leg [+450, +900], egress hop [+900, +960].
        vec![
            TraceEvent::RequestBegin {
                ts: t(base),
                rid,
                app: "rubis".into(),
                class: "SearchItems".into(),
            },
            TraceEvent::TierLeg {
                ts: t(base + 100),
                rid,
                machine: 0,
                tier: "frontend".into(),
                leg: 0,
                arrived: t(base),
                wait_cycles: 40,
                service_cycles: 60,
                cpi: 1.2,
            },
            TraceEvent::TierHop {
                ts: t(base + 150),
                rid,
                from_machine: 0,
                to_machine: 1,
                hop: 0,
                departed: t(base + 100),
                bytes: 1024,
            },
            TraceEvent::TierLeg {
                ts: t(base + 400),
                rid,
                machine: 1,
                tier: "app".into(),
                leg: 1,
                arrived: t(base + 150),
                wait_cycles: 50,
                service_cycles: 200,
                cpi: 1.9,
            },
            TraceEvent::TierHop {
                ts: t(base + 450),
                rid,
                from_machine: 1,
                to_machine: 2,
                hop: 1,
                departed: t(base + 400),
                bytes: 512,
            },
            TraceEvent::TierLeg {
                ts: t(base + 900),
                rid,
                machine: 2,
                tier: "db".into(),
                leg: 2,
                arrived: t(base + 450),
                wait_cycles: 150,
                service_cycles: 300,
                cpi: 2.4,
            },
            TraceEvent::TierHop {
                ts: t(base + 960),
                rid,
                from_machine: 2,
                to_machine: 0,
                hop: 2,
                departed: t(base + 900),
                bytes: 256,
            },
            TraceEvent::RequestEnd {
                ts: t(base + 960),
                rid,
            },
        ]
    }

    fn collect(events: Vec<TraceEvent>, retain: bool) -> TierSpanCollector {
        let mut c = if retain {
            TierSpanCollector::retaining()
        } else {
            TierSpanCollector::new()
        };
        for e in events {
            c.record(e);
        }
        c
    }

    #[test]
    fn legs_and_hops_partition_client_visible_latency() {
        let summary = collect(three_tier_events(1, 0), false).into_summary();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.hops, 3);
        // 3 leg-partition checks + 1 whole-path partition check.
        assert_eq!(summary.invariants.checks(), 4);
        assert_eq!(summary.invariants.violations(), 0);
    }

    #[test]
    fn a_gap_in_the_path_trips_the_partition_invariant() {
        let mut events = three_tier_events(1, 0);
        // Delay the client end past the egress delivery: 40 unaccounted
        // cycles appear in the client-visible latency.
        if let Some(TraceEvent::RequestEnd { ts, .. }) = events.last_mut() {
            *ts = t(1000);
        }
        let summary = collect(events, false).into_summary();
        assert_eq!(summary.invariants.violations(), 1);
        assert!(summary
            .invariants
            .first_violation()
            .is_some_and(|v| v.contains("client-visible")));
    }

    #[test]
    fn merge_matches_concatenated_stream() {
        let mut a = collect(three_tier_events(1, 0), false).into_summary();
        let mut b = collect(three_tier_events(2, 5_000), false).into_summary();
        a.set_shard(0);
        b.set_shard(1);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut both = collect(
            three_tier_events(1, 0)
                .into_iter()
                .chain(three_tier_events(2, 5_000))
                .collect(),
            false,
        )
        .into_summary();
        both.set_shard(0);
        // Shard stamps differ on top entries; compare the aggregates.
        assert_eq!(merged.completed, both.completed);
        assert_eq!(merged.hops, both.hops);
        assert_eq!(merged.hop_bytes, both.hop_bytes);
        assert_eq!(merged.invariants.checks(), both.invariants.checks());
        assert_eq!(
            merged.client_visible_us.to_json().to_string_compact(),
            both.client_visible_us.to_json().to_string_compact()
        );
        for (m, b) in merged.tiers.iter().zip(&both.tiers) {
            assert_eq!(m.legs, b.legs);
            assert_eq!(
                m.service_us.to_json().to_string_compact(),
                b.service_us.to_json().to_string_compact()
            );
        }
    }

    #[test]
    fn summary_serializes_with_fixed_member_order() {
        let summary = collect(three_tier_events(1, 0), false).into_summary();
        let text = summary.to_json().to_string_compact();
        let arrived = text.find("\"arrived\"").expect("arrived present");
        let tiers = text.find("\"tiers\"").expect("tiers present");
        let network = text.find("\"network\"").expect("network present");
        let top = text.find("\"top\"").expect("top present");
        assert!(arrived < tiers && tiers < network && network < top);
    }

    #[test]
    fn perfetto_export_has_one_process_per_machine_and_flow_arrows() {
        let (_, records) = collect(three_tier_events(1, 0), true).into_parts();
        assert_eq!(records.len(), 1);
        let machines = vec![
            (0u32, "frontend".to_string()),
            (1, "app".into()),
            (2, "db".into()),
        ];
        let doc = cluster_to_perfetto(&records, &machines).to_json();
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("trace events");
        let pids: std::collections::BTreeSet<i64> = events
            .iter()
            .map(|e| {
                e.get("pid")
                    .and_then(Json::as_f64)
                    .expect("pid on every event") as i64
            })
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let starts = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("s"))
            .count();
        let finishes = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("f"))
            .count();
        assert_eq!(starts, 3, "one flow arrow per hop");
        assert_eq!(starts, finishes);
    }

    #[test]
    fn failed_requests_keep_their_partial_path() {
        let events = vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 9,
                app: "tpcc".into(),
                class: "NewOrder".into(),
            },
            TraceEvent::TierHop {
                ts: t(50),
                rid: 9,
                from_machine: 0,
                to_machine: 2,
                hop: 0,
                departed: t(0),
                bytes: 700,
            },
            TraceEvent::RequestFailed {
                ts: t(400),
                rid: 9,
                reason: "deadline_abort".into(),
            },
        ];
        let (summary, records) = collect(events, true).into_parts();
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.completed, 0);
        assert_eq!(records.len(), 1);
        assert!(!records[0].completed);
        assert_eq!(records[0].hops.len(), 1);
    }
}
