//! Multicore memory-hierarchy substrate for the Request Behavior Variations
//! reproduction.
//!
//! Two layers model the paper's 4-core Xeon 5160 (private L1s, 4 MB shared
//! L2 per core pair):
//!
//! * [`cache`] + [`hierarchy`] — a trace-driven, inclusive, LRU
//!   set-associative simulator with write-invalidate coherence, driven by
//!   the synthetic address traces in [`trace`]. Used for calibration
//!   ([`calibrate`]), microbenchmarks (Table 1), and validation tests.
//! * [`model`] — a fast analytical contention model (fractional cache
//!   sharing + bandwidth queueing) evaluated once per scheduling tick by
//!   the simulated kernel. Its miss-ratio curve is anchored against the
//!   trace-driven layer (see `tests/calibration.rs`).
//!
//! # Example
//!
//! ```
//! use rbv_mem::model::{MachineSpec, SegmentProfile};
//!
//! let machine = MachineSpec::xeon_5160();
//! let scan = SegmentProfile {
//!     base_cpi: 0.7,
//!     l2_refs_per_ins: 0.008,
//!     working_set_bytes: 360e6,
//!     reuse_locality: 0.5,
//! };
//! let solo = machine.solo(scan);
//! let crowded = machine.evaluate(&vec![Some(scan); 4])[0].unwrap();
//! assert!(crowded.cpi > solo.cpi); // multicore obfuscation (Figure 1)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod calibrate;
pub mod hierarchy;
pub mod model;
pub mod trace;

pub use cache::{CacheConfig, SetAssocCache};
pub use hierarchy::{AccessLevel, CoreCounters, MemoryHierarchy, Topology};
pub use model::{MachineSpec, PerfEstimate, SegmentProfile};
