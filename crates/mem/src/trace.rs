//! Synthetic address-trace generators.
//!
//! These drive the trace-driven [`MemoryHierarchy`](crate::hierarchy) in the
//! calibration tests and the microbenchmark reproductions (Table 1):
//!
//! * [`SequentialStream`] — a pure streaming scan, the access pattern of
//!   Mbench-Data and of TPCH table scans; zero temporal reuse.
//! * [`UniformWorkingSet`] — uniform random references within a working
//!   set; steady-state hit ratio under LRU is `min(1, capacity / ws)`,
//!   the anchor for the analytical miss-ratio curve.
//! * [`ZipfWorkingSet`] — Zipf-skewed references over working-set lines;
//!   models database pages and interpreter data with hot/cold skew.
//! * [`StridedScan`] — fixed-stride walk, for conflict-miss behavior.
//!
//! All generators are infinite iterators of [`Access`] and are deterministic
//! given a [`SimRng`].

use rand::Rng;
use rand_distr::{Distribution, Zipf};
use rbv_sim::SimRng;

/// A single memory access: byte address plus read/write flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// True for a store.
    pub is_write: bool,
}

const LINE: u64 = 64;

/// Infinite streaming scan from `base`, one new line per `line_step`
/// accesses (consecutive accesses walk within the line first, mimicking
/// sequential byte-level reads).
#[derive(Debug, Clone)]
pub struct SequentialStream {
    next: u64,
    step: u64,
    write_permille: u32,
    rng: SimRng,
}

impl SequentialStream {
    /// Creates a stream starting at `base`, advancing `step` bytes per
    /// access, issuing writes with probability `write_permille / 1000`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `write_permille > 1000`.
    pub fn new(base: u64, step: u64, write_permille: u32, rng: SimRng) -> SequentialStream {
        assert!(step > 0, "step must be nonzero");
        assert!(write_permille <= 1000, "write_permille out of range");
        SequentialStream {
            next: base,
            step,
            write_permille,
            rng,
        }
    }
}

impl Iterator for SequentialStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let addr = self.next;
        self.next = self.next.wrapping_add(self.step);
        let is_write = self.rng.gen_range(0..1000) < self.write_permille;
        Some(Access { addr, is_write })
    }
}

/// Uniform random references within a `ws_bytes`-byte working set at `base`.
#[derive(Debug, Clone)]
pub struct UniformWorkingSet {
    base: u64,
    lines: u64,
    write_permille: u32,
    rng: SimRng,
}

impl UniformWorkingSet {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one line or
    /// `write_permille > 1000`.
    pub fn new(base: u64, ws_bytes: u64, write_permille: u32, rng: SimRng) -> UniformWorkingSet {
        let lines = ws_bytes / LINE;
        assert!(lines > 0, "working set smaller than one cache line");
        assert!(write_permille <= 1000, "write_permille out of range");
        UniformWorkingSet {
            base,
            lines,
            write_permille,
            rng,
        }
    }
}

impl Iterator for UniformWorkingSet {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let line = self.rng.gen_range(0..self.lines);
        let offset = self.rng.gen_range(0..LINE);
        let is_write = self.rng.gen_range(0..1000) < self.write_permille;
        Some(Access {
            addr: self.base + line * LINE + offset,
            is_write,
        })
    }
}

/// Zipf-skewed references over working-set lines (rank 1 hottest).
#[derive(Debug, Clone)]
pub struct ZipfWorkingSet {
    base: u64,
    lines: u64,
    dist: Zipf<f64>,
    write_permille: u32,
    rng: SimRng,
}

impl ZipfWorkingSet {
    /// Creates the generator with Zipf exponent `s` over `ws_bytes / 64`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one line, `s` is not
    /// positive and finite, or `write_permille > 1000`.
    pub fn new(
        base: u64,
        ws_bytes: u64,
        s: f64,
        write_permille: u32,
        rng: SimRng,
    ) -> ZipfWorkingSet {
        let lines = ws_bytes / LINE;
        assert!(lines > 0, "working set smaller than one cache line");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        assert!(write_permille <= 1000, "write_permille out of range");
        ZipfWorkingSet {
            base,
            lines,
            dist: Zipf::new(lines, s)
                .unwrap_or_else(|_| unreachable!("zipf parameters validated above")),
            write_permille,
            rng,
        }
    }
}

impl Iterator for ZipfWorkingSet {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        // Zipf samples rank in [1, lines]; scatter ranks over the working
        // set with a multiplicative hash so hot lines are not physically
        // adjacent (avoids unrealistic set conflicts).
        let rank = self.dist.sample(&mut self.rng) as u64 - 1;
        let line = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.lines;
        let is_write = self.rng.gen_range(0..1000) < self.write_permille;
        Some(Access {
            addr: self.base + line * LINE,
            is_write,
        })
    }
}

/// Fixed-stride walk over a region, wrapping at the end.
#[derive(Debug, Clone)]
pub struct StridedScan {
    base: u64,
    region: u64,
    stride: u64,
    pos: u64,
}

impl StridedScan {
    /// Creates a scan over `[base, base + region)` with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `region` is zero.
    pub fn new(base: u64, region: u64, stride: u64) -> StridedScan {
        assert!(stride > 0, "stride must be nonzero");
        assert!(region > 0, "region must be nonzero");
        StridedScan {
            base,
            region,
            stride,
            pos: 0,
        }
    }
}

impl Iterator for StridedScan {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let addr = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.region;
        Some(Access {
            addr,
            is_write: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, SetAssocCache};

    fn run_trace(cache: &mut SetAssocCache, trace: impl Iterator<Item = Access>, n: usize) -> f64 {
        for a in trace.take(n) {
            cache.access(a.addr, 0);
        }
        cache.miss_ratio().unwrap()
    }

    #[test]
    fn sequential_stream_never_reuses_lines() {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4 << 10,
            associativity: 4,
            line_bytes: 64,
        });
        let t = SequentialStream::new(0, 64, 0, SimRng::seed_from(1));
        let ratio = run_trace(&mut c, t, 10_000);
        assert_eq!(ratio, 1.0);
    }

    #[test]
    fn sequential_byte_walk_hits_within_lines() {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4 << 10,
            associativity: 4,
            line_bytes: 64,
        });
        // 8-byte steps: 1 miss then 7 hits per line.
        let t = SequentialStream::new(0, 8, 0, SimRng::seed_from(1));
        let ratio = run_trace(&mut c, t, 64_000);
        assert!((ratio - 0.125).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn uniform_ws_hit_ratio_tracks_capacity_fraction() {
        // LRU steady state over uniform refs: hit ratio ~ capacity / ws.
        let cap = 8u64 << 10;
        for ws_mult in [2u64, 4] {
            let ws = cap * ws_mult;
            let mut c = SetAssocCache::new(CacheConfig {
                size_bytes: cap as usize,
                associativity: 8,
                line_bytes: 64,
            });
            let t = UniformWorkingSet::new(0, ws, 0, SimRng::seed_from(7));
            // warm up
            let t2 = t.clone();
            run_trace(&mut c, t, 50_000);
            c.reset_counters();
            let ratio = run_trace(&mut c, t2.skip(50_000), 100_000);
            let expect = 1.0 - 1.0 / ws_mult as f64;
            assert!(
                (ratio - expect).abs() < 0.06,
                "ws={ws_mult}x: measured {ratio}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn zipf_skew_beats_uniform_at_same_working_set() {
        let cap = 8usize << 10;
        let ws = 64u64 << 10;
        let cfg = CacheConfig {
            size_bytes: cap,
            associativity: 8,
            line_bytes: 64,
        };
        let mut cu = SetAssocCache::new(cfg);
        let mut cz = SetAssocCache::new(cfg);
        run_trace(
            &mut cu,
            UniformWorkingSet::new(0, ws, 0, SimRng::seed_from(3)),
            100_000,
        );
        run_trace(
            &mut cz,
            ZipfWorkingSet::new(0, ws, 1.0, 0, SimRng::seed_from(3)),
            100_000,
        );
        assert!(
            cz.miss_ratio().unwrap() < cu.miss_ratio().unwrap(),
            "zipf {} should miss less than uniform {}",
            cz.miss_ratio().unwrap(),
            cu.miss_ratio().unwrap()
        );
    }

    #[test]
    fn strided_scan_wraps_region() {
        let mut s = StridedScan::new(100, 256, 64);
        let addrs: Vec<u64> = (&mut s).take(6).map(|a| a.addr).collect();
        assert_eq!(addrs, vec![100, 164, 228, 292, 100, 164]);
    }

    #[test]
    fn write_fraction_respected() {
        let t = SequentialStream::new(0, 64, 250, SimRng::seed_from(5));
        let writes = t.take(10_000).filter(|a| a.is_write).count();
        assert!((2_000..3_000).contains(&writes), "writes {writes}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<Access> = UniformWorkingSet::new(0, 1 << 16, 100, SimRng::seed_from(42))
            .take(100)
            .collect();
        let b: Vec<Access> = UniformWorkingSet::new(0, 1 << 16, 100, SimRng::seed_from(42))
            .take(100)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "stride must be nonzero")]
    fn zero_stride_panics() {
        StridedScan::new(0, 64, 0);
    }

    #[test]
    #[should_panic(expected = "working set smaller")]
    fn tiny_working_set_panics() {
        UniformWorkingSet::new(0, 32, 0, SimRng::seed_from(0));
    }
}
