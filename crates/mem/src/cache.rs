//! A single set-associative cache with LRU replacement.
//!
//! This is the building block of the trace-driven [`hierarchy`] simulator
//! used to ground the analytical contention model. Geometry defaults follow
//! the paper's Xeon 5160: a 4 MB, 16-way, 64-byte-line shared L2.
//!
//! [`hierarchy`]: crate::hierarchy

use std::fmt;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: usize,
    /// Number of ways per set. Must divide `size_bytes / line_bytes`.
    pub associativity: usize,
    /// Cache line size in bytes. Must be a power of two.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The paper's shared L2: 4 MB, 16-way, 64-byte lines.
    pub const XEON_5160_L2: CacheConfig = CacheConfig {
        size_bytes: 4 << 20,
        associativity: 16,
        line_bytes: 64,
    };

    /// A Woodcrest-like private L1D: 32 KB, 8-way, 64-byte lines.
    pub const XEON_5160_L1D: CacheConfig = CacheConfig {
        size_bytes: 32 << 10,
        associativity: 8,
        line_bytes: 64,
    };

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    pub fn num_sets(&self) -> usize {
        if let Err(e) = self.validate() {
            panic!("invalid cache geometry: {e}");
        }
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Checks the geometry: power-of-two sizes, nonzero associativity, and
    /// a whole number of sets.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheGeometryError`] describing the first violated rule.
    pub fn validate(&self) -> Result<(), CacheGeometryError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(CacheGeometryError::LineNotPowerOfTwo(self.line_bytes));
        }
        if self.associativity == 0 {
            return Err(CacheGeometryError::ZeroAssociativity);
        }
        if self.size_bytes == 0
            || !self
                .size_bytes
                .is_multiple_of(self.line_bytes * self.associativity)
        {
            return Err(CacheGeometryError::SizeNotDivisible {
                size_bytes: self.size_bytes,
                line_bytes: self.line_bytes,
                associativity: self.associativity,
            });
        }
        let sets = self.size_bytes / (self.line_bytes * self.associativity);
        if !sets.is_power_of_two() {
            return Err(CacheGeometryError::SetsNotPowerOfTwo(sets));
        }
        Ok(())
    }
}

/// Error returned by [`CacheConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheGeometryError {
    /// The line size is zero or not a power of two.
    LineNotPowerOfTwo(usize),
    /// Associativity is zero.
    ZeroAssociativity,
    /// Capacity is not a whole number of sets.
    SizeNotDivisible {
        /// Offending capacity.
        size_bytes: usize,
        /// Line size used.
        line_bytes: usize,
        /// Associativity used.
        associativity: usize,
    },
    /// The implied set count is not a power of two (index bits ill-defined).
    SetsNotPowerOfTwo(usize),
}

impl fmt::Display for CacheGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheGeometryError::LineNotPowerOfTwo(l) => {
                write!(f, "line size {l} is not a nonzero power of two")
            }
            CacheGeometryError::ZeroAssociativity => write!(f, "associativity is zero"),
            CacheGeometryError::SizeNotDivisible {
                size_bytes,
                line_bytes,
                associativity,
            } => write!(
                f,
                "capacity {size_bytes} is not divisible by line {line_bytes} x ways {associativity}"
            ),
            CacheGeometryError::SetsNotPowerOfTwo(s) => {
                write!(f, "implied set count {s} is not a power of two")
            }
        }
    }
}

impl std::error::Error for CacheGeometryError {}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was absent; it has been installed. Contains the evicted
    /// victim line address (line-aligned), if any.
    Miss {
        /// Evicted line address, if an occupied way was replaced.
        evicted: Option<u64>,
    },
}

impl Lookup {
    /// True for [`Lookup::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, Lookup::Hit)
    }
}

/// One way of a set: a tag plus bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    /// Owning core, used by the hierarchy for coherence; `u8::MAX` = shared.
    owner: u8,
    valid: bool,
    /// Larger = more recently used.
    lru_stamp: u64,
}

const EMPTY_WAY: Way = Way {
    tag: 0,
    owner: 0,
    valid: false,
    lru_stamp: 0,
};

/// A set-associative, LRU, write-allocate cache over 64-bit line addresses.
///
/// Stores full line addresses as tags (no aliasing), tracks hit/miss
/// counters, and reports evicted victims so an enclosing hierarchy can
/// maintain inclusion.
///
/// # Example
///
/// ```
/// use rbv_mem::cache::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig {
///     size_bytes: 1024,
///     associativity: 2,
///     line_bytes: 64,
/// });
/// assert!(!c.access(0x40, 0).is_hit()); // cold miss
/// assert!(c.access(0x40, 0).is_hit()); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Way>,
    num_sets: usize,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> SetAssocCache {
        if let Err(e) = config.validate() {
            panic!("invalid cache geometry: {e}");
        }
        let num_sets = config.num_sets();
        SetAssocCache {
            config,
            sets: vec![EMPTY_WAY; num_sets * config.associativity],
            num_sets,
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_index(&self, line: u64) -> usize {
        (line as usize) & (self.num_sets - 1)
    }

    /// Looks up `addr` for `core`, installing the line on a miss (LRU
    /// victim). Returns hit/miss plus any evicted victim line address
    /// (byte address of the line start).
    pub fn access(&mut self, addr: u64, core: u8) -> Lookup {
        self.clock += 1;
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.associativity;
        let ways = &mut self.sets[base..base + self.config.associativity];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            way.lru_stamp = self.clock;
            way.owner = core;
            self.hits += 1;
            return Lookup::Hit;
        }

        self.misses += 1;
        // Prefer an invalid way, else evict the LRU one.
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.lru_stamp))
            .map(|(i, _)| i)
            .unwrap_or_else(|| unreachable!("associativity is nonzero"));
        let victim = ways[victim_idx];
        let evicted = victim.valid.then_some(victim.tag << self.line_shift);
        ways[victim_idx] = Way {
            tag: line,
            owner: core,
            valid: true,
            lru_stamp: self.clock,
        };
        Lookup::Miss { evicted }
    }

    /// True if the line holding `addr` is resident (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.associativity;
        self.sets[base..base + self.config.associativity]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Invalidates the line holding `addr` if resident; returns whether a
    /// line was dropped. Used for inclusion/coherence by the hierarchy.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.associativity;
        let ways = &mut self.sets[base..base + self.config.associativity];
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            way.valid = false;
            true
        } else {
            false
        }
    }

    /// The owning core recorded for the line holding `addr`, if resident.
    pub fn owner_of(&self, addr: u64) -> Option<u8> {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.associativity;
        self.sets[base..base + self.config.associativity]
            .iter()
            .find(|w| w.valid && w.tag == line)
            .map(|w| w.owner)
    }

    /// Total hits since construction or [`SetAssocCache::reset_counters`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction or [`SetAssocCache::reset_counters`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far; `None` before any access.
    pub fn miss_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.misses as f64 / total as f64)
    }

    /// Zeroes the hit/miss counters without touching cache contents
    /// (e.g. to measure steady state after a warm-up pass).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
        }) // 4 sets x 2 ways
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheConfig::XEON_5160_L2.validate().is_ok());
        assert!(CacheConfig::XEON_5160_L1D.validate().is_ok());
        assert_eq!(CacheConfig::XEON_5160_L2.num_sets(), 4096);

        let bad_line = CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 48,
        };
        assert!(matches!(
            bad_line.validate(),
            Err(CacheGeometryError::LineNotPowerOfTwo(48))
        ));

        let zero_ways = CacheConfig {
            size_bytes: 512,
            associativity: 0,
            line_bytes: 64,
        };
        assert!(matches!(
            zero_ways.validate(),
            Err(CacheGeometryError::ZeroAssociativity)
        ));

        let ragged = CacheConfig {
            size_bytes: 500,
            associativity: 2,
            line_bytes: 64,
        };
        assert!(matches!(
            ragged.validate(),
            Err(CacheGeometryError::SizeNotDivisible { .. })
        ));

        let nonpow2_sets = CacheConfig {
            size_bytes: 3 * 128,
            associativity: 2,
            line_bytes: 64,
        };
        assert!(matches!(
            nonpow2_sets.validate(),
            Err(CacheGeometryError::SetsNotPowerOfTwo(3))
        ));
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, 0).is_hit());
        assert!(c.access(0x100, 0).is_hit());
        assert!(c.access(0x13F, 0).is_hit()); // same 64B line
        assert!(!c.access(0x140, 0).is_hit()); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 4 sets; set = (addr/64) % 4
                            // Three lines mapping to set 0: lines 0, 4, 8 -> addrs 0, 256, 512.
        c.access(0, 0);
        c.access(256, 0);
        c.access(0, 0); // touch line 0 again; line 4 (addr 256) is now LRU
        let out = c.access(512, 0);
        assert_eq!(out, Lookup::Miss { evicted: Some(256) });
        assert!(c.contains(0));
        assert!(!c.contains(256));
        assert!(c.contains(512));
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut c = tiny();
        match c.access(0, 0) {
            Lookup::Miss { evicted } => assert_eq!(evicted, None),
            Lookup::Hit => panic!("expected miss"),
        }
        match c.access(256, 0) {
            Lookup::Miss { evicted } => assert_eq!(evicted, None),
            Lookup::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn invalidate_and_contains() {
        let mut c = tiny();
        c.access(0x80, 3);
        assert!(c.contains(0x80));
        assert_eq!(c.owner_of(0x80), Some(3));
        assert!(c.invalidate(0x80));
        assert!(!c.contains(0x80));
        assert!(!c.invalidate(0x80)); // second invalidate is a no-op
        assert_eq!(c.owner_of(0x80), None);
    }

    #[test]
    fn owner_updates_on_access() {
        let mut c = tiny();
        c.access(0x40, 1);
        c.access(0x40, 2);
        assert_eq!(c.owner_of(0x40), Some(2));
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_state_misses() {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4096,
            associativity: 4,
            line_bytes: 64,
        });
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            c.access(a, 0);
        }
        c.reset_counters();
        for _ in 0..10 {
            for &a in &lines {
                c.access(a, 0);
            }
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.miss_ratio(), Some(0.0));
    }

    #[test]
    fn cyclic_overflow_thrashes_lru() {
        // Classic LRU pathology: cyclically scanning capacity+1 lines in one
        // set misses every time.
        let mut c = tiny(); // 2 ways per set
        let set0_lines = [0u64, 256, 512]; // 3 lines, one set, 2 ways
        for _ in 0..5 {
            for &a in &set0_lines {
                c.access(a, 0);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn resident_lines_counts_valid_ways() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.access(0, 0);
        c.access(64, 0);
        assert_eq!(c.resident_lines(), 2);
        c.invalidate(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn miss_ratio_none_before_accesses() {
        let c = tiny();
        assert_eq!(c.miss_ratio(), None);
    }
}
