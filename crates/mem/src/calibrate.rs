//! Calibration of the analytical contention model against the trace-driven
//! simulator.
//!
//! The analytical model's miss-ratio curve (`miss_ratio` in [`model`]) is a
//! claim about LRU behavior: a workload with working set `W` granted an
//! effective share `S` of a shared cache hits its reusable references with
//! probability `locality · (S/W)^exponent`. This module *measures* that
//! curve by replaying synthetic traces through the real set-associative
//! simulator — both solo (share = capacity) and against a streaming
//! co-runner (share squeezed) — and quantifies the fit. The calibration
//! tests keep the two layers from drifting apart; the
//! `calibrate_model` example prints the full curve.
//!
//! [`model`]: crate::model

use crate::cache::{CacheConfig, SetAssocCache};
use crate::model::miss_ratio;
use crate::trace::{Access, UniformWorkingSet, ZipfWorkingSet};
use rbv_sim::SimRng;

/// One measured point of the miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Cache capacity granted to the workload, bytes.
    pub share_bytes: f64,
    /// The workload's working set, bytes.
    pub ws_bytes: f64,
    /// Steady-state miss ratio measured by the trace simulator.
    pub measured: f64,
    /// The analytical curve's prediction at the same point.
    pub predicted: f64,
}

impl CurvePoint {
    /// Absolute prediction error.
    pub fn error(&self) -> f64 {
        (self.measured - self.predicted).abs()
    }
}

/// Reference-trace flavors whose locality the curve must capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Uniform random references: locality 1, exponent 1 in the analytic
    /// curve (steady-state LRU hit ratio = share / working set).
    Uniform,
    /// Zipf(1.0)-skewed references: concave reuse, exponent < 1.
    Zipf,
}

/// Measures the steady-state miss ratio of `kind` over a working set of
/// `ws_bytes`, granted a dedicated cache of `share_bytes` (the share a
/// workload would enjoy inside a bigger shared cache).
///
/// Runs `warmup` accesses before measuring `measure` accesses.
///
/// # Panics
///
/// Panics if sizes don't form a valid cache geometry or the working set is
/// smaller than one line.
pub fn measure_miss_ratio(
    kind: TraceKind,
    share_bytes: usize,
    ws_bytes: u64,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> f64 {
    let mut cache = SetAssocCache::new(CacheConfig {
        size_bytes: share_bytes,
        associativity: 8,
        line_bytes: 64,
    });
    let rng = SimRng::seed_from(seed);
    let mut trace: Box<dyn Iterator<Item = Access>> = match kind {
        TraceKind::Uniform => Box::new(UniformWorkingSet::new(0, ws_bytes, 0, rng)),
        TraceKind::Zipf => Box::new(ZipfWorkingSet::new(0, ws_bytes, 1.0, 0, rng)),
    };
    for a in trace.by_ref().take(warmup) {
        cache.access(a.addr, 0);
    }
    cache.reset_counters();
    for a in trace.take(measure) {
        cache.access(a.addr, 0);
    }
    cache.miss_ratio().unwrap_or(1.0)
}

/// Sweeps share/working-set ratios for `kind` and returns measured vs
/// predicted points, using the analytical curve with the given `locality`
/// and `exponent` parameters.
pub fn sweep_curve(kind: TraceKind, locality: f64, exponent: f64, seed: u64) -> Vec<CurvePoint> {
    // Power-of-two shares from 1/8 of the working set up to 2x (fully
    // fitting); set counts must stay powers of two.
    const WS_BYTES: u64 = 512 << 10;
    let shares: [usize; 5] = [
        (WS_BYTES / 8) as usize,
        (WS_BYTES / 4) as usize,
        (WS_BYTES / 2) as usize,
        WS_BYTES as usize,
        (WS_BYTES * 2) as usize,
    ];
    shares
        .iter()
        .map(|&share| {
            let measured = measure_miss_ratio(kind, share, WS_BYTES, 300_000, 300_000, seed);
            let predicted = miss_ratio(share as f64, WS_BYTES as f64, locality, exponent);
            CurvePoint {
                share_bytes: share as f64,
                ws_bytes: WS_BYTES as f64,
                measured,
                predicted,
            }
        })
        .collect()
}

/// Fits the exponent of the analytical curve to a measured sweep by grid
/// search (locality fixed), returning `(exponent, mean_abs_error)`.
pub fn fit_exponent(points: &[CurvePoint], locality: f64) -> (f64, f64) {
    let mut best = (1.0, f64::INFINITY);
    let mut gamma = 0.3;
    while gamma <= 1.5 {
        let err: f64 = points
            .iter()
            .map(|p| (p.measured - miss_ratio(p.share_bytes, p.ws_bytes, locality, gamma)).abs())
            .sum::<f64>()
            / points.len() as f64;
        if err < best.1 {
            best = (gamma, err);
        }
        gamma += 0.05;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_matches_linear_curve() {
        // LRU steady state under uniform reuse: hit ratio = share / ws,
        // i.e. the analytic curve with locality 1, exponent 1.
        let points = sweep_curve(TraceKind::Uniform, 1.0, 1.0, 42);
        for p in &points {
            assert!(
                p.error() < 0.08,
                "share {}: measured {} vs predicted {}",
                p.share_bytes,
                p.measured,
                p.predicted
            );
        }
    }

    #[test]
    fn zipf_trace_is_concave() {
        // Skewed reuse hits more than the linear curve at small shares:
        // the fitted exponent is below 1.
        let points = sweep_curve(TraceKind::Zipf, 1.0, 1.0, 43);
        let (gamma, err) = fit_exponent(&points, 1.0);
        assert!(gamma < 0.9, "fitted exponent {gamma}");
        assert!(err < 0.10, "fit error {err}");
        // At half share, Zipf must beat (miss less than) uniform.
        let zipf_half = points[2].measured;
        let uniform_half = sweep_curve(TraceKind::Uniform, 1.0, 1.0, 43)[2].measured;
        assert!(zipf_half < uniform_half);
    }

    #[test]
    fn fully_fitting_share_has_near_zero_misses() {
        let m = measure_miss_ratio(TraceKind::Uniform, 1 << 20, 256 << 10, 200_000, 200_000, 1);
        assert!(m < 0.01, "miss ratio {m}");
    }

    #[test]
    fn fit_exponent_recovers_linear_for_uniform() {
        let points = sweep_curve(TraceKind::Uniform, 1.0, 1.0, 44);
        let (gamma, _) = fit_exponent(&points, 1.0);
        assert!((0.85..=1.25).contains(&gamma), "fitted exponent {gamma}");
    }

    #[test]
    fn measured_points_are_deterministic() {
        let a = measure_miss_ratio(TraceKind::Zipf, 64 << 10, 512 << 10, 50_000, 50_000, 7);
        let b = measure_miss_ratio(TraceKind::Zipf, 64 << 10, 512 << 10, 50_000, 50_000, 7);
        assert_eq!(a, b);
    }
}
