//! A trace-driven multicore memory hierarchy.
//!
//! Models the paper's platform: four cores, each with a private L1D, and one
//! shared, inclusive L2 per two-core cluster (two dual-core Xeon 5160
//! packages). Lines are kept inclusive: an L2 eviction back-invalidates the
//! L1 copies; a write by one core invalidates other cores' L1 copies
//! (coherence), which is one of the paper's two explanations for the extra
//! L2 references seen during the TPCH anomaly of Figure 8.
//!
//! The hierarchy exists to *ground* the fast analytical model in
//! [`crate::model`]: the calibration tests replay synthetic traces through
//! both and check that the analytical miss-ratio curve tracks the simulated
//! one.

use crate::cache::{CacheConfig, Lookup, SetAssocCache};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Private L1 hit.
    L1,
    /// Shared L2 hit (an L2 *reference* in counter terms).
    L2,
    /// L2 miss — satisfied from memory.
    Memory,
}

/// Per-core hardware event counters maintained by the hierarchy.
///
/// Mirrors the counter set the paper samples: L2 references and L2 misses
/// (cycles and instructions are accounted by the execution model, not here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Total L1 accesses issued by the core.
    pub accesses: u64,
    /// L1 misses == L2 references.
    pub l2_references: u64,
    /// L2 misses (memory fetches).
    pub l2_misses: u64,
    /// L1 lines lost to cross-core write invalidations.
    pub coherence_invalidations: u64,
}

impl CoreCounters {
    /// L2 miss ratio (misses per reference); `None` with no references.
    pub fn l2_miss_ratio(&self) -> Option<f64> {
        (self.l2_references > 0).then(|| self.l2_misses as f64 / self.l2_references as f64)
    }
}

/// Static description of the machine topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of cores.
    pub cores: usize,
    /// Cores per shared-L2 cluster.
    pub cores_per_cluster: usize,
}

impl Topology {
    /// The paper's machine: 4 cores, L2 shared by pairs.
    pub const XEON_5160_2X2: Topology = Topology {
        cores: 4,
        cores_per_cluster: 2,
    };

    /// Cluster index owning `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= self.cores`.
    pub fn cluster_of(&self, core: usize) -> usize {
        assert!(core < self.cores, "core {core} out of range");
        core / self.cores_per_cluster
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.cores.div_ceil(self.cores_per_cluster)
    }
}

/// Trace-driven two-level inclusive hierarchy.
///
/// # Example
///
/// ```
/// use rbv_mem::hierarchy::{MemoryHierarchy, Topology, AccessLevel};
/// use rbv_mem::cache::CacheConfig;
///
/// let mut m = MemoryHierarchy::new(
///     Topology::XEON_5160_2X2,
///     CacheConfig::XEON_5160_L1D,
///     CacheConfig::XEON_5160_L2,
/// );
/// assert_eq!(m.access(0, 0x1000, false), AccessLevel::Memory); // cold
/// assert_eq!(m.access(0, 0x1000, false), AccessLevel::L1);
/// assert_eq!(m.access(1, 0x1000, false), AccessLevel::L2); // same cluster
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    topology: Topology,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    counters: Vec<CoreCounters>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy with the given cache geometries.
    ///
    /// # Panics
    ///
    /// Panics if either geometry is invalid or the topology has zero cores.
    pub fn new(topology: Topology, l1: CacheConfig, l2: CacheConfig) -> MemoryHierarchy {
        assert!(topology.cores > 0, "need at least one core");
        assert!(
            topology.cores_per_cluster > 0,
            "need at least one core per cluster"
        );
        MemoryHierarchy {
            topology,
            l1: (0..topology.cores)
                .map(|_| SetAssocCache::new(l1))
                .collect(),
            l2: (0..topology.clusters())
                .map(|_| SetAssocCache::new(l2))
                .collect(),
            counters: vec![CoreCounters::default(); topology.cores],
        }
    }

    /// The paper's machine with its cache geometries.
    pub fn xeon_5160() -> MemoryHierarchy {
        MemoryHierarchy::new(
            Topology::XEON_5160_2X2,
            CacheConfig::XEON_5160_L1D,
            CacheConfig::XEON_5160_L2,
        )
    }

    /// The machine topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Performs one data access by `core` at byte address `addr`.
    ///
    /// Returns which level satisfied it, updates counters, maintains
    /// inclusion (L2 evictions back-invalidate L1) and write coherence
    /// (a write invalidates the line in *other* cores' L1s in the same
    /// cluster — cross-cluster sharing is handled identically).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, is_write: bool) -> AccessLevel {
        assert!(core < self.topology.cores, "core {core} out of range");
        self.counters[core].accesses += 1;

        if is_write {
            // Coherence: strip the line from every *other* L1.
            for other in 0..self.topology.cores {
                if other != core && self.l1[other].invalidate(addr) {
                    self.counters[other].coherence_invalidations += 1;
                }
            }
        }

        if self.l1[core].access(addr, core as u8).is_hit() {
            return AccessLevel::L1;
        }

        // L1 miss => L2 reference.
        self.counters[core].l2_references += 1;
        let cluster = self.topology.cluster_of(core);
        match self.l2[cluster].access(addr, core as u8) {
            Lookup::Hit => AccessLevel::L2,
            Lookup::Miss { evicted } => {
                self.counters[core].l2_misses += 1;
                if let Some(victim) = evicted {
                    // Inclusion: the victim may still live in L1s of this
                    // cluster; back-invalidate it.
                    let lo = cluster * self.topology.cores_per_cluster;
                    let hi = (lo + self.topology.cores_per_cluster).min(self.topology.cores);
                    for l1 in &mut self.l1[lo..hi] {
                        l1.invalidate(victim);
                    }
                }
                AccessLevel::Memory
            }
        }
    }

    /// Counters for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn counters(&self, core: usize) -> CoreCounters {
        self.counters[core]
    }

    /// Zeroes all per-core counters (cache contents untouched).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = CoreCounters::default();
        }
        for l1 in &mut self.l1 {
            l1.reset_counters();
        }
        for l2 in &mut self.l2 {
            l2.reset_counters();
        }
    }

    /// Shared-L2 miss ratio of `cluster` since the last reset.
    pub fn l2_miss_ratio(&self, cluster: usize) -> Option<f64> {
        self.l2[cluster].miss_ratio()
    }
}

/// Exhaustive inclusion check over a bounded address range, for tests.
///
/// Walks `0..range_bytes` line by line; wherever the L1 of `core` holds the
/// line, asserts the cluster L2 holds it too.
pub fn inclusion_holds_over(m: &MemoryHierarchy, core: usize, range_bytes: u64) -> bool {
    let line = 64u64;
    let cluster = m.topology.cluster_of(core);
    let mut addr = 0;
    while addr < range_bytes {
        if m.l1[core].contains(addr) && !m.l2[cluster].contains(addr) {
            return false;
        }
        addr += line;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(
            Topology {
                cores: 4,
                cores_per_cluster: 2,
            },
            CacheConfig {
                size_bytes: 1 << 10, // 1 KB L1
                associativity: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 4 << 10, // 4 KB L2
                associativity: 4,
                line_bytes: 64,
            },
        )
    }

    #[test]
    fn topology_cluster_mapping() {
        let t = Topology::XEON_5160_2X2;
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(1), 0);
        assert_eq!(t.cluster_of(2), 1);
        assert_eq!(t.cluster_of(3), 1);
        assert_eq!(t.clusters(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_of_out_of_range_panics() {
        Topology::XEON_5160_2X2.cluster_of(4);
    }

    #[test]
    fn levels_resolve_in_order() {
        let mut m = small();
        assert_eq!(m.access(0, 0x2000, false), AccessLevel::Memory);
        assert_eq!(m.access(0, 0x2000, false), AccessLevel::L1);
        // Sibling core in the same cluster: misses its L1, hits shared L2.
        assert_eq!(m.access(1, 0x2000, false), AccessLevel::L2);
        // Core in the other cluster: different L2, memory again.
        assert_eq!(m.access(2, 0x2000, false), AccessLevel::Memory);
    }

    #[test]
    fn counters_track_references_and_misses() {
        let mut m = small();
        m.access(0, 0, false); // mem
        m.access(0, 0, false); // l1
        m.access(0, 64, false); // mem
        let c = m.counters(0);
        assert_eq!(c.accesses, 3);
        assert_eq!(c.l2_references, 2);
        assert_eq!(c.l2_misses, 2);
        assert_eq!(c.l2_miss_ratio(), Some(1.0));
    }

    #[test]
    fn write_invalidates_other_l1s() {
        let mut m = small();
        m.access(0, 0x100, false);
        m.access(1, 0x100, false);
        assert_eq!(m.access(1, 0x100, false), AccessLevel::L1);
        // Core 0 writes the line: core 1 loses its L1 copy.
        m.access(0, 0x100, true);
        assert_eq!(m.access(1, 0x100, false), AccessLevel::L2);
        assert_eq!(m.counters(1).coherence_invalidations, 1);
    }

    #[test]
    fn coherence_misses_inflate_l2_references() {
        // The Figure 8 effect: ping-ponged writes raise sibling L2 refs.
        let mut m = small();
        let mut quiet = small();
        for i in 0..200u64 {
            let addr = (i % 8) * 64;
            m.access(0, addr, true);
            m.access(1, addr, true);
            quiet.access(0, addr, false);
            quiet.access(1, addr, false);
        }
        assert!(
            m.counters(1).l2_references > quiet.counters(1).l2_references,
            "write sharing should add L2 references"
        );
    }

    #[test]
    fn inclusion_maintained_under_pressure() {
        let mut m = small();
        // Touch far more lines than L2 capacity from both cores of cluster 0.
        for i in 0..10_000u64 {
            m.access((i % 2) as usize, (i * 64) % (64 << 10), false);
        }
        assert!(inclusion_holds_over(&m, 0, 64 << 10));
        assert!(inclusion_holds_over(&m, 1, 64 << 10));
    }

    #[test]
    fn shared_cache_contention_raises_miss_ratio() {
        // One core alone fits its working set in L2; add a streaming
        // sibling and its miss ratio rises. This is the phenomenon behind
        // Figure 1's multicore obfuscation.
        let ws: Vec<u64> = (0..32).map(|i| i * 64).collect(); // 2 KB, fits 4 KB L2

        let mut alone = small();
        for _ in 0..50 {
            for &a in &ws {
                alone.access(0, a, false);
            }
        }
        alone.reset_counters();
        for _ in 0..50 {
            for &a in &ws {
                alone.access(0, a, false);
            }
        }
        let alone_ratio = alone.counters(0).l2_miss_ratio().unwrap_or(0.0);

        let mut shared = small();
        let mut stream_addr: u64 = 1 << 20;
        for round in 0..100 {
            for &a in &ws {
                shared.access(0, a, false);
                // Sibling streams new lines through the same L2 at 4x the
                // victim's rate, overwhelming LRU retention.
                if round >= 50 {
                    for _ in 0..4 {
                        shared.access(1, stream_addr, false);
                        stream_addr += 64;
                    }
                }
            }
            if round == 50 {
                shared.reset_counters();
            }
        }
        let shared_ratio = shared.counters(0).l2_miss_ratio().unwrap_or(0.0);
        assert!(
            shared_ratio > alone_ratio,
            "contention should raise miss ratio: alone={alone_ratio} shared={shared_ratio}"
        );
    }

    #[test]
    fn reset_counters_clears_everything() {
        let mut m = small();
        m.access(0, 0, true);
        m.reset_counters();
        assert_eq!(m.counters(0), CoreCounters::default());
        assert_eq!(m.l2_miss_ratio(0), None);
    }

    #[test]
    fn xeon_constructor_matches_paper_geometry() {
        let m = MemoryHierarchy::xeon_5160();
        assert_eq!(m.topology().cores, 4);
        assert_eq!(m.topology().cores_per_cluster, 2);
    }
}
