//! Analytical multicore performance model.
//!
//! Replaying hundreds of millions of instructions per request (a single
//! WeBWorK request executes ~600 M instructions) through the trace-driven
//! simulator is infeasible, so the execution engine in `rbv-os` advances
//! time at scheduling-tick granularity using this analytical model. The
//! model captures exactly the two multicore effects the paper attributes
//! request behavior variation to:
//!
//! 1. **Shared L2 capacity contention** — co-running execution segments
//!    divide the shared cache in proportion to their *insertion pressure*
//!    (miss rate × reference rate, plus a small retention credit for
//!    re-touched resident lines), capped at each segment's working set.
//!    This is the standard LRU occupancy fixed point: a segment whose
//!    share falls below its working set sees its miss ratio rise along a
//!    concave curve, which in turn raises its insertion pressure, until
//!    the system balances.
//! 2. **Memory bandwidth contention** — total miss traffic inflates the
//!    effective memory latency through an M/M/1-style queueing factor,
//!    which is what degrades streaming workloads (TPCH) even when they
//!    have no cache share worth losing.
//!
//! The miss-ratio curve is anchored by the trace-driven simulator: for a
//! uniform working set of `W` bytes and an effective share of `S` bytes,
//! LRU steady state hits with probability `S/W`, which is the curve at
//! locality 1, exponent 1 (see the calibration tests).
//!
//! CPI composition:
//!
//! ```text
//! cpi = base_cpi + refs_per_ins * (l2_hit_cycles * (1 - miss) + mem_latency * miss)
//! ```
//!
//! where `base_cpi` is the core-local CPI (pipeline + L1 hits) of the
//! segment and `mem_latency` the contention-inflated memory latency.

use crate::hierarchy::Topology;

/// Inherent (machine-independent) behavior of one execution segment.
///
/// Workload models in `rbv-workloads` emit requests as sequences of these;
/// the model turns them into cycles, L2 references, and L2 misses given the
/// set of co-running segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentProfile {
    /// Core-local CPI: pipeline plus L1-hit costs, no L2/memory stalls.
    pub base_cpi: f64,
    /// L1 misses (== L2 references) per retired instruction.
    pub l2_refs_per_ins: f64,
    /// Bytes of data with reuse potential touched by the segment.
    pub working_set_bytes: f64,
    /// Fraction of L2 references that hit when the segment enjoys a full
    /// cache share (1 = perfectly cacheable, 0 = pure streaming).
    pub reuse_locality: f64,
}

impl SegmentProfile {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_cpi.is_finite() && self.base_cpi > 0.0) {
            return Err(format!("base_cpi {} must be positive", self.base_cpi));
        }
        if !(self.l2_refs_per_ins.is_finite() && self.l2_refs_per_ins >= 0.0) {
            return Err(format!(
                "l2_refs_per_ins {} must be nonnegative",
                self.l2_refs_per_ins
            ));
        }
        if !(self.working_set_bytes.is_finite() && self.working_set_bytes >= 0.0) {
            return Err(format!(
                "working_set_bytes {} must be nonnegative",
                self.working_set_bytes
            ));
        }
        if !(0.0..=1.0).contains(&self.reuse_locality) {
            return Err(format!(
                "reuse_locality {} must be in [0, 1]",
                self.reuse_locality
            ));
        }
        Ok(())
    }
}

/// Machine constants for the analytical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Core/cluster layout.
    pub topology: Topology,
    /// Shared L2 capacity per cluster, bytes.
    pub l2_capacity_bytes: f64,
    /// L2 hit latency, cycles (the paper's 14).
    pub l2_hit_cycles: f64,
    /// Uncontended memory access latency, cycles.
    pub mem_base_cycles: f64,
    /// Peak memory system throughput, cache lines per cycle, per memory
    /// domain.
    pub peak_lines_per_cycle: f64,
    /// Number of independent memory domains the cores split into evenly —
    /// 1 for a single machine (the paper's platform); `m` when modeling an
    /// `m`-machine cluster where each machine has its own memory system
    /// (the §7 distributed extension). Cores only contend for bandwidth
    /// within their own domain.
    pub memory_domains: usize,
    /// Concavity exponent of the miss-ratio curve in `share / working_set`.
    pub share_exponent: f64,
}

impl MachineSpec {
    /// The paper's 4-core Xeon 5160 platform: 4 MB shared L2 per core pair,
    /// 14-cycle L2 hits, FSB-era memory bandwidth.
    pub fn xeon_5160() -> MachineSpec {
        MachineSpec {
            topology: Topology::XEON_5160_2X2,
            l2_capacity_bytes: (4 << 20) as f64,
            l2_hit_cycles: 14.0,
            mem_base_cycles: 250.0,
            // ~1.9 GB/s sustained at 3 GHz with 64 B lines; FSB-era memory
            // systems saturate quickly, which is what doubles TPCH's tail
            // CPI at 4 cores (Figure 1).
            peak_lines_per_cycle: 0.010,
            memory_domains: 1,
            share_exponent: 0.85,
        }
    }

    /// An `m`-machine cluster of Xeon 5160 boxes: `4m` cores, a shared L2
    /// per core pair, and one independent memory system per machine.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero.
    pub fn xeon_5160_cluster(machines: usize) -> MachineSpec {
        assert!(machines > 0, "need at least one machine");
        let single = MachineSpec::xeon_5160();
        MachineSpec {
            topology: Topology {
                cores: single.topology.cores * machines,
                cores_per_cluster: single.topology.cores_per_cluster,
            },
            memory_domains: machines,
            ..single
        }
    }

    /// Cores per memory domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain count does not divide the core count.
    pub fn cores_per_domain(&self) -> usize {
        assert!(
            self.memory_domains > 0 && self.topology.cores.is_multiple_of(self.memory_domains),
            "memory domains must evenly divide the cores"
        );
        self.topology.cores / self.memory_domains
    }

    /// Evaluates the model for one scheduling tick.
    ///
    /// `running[i]` is the profile of the segment currently on core `i`
    /// (`None` when the core is idle). Returns a [`PerfEstimate`] per core
    /// (`None` for idle cores).
    ///
    /// # Panics
    ///
    /// Panics if `running.len()` disagrees with the topology or any profile
    /// fails validation (programming errors, not data errors).
    pub fn evaluate(&self, running: &[Option<SegmentProfile>]) -> Vec<Option<PerfEstimate>> {
        assert_eq!(
            running.len(),
            self.topology.cores,
            "one slot per core required"
        );
        for p in running.iter().flatten() {
            if let Err(e) = p.validate() {
                panic!("invalid segment profile: {e}");
            }
        }

        let n = running.len();
        // Initial IPC guess ignores memory stalls; initial shares split each
        // cluster evenly among its occupied cores.
        let mut ipc: Vec<f64> = running
            .iter()
            .map(|p| p.map_or(0.0, |p| 1.0 / p.base_cpi))
            .collect();
        let mut share = vec![0.0f64; n];
        for cluster in 0..self.topology.clusters() {
            let (lo, hi) = self.cluster_range(cluster, n);
            let active = running[lo..hi].iter().filter(|p| p.is_some()).count();
            if active > 0 {
                let even = self.l2_capacity_bytes / active as f64;
                for i in lo..hi {
                    if let Some(p) = running[i] {
                        share[i] = even.min(p.working_set_bytes.max(1.0));
                    }
                }
            }
        }

        let mut out: Vec<Option<PerfEstimate>> = vec![None; n];
        for _ in 0..MAX_ITERS {
            // Miss ratios at current shares.
            let miss: Vec<f64> = running
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.map_or(0.0, |p| {
                        miss_ratio(
                            share[i],
                            p.working_set_bytes,
                            p.reuse_locality,
                            self.share_exponent,
                        )
                    })
                })
                .collect();

            // Reference pressure (L2 refs per cycle) and insertion-based
            // occupancy weights. Resident re-touches defend occupancy too,
            // hence the small retention credit on the hit fraction.
            let pressure: Vec<f64> = running
                .iter()
                .zip(&ipc)
                .map(|(p, &ipc)| p.map_or(0.0, |p| p.l2_refs_per_ins * ipc))
                .collect();
            let weight: Vec<f64> = pressure
                .iter()
                .zip(&miss)
                .map(|(&p, &m)| p * (m + RETENTION_CREDIT * (1.0 - m)))
                .collect();

            // Target shares: weight-proportional water-filling, capped at
            // each segment's working set (occupancy never exceeds demand).
            let mut target = vec![0.0f64; n];
            for cluster in 0..self.topology.clusters() {
                let (lo, hi) = self.cluster_range(cluster, n);
                let limits: Vec<f64> = running[lo..hi]
                    .iter()
                    .map(|p| p.map_or(0.0, |p| p.working_set_bytes))
                    .collect();
                let filled = proportional_fill(self.l2_capacity_bytes, &weight[lo..hi], &limits);
                target[lo..hi].copy_from_slice(&filled);
            }

            // Bandwidth and latency from current rates, per memory domain
            // (one domain per machine; a single machine has one domain).
            let cpd = self.cores_per_domain();
            let mut mem_latency_of = vec![self.mem_base_cycles; self.memory_domains];
            for (d, lat) in mem_latency_of.iter_mut().enumerate() {
                let demand: f64 = (d * cpd..(d + 1) * cpd)
                    .map(|i| pressure[i] * miss[i])
                    .sum();
                let utilization = (demand / self.peak_lines_per_cycle).min(MAX_UTILIZATION);
                *lat = self.mem_base_cycles / (1.0 - utilization);
            }

            // New CPI / IPC estimates; damped updates for both shares and
            // IPC keep the coupled fixed point stable (the share map is
            // monotone decreasing in each segment's own share, so damped
            // iteration converges).
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let Some(p) = running[i] else { continue };
                let mem_latency = mem_latency_of[i / cpd];
                let cpi = p.base_cpi
                    + p.l2_refs_per_ins
                        * (self.l2_hit_cycles * (1.0 - miss[i]) + mem_latency * miss[i]);
                let new_ipc = 1.0 / cpi;
                let next_ipc = (1.0 - DAMPING) * ipc[i] + DAMPING * new_ipc;
                let next_share = (1.0 - DAMPING) * share[i] + DAMPING * target[i];
                max_delta = max_delta
                    .max((next_ipc - ipc[i]).abs() / next_ipc.max(1e-12))
                    .max((next_share - share[i]).abs() / self.l2_capacity_bytes);
                ipc[i] = next_ipc;
                share[i] = next_share;
                out[i] = Some(PerfEstimate {
                    cpi,
                    l2_refs_per_ins: p.l2_refs_per_ins,
                    l2_miss_ratio: miss[i],
                    mem_latency_cycles: mem_latency,
                    l2_share_bytes: share[i],
                });
            }
            if max_delta < CONVERGENCE_TOL {
                break;
            }
        }
        out
    }

    /// Evaluates the model with *fixed* per-core L2 shares instead of the
    /// LRU-occupancy sharing fixed point — modeling page-coloring-style
    /// static cache partitioning (the related-work alternative to
    /// contention-easing scheduling; Lin et al. / Tam et al. / Zhang et
    /// al. in the paper's §6). Bandwidth contention is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if slot counts disagree with the topology, any profile is
    /// invalid, shares are negative, or a cluster's shares exceed its L2
    /// capacity.
    pub fn evaluate_partitioned(
        &self,
        running: &[Option<SegmentProfile>],
        shares: &[f64],
    ) -> Vec<Option<PerfEstimate>> {
        assert_eq!(running.len(), self.topology.cores, "one slot per core");
        assert_eq!(shares.len(), self.topology.cores, "one share per core");
        for p in running.iter().flatten() {
            if let Err(e) = p.validate() {
                panic!("invalid segment profile: {e}");
            }
        }
        for cluster in 0..self.topology.clusters() {
            let (lo, hi) = self.cluster_range(cluster, running.len());
            let total: f64 = shares[lo..hi].iter().sum();
            assert!(
                shares[lo..hi].iter().all(|&s| s >= 0.0) && total <= self.l2_capacity_bytes + 1.0,
                "cluster {cluster} shares exceed capacity"
            );
        }

        let n = running.len();
        let miss: Vec<f64> = running
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.map_or(0.0, |p| {
                    miss_ratio(
                        shares[i],
                        p.working_set_bytes,
                        p.reuse_locality,
                        self.share_exponent,
                    )
                })
            })
            .collect();
        // Fixed shares decouple the cache from IPC; only the bandwidth
        // coupling needs the fixed point.
        let mut ipc: Vec<f64> = running
            .iter()
            .map(|p| p.map_or(0.0, |p| 1.0 / p.base_cpi))
            .collect();
        let mut out = vec![None; n];
        let cpd = self.cores_per_domain();
        for _ in 0..MAX_ITERS {
            let mut mem_latency_of = vec![self.mem_base_cycles; self.memory_domains];
            for (d, lat) in mem_latency_of.iter_mut().enumerate() {
                let demand: f64 = (d * cpd..(d + 1) * cpd)
                    .map(|i| running[i].map_or(0.0, |p| p.l2_refs_per_ins * ipc[i] * miss[i]))
                    .sum();
                let utilization = (demand / self.peak_lines_per_cycle).min(MAX_UTILIZATION);
                *lat = self.mem_base_cycles / (1.0 - utilization);
            }
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let Some(p) = running[i] else { continue };
                let mem_latency = mem_latency_of[i / cpd];
                let cpi = p.base_cpi
                    + p.l2_refs_per_ins
                        * (self.l2_hit_cycles * (1.0 - miss[i]) + mem_latency * miss[i]);
                let next = (1.0 - DAMPING) * ipc[i] + DAMPING / cpi;
                max_delta = max_delta.max((next - ipc[i]).abs() / next.max(1e-12));
                ipc[i] = next;
                out[i] = Some(PerfEstimate {
                    cpi,
                    l2_refs_per_ins: p.l2_refs_per_ins,
                    l2_miss_ratio: miss[i],
                    mem_latency_cycles: mem_latency,
                    l2_share_bytes: shares[i],
                });
            }
            if max_delta < CONVERGENCE_TOL {
                break;
            }
        }
        out
    }

    /// Convenience: evaluates `profile` running alone on core 0.
    pub fn solo(&self, profile: SegmentProfile) -> PerfEstimate {
        let mut running = vec![None; self.topology.cores];
        running[0] = Some(profile);
        self.evaluate(&running)[0].unwrap_or_else(|| unreachable!("core 0 is occupied"))
    }

    fn cluster_range(&self, cluster: usize, n: usize) -> (usize, usize) {
        let lo = cluster * self.topology.cores_per_cluster;
        let hi = (lo + self.topology.cores_per_cluster).min(n);
        (lo, hi)
    }
}

const MAX_ITERS: usize = 400;
const CONVERGENCE_TOL: f64 = 1e-9;
const MAX_UTILIZATION: f64 = 0.95;
const DAMPING: f64 = 0.35;
/// Occupancy defense of resident, re-touched lines relative to insertions.
const RETENTION_CREDIT: f64 = 0.08;

/// Splits `capacity` across claimants in proportion to `weights`, capping
/// each at its `limits` entry and redistributing surplus (water-filling).
///
/// Zero-weight claimants receive zero. The sum of the result never exceeds
/// `capacity`, and equals `min(capacity, sum(limits of positive-weight
/// claimants))` up to floating-point error.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn proportional_fill(capacity: f64, weights: &[f64], limits: &[f64]) -> Vec<f64> {
    assert_eq!(weights.len(), limits.len(), "mismatched slice lengths");
    let n = weights.len();
    let mut share = vec![0.0f64; n];
    let mut capped = vec![false; n];
    let mut remaining = capacity;
    // Each pass either terminates or caps at least one claimant, so at most
    // n passes are needed.
    for _ in 0..=n {
        let wsum: f64 = (0..n)
            .filter(|&i| !capped[i])
            .map(|i| weights[i].max(0.0))
            .sum();
        if wsum <= 0.0 || remaining <= 0.0 {
            break;
        }
        let mut newly_capped = false;
        for i in 0..n {
            if capped[i] || weights[i] <= 0.0 {
                continue;
            }
            let alloc = remaining * weights[i] / wsum;
            if share[i] + alloc >= limits[i] {
                // Grant up to the limit and retire this claimant.
                let grant = (limits[i] - share[i]).max(0.0);
                share[i] = limits[i];
                remaining -= grant;
                capped[i] = true;
                newly_capped = true;
            }
        }
        if !newly_capped {
            // No caps hit: distribute the remainder proportionally and stop.
            for i in 0..n {
                if !capped[i] && weights[i] > 0.0 {
                    share[i] += remaining * weights[i] / wsum;
                }
            }
            break;
        }
    }
    share
}

/// Model-predicted rates for a segment during one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEstimate {
    /// Cycles per instruction.
    pub cpi: f64,
    /// L2 references per instruction (inherent; passed through).
    pub l2_refs_per_ins: f64,
    /// L2 misses per reference.
    pub l2_miss_ratio: f64,
    /// Contention-inflated memory latency in cycles.
    pub mem_latency_cycles: f64,
    /// The L2 share the segment was allotted, bytes.
    pub l2_share_bytes: f64,
}

impl PerfEstimate {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi
    }

    /// L2 misses per instruction (the contention-easing scheduler's metric).
    pub fn l2_misses_per_ins(&self) -> f64 {
        self.l2_refs_per_ins * self.l2_miss_ratio
    }
}

/// The analytical miss-ratio curve.
///
/// * share ≥ working set → misses are only the non-reusable fraction
///   `1 - locality`;
/// * share < working set → the reusable fraction's hit probability decays
///   as `(share / ws) ^ exponent` (uniform reuse is `exponent == 1`,
///   skewed/Zipf-like reuse is concave, `exponent < 1`).
///
/// With `working_set == 0` there is nothing to re-reference, so the
/// reusable fraction trivially hits (ratio `1 - locality`).
pub fn miss_ratio(share_bytes: f64, ws_bytes: f64, locality: f64, exponent: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&locality));
    if ws_bytes <= 0.0 || share_bytes >= ws_bytes {
        return 1.0 - locality;
    }
    let frac = (share_bytes / ws_bytes).clamp(0.0, 1.0);
    1.0 - locality * frac.powf(exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::xeon_5160()
    }

    fn cacheable() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 0.8,
            l2_refs_per_ins: 0.01,
            working_set_bytes: (2 << 20) as f64, // 2 MB, fits alone
            reuse_locality: 0.95,
        }
    }

    fn streaming() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 0.7,
            l2_refs_per_ins: 0.008,
            working_set_bytes: 360e6, // TPCH-scale scan
            reuse_locality: 0.5,
        }
    }

    #[test]
    fn miss_curve_anchors() {
        // Full share: only the streaming fraction misses.
        assert!((miss_ratio(4e6, 1e6, 0.9, 1.0) - 0.1).abs() < 1e-12);
        // Zero share: everything misses.
        assert!((miss_ratio(0.0, 1e6, 0.9, 1.0) - 1.0).abs() < 1e-12);
        // Half share, uniform reuse: hit = 0.9 * 0.5.
        assert!((miss_ratio(0.5e6, 1e6, 0.9, 1.0) - 0.55).abs() < 1e-12);
        // Zero working set: nothing to re-reference, reusable part hits.
        assert!((miss_ratio(0.0, 0.0, 0.9, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn miss_curve_monotone_in_share() {
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let share = i as f64 * 1e5;
            let m = miss_ratio(share, 2e6, 0.9, 0.85);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn fill_basic_proportions() {
        let s = proportional_fill(100.0, &[1.0, 3.0], &[f64::MAX, f64::MAX]);
        assert!((s[0] - 25.0).abs() < 1e-9);
        assert!((s[1] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn fill_respects_limits_and_redistributes() {
        let s = proportional_fill(100.0, &[1.0, 1.0], &[10.0, f64::MAX]);
        assert!((s[0] - 10.0).abs() < 1e-9);
        assert!((s[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn fill_zero_weights_get_nothing() {
        let s = proportional_fill(100.0, &[0.0, 2.0, 0.0], &[50.0, 50.0, 50.0]);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 50.0).abs() < 1e-9);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn fill_total_never_exceeds_capacity() {
        let s = proportional_fill(100.0, &[5.0, 1.0, 2.0], &[30.0, 40.0, 50.0]);
        let total: f64 = s.iter().sum();
        assert!(total <= 100.0 + 1e-9);
        // All limits sum to 120 > 100, so capacity should be fully used.
        assert!(total >= 100.0 - 1e-9);
        for (i, &v) in s.iter().enumerate() {
            assert!(v <= [30.0, 40.0, 50.0][i] + 1e-9);
        }
    }

    #[test]
    fn fill_undersubscribed_leaves_surplus() {
        let s = proportional_fill(100.0, &[1.0, 1.0], &[20.0, 30.0]);
        assert!((s[0] - 20.0).abs() < 1e-9);
        assert!((s[1] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn solo_matches_closed_form() {
        let s = spec();
        let p = cacheable();
        let est = s.solo(p);
        // Working set fits: miss = 1 - locality.
        let miss = 1.0 - p.reuse_locality;
        assert!((est.l2_miss_ratio - miss).abs() < 1e-9);
        assert!(est.mem_latency_cycles >= s.mem_base_cycles);
        let cpi_floor = p.base_cpi
            + p.l2_refs_per_ins * (s.l2_hit_cycles * (1.0 - miss) + s.mem_base_cycles * miss);
        assert!(est.cpi >= cpi_floor - 1e-9);
        assert!(est.cpi < cpi_floor * 1.2, "solo inflation should be mild");
    }

    #[test]
    fn idle_cores_are_none() {
        let s = spec();
        let mut running = vec![None; 4];
        running[2] = Some(cacheable());
        let out = s.evaluate(&running);
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
        assert!(out[2].is_some());
    }

    #[test]
    fn cache_contention_within_cluster() {
        let s = spec();
        let solo = s.solo(cacheable()).cpi;
        // Large-footprint co-runner on the sibling core (same cluster).
        let mut running = vec![None; 4];
        running[0] = Some(cacheable());
        running[1] = Some(streaming());
        let shared = s.evaluate(&running)[0].unwrap();
        assert!(
            shared.cpi > solo * 1.05,
            "same-cluster streaming co-runner should inflate CPI: solo={solo} shared={}",
            shared.cpi
        );
        assert!(shared.l2_share_bytes < s.l2_capacity_bytes);
        assert!(shared.l2_miss_ratio > s.solo(cacheable()).l2_miss_ratio);
    }

    #[test]
    fn cross_cluster_contention_is_bandwidth_only() {
        let s = spec();
        let mut same = vec![None; 4];
        same[0] = Some(cacheable());
        same[1] = Some(streaming());
        let mut cross = vec![None; 4];
        cross[0] = Some(cacheable());
        cross[2] = Some(streaming());
        let same_est = s.evaluate(&same)[0].unwrap();
        let cross_est = s.evaluate(&cross)[0].unwrap();
        // Cross-cluster: the cacheable segment keeps its full working set
        // resident, so its miss ratio stays at the solo level.
        assert!((cross_est.l2_miss_ratio - s.solo(cacheable()).l2_miss_ratio).abs() < 1e-6);
        // ...so the same-cluster pairing hurts at least as much.
        assert!(same_est.cpi >= cross_est.cpi - 1e-9);
        // But bandwidth still bites: worse than solo.
        assert!(cross_est.cpi > s.solo(cacheable()).cpi);
    }

    #[test]
    fn four_streaming_corunners_hit_the_bandwidth_wall() {
        let s = spec();
        let solo = s.solo(streaming());
        let running = vec![Some(streaming()); 4];
        let loaded = s.evaluate(&running)[0].unwrap();
        assert!(
            loaded.cpi > solo.cpi * 1.2,
            "4 streams contend for memory: solo={} loaded={}",
            solo.cpi,
            loaded.cpi
        );
        assert!(loaded.mem_latency_cycles > solo.mem_latency_cycles);

        // Scarcer bandwidth makes the degradation strictly worse.
        let tight = MachineSpec {
            peak_lines_per_cycle: s.peak_lines_per_cycle / 2.0,
            ..s
        };
        let tight_solo = tight.solo(streaming());
        let tight_loaded = tight.evaluate(&running)[0].unwrap();
        assert!(
            tight_loaded.cpi / tight_solo.cpi > loaded.cpi / solo.cpi,
            "halving bandwidth should worsen the relative degradation"
        );
    }

    #[test]
    fn small_working_set_immune_to_corunners() {
        // The WeBWorK effect in Figure 1: compute-bound, cache-light
        // requests barely notice the multicore.
        let s = spec();
        let light = SegmentProfile {
            base_cpi: 1.2,
            l2_refs_per_ins: 0.0005,
            working_set_bytes: (64 << 10) as f64,
            reuse_locality: 0.98,
        };
        let solo = s.solo(light).cpi;
        let mut running = vec![Some(streaming()); 4];
        running[0] = Some(light);
        let loaded = s.evaluate(&running)[0].unwrap().cpi;
        assert!(
            loaded < solo * 1.10,
            "light segment should see <10% impact: solo={solo} loaded={loaded}"
        );
    }

    #[test]
    fn symmetric_profiles_get_symmetric_estimates() {
        let s = spec();
        let running = vec![Some(streaming()); 4];
        let out = s.evaluate(&running);
        let first = out[0].unwrap();
        for est in out.iter().flatten() {
            assert!((est.cpi - first.cpi).abs() < 1e-6);
            assert!((est.l2_share_bytes - first.l2_share_bytes).abs() < 1.0);
        }
    }

    #[test]
    fn zero_refs_segment_runs_at_base_cpi() {
        let s = spec();
        let pure_compute = SegmentProfile {
            base_cpi: 1.5,
            l2_refs_per_ins: 0.0,
            working_set_bytes: 0.0,
            reuse_locality: 0.0,
        };
        let est = s.solo(pure_compute);
        assert!((est.cpi - 1.5).abs() < 1e-12);
        assert_eq!(est.l2_misses_per_ins(), 0.0);
    }

    #[test]
    fn estimates_expose_derived_rates() {
        let est = spec().solo(streaming());
        assert!((est.ipc() - 1.0 / est.cpi).abs() < 1e-15);
        assert!((est.l2_misses_per_ins() - est.l2_refs_per_ins * est.l2_miss_ratio).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "one slot per core")]
    fn wrong_slot_count_panics() {
        spec().evaluate(&[None, None]);
    }

    #[test]
    #[should_panic(expected = "invalid segment profile")]
    fn invalid_profile_panics() {
        let bad = SegmentProfile {
            base_cpi: -1.0,
            l2_refs_per_ins: 0.0,
            working_set_bytes: 0.0,
            reuse_locality: 0.0,
        };
        let mut running = vec![None; 4];
        running[0] = Some(bad);
        spec().evaluate(&running);
    }

    #[test]
    fn profile_validation_messages() {
        let mut p = cacheable();
        p.reuse_locality = 1.5;
        assert!(p.validate().unwrap_err().contains("reuse_locality"));
        let mut p = cacheable();
        p.l2_refs_per_ins = f64::NAN;
        assert!(p.validate().unwrap_err().contains("l2_refs_per_ins"));
        let mut p = cacheable();
        p.working_set_bytes = -5.0;
        assert!(p.validate().unwrap_err().contains("working_set_bytes"));
        assert!(cacheable().validate().is_ok());
    }

    #[test]
    fn convergence_is_deterministic() {
        let s = spec();
        let running = vec![
            Some(streaming()),
            Some(cacheable()),
            Some(streaming()),
            None,
        ];
        let a = s.evaluate(&running);
        let b = s.evaluate(&running);
        assert_eq!(a, b);
    }

    #[test]
    fn more_corunners_never_help() {
        let s = spec();
        let p = cacheable();
        let mut prev = s.solo(p).cpi;
        for extra in 1..4 {
            let mut running = vec![None; 4];
            running[0] = Some(p);
            for slot in running.iter_mut().skip(1).take(extra) {
                *slot = Some(streaming());
            }
            let cpi = s.evaluate(&running)[0].unwrap().cpi;
            assert!(
                cpi >= prev - 1e-6,
                "adding co-runner #{extra} should not speed core 0 up: {prev} -> {cpi}"
            );
            prev = cpi;
        }
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;

    fn cacheable() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 0.8,
            l2_refs_per_ins: 0.01,
            working_set_bytes: (2 << 20) as f64,
            reuse_locality: 0.95,
        }
    }

    fn streaming() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 0.7,
            l2_refs_per_ins: 0.008,
            working_set_bytes: 360e6,
            reuse_locality: 0.5,
        }
    }

    #[test]
    fn equal_partition_isolates_the_cacheable_corunner() {
        let s = MachineSpec::xeon_5160();
        let running = vec![Some(cacheable()), Some(streaming()), None, None];
        // LRU sharing: the streaming co-runner squeezes the cacheable one.
        let shared = s.evaluate(&running)[0].unwrap();
        // Static halves: the cacheable working set (2 MB) fits its half.
        let half = s.l2_capacity_bytes / 2.0;
        let parts = vec![half, half, 0.0, 0.0];
        let partitioned = s.evaluate_partitioned(&running, &parts)[0].unwrap();
        assert!(
            partitioned.l2_miss_ratio < shared.l2_miss_ratio,
            "partitioning should protect the cacheable workload: {} vs {}",
            partitioned.l2_miss_ratio,
            shared.l2_miss_ratio
        );
        assert!(partitioned.cpi <= shared.cpi + 1e-9);
    }

    #[test]
    fn partitioning_cannot_help_a_working_set_beyond_its_slice() {
        let s = MachineSpec::xeon_5160();
        let running = vec![Some(streaming()); 4];
        let half = s.l2_capacity_bytes / 2.0;
        let parts = vec![half; 4];
        let shared = s.evaluate(&running)[0].unwrap();
        let partitioned = s.evaluate_partitioned(&running, &parts)[0].unwrap();
        // Streaming misses either way.
        assert!((partitioned.l2_miss_ratio - shared.l2_miss_ratio).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "shares exceed capacity")]
    fn oversubscribed_shares_panic() {
        let s = MachineSpec::xeon_5160();
        let running = vec![Some(cacheable()); 4];
        let too_much = vec![s.l2_capacity_bytes; 4];
        s.evaluate_partitioned(&running, &too_much);
    }

    #[test]
    fn partitioned_idle_cores_stay_none() {
        let s = MachineSpec::xeon_5160();
        let mut running = vec![None; 4];
        running[1] = Some(cacheable());
        let parts = vec![0.0, s.l2_capacity_bytes, 0.0, 0.0];
        let out = s.evaluate_partitioned(&running, &parts);
        assert!(out[0].is_none() && out[2].is_none());
        let est = out[1].unwrap();
        assert!((est.l2_share_bytes - s.l2_capacity_bytes).abs() < 1.0);
    }
}

#[cfg(test)]
mod domain_tests {
    use super::*;

    fn stream() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 0.7,
            l2_refs_per_ins: 0.008,
            working_set_bytes: 360e6,
            reuse_locality: 0.5,
        }
    }

    #[test]
    fn cluster_constructor_scales_cores_and_domains() {
        let c = MachineSpec::xeon_5160_cluster(3);
        assert_eq!(c.topology.cores, 12);
        assert_eq!(c.memory_domains, 3);
        assert_eq!(c.cores_per_domain(), 4);
        assert_eq!(c.topology.clusters(), 6);
    }

    #[test]
    fn bandwidth_contention_is_domain_local() {
        // Two machines: four streams on machine 0 saturate ITS memory
        // system but leave machine 1's untouched.
        let c = MachineSpec::xeon_5160_cluster(2);
        let mut running = vec![None; 8];
        for slot in running.iter_mut().take(4) {
            *slot = Some(stream());
        }
        running[4] = Some(stream());
        let out = c.evaluate(&running);
        let crowded = out[0].unwrap();
        let remote = out[4].unwrap();
        assert!(
            crowded.mem_latency_cycles > remote.mem_latency_cycles * 1.3,
            "crowded {} vs remote {}",
            crowded.mem_latency_cycles,
            remote.mem_latency_cycles
        );
        // The remote machine's lone stream behaves like a solo run.
        let solo = MachineSpec::xeon_5160().solo(stream());
        assert!((remote.cpi - solo.cpi).abs() / solo.cpi < 0.02);
    }

    #[test]
    fn single_domain_matches_previous_global_behavior() {
        let single = MachineSpec::xeon_5160();
        assert_eq!(single.memory_domains, 1);
        assert_eq!(single.cores_per_domain(), 4);
        let running = vec![Some(stream()); 4];
        let out = single.evaluate(&running);
        // All four share the one domain: identical latencies.
        let lats: Vec<f64> = out.iter().flatten().map(|e| e.mem_latency_cycles).collect();
        assert!(lats.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "need at least one machine")]
    fn zero_machines_panics() {
        MachineSpec::xeon_5160_cluster(0);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn ragged_domains_panic() {
        let mut c = MachineSpec::xeon_5160();
        c.memory_domains = 3;
        c.solo(stream());
    }
}
