//! Crash-safe output files: tempfile + atomic-rename writes and
//! corrupt-document detection on read.
//!
//! Every artifact the `repro` CLI persists — ledgers, baselines, traces,
//! metric dumps — used to be written with a bare `fs::write`, so a crash
//! mid-write left a truncated file that a later `repro diff` would try to
//! parse. [`write_atomic`] closes that hole: content lands in a sibling
//! temporary file, is flushed to disk, and only then renamed over the
//! destination, so readers observe either the old complete document or
//! the new complete document, never a prefix. [`read_document`] is the
//! matching read side: it distinguishes I/O failures from a file whose
//! bytes do not parse — a *corrupt document*, most likely a partial write
//! from a tool that did not use [`write_atomic`].

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use rbv_telemetry::Json;

/// Why a persisted document could not be loaded.
#[derive(Debug)]
pub enum DocumentError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file was read but its bytes are not a complete JSON document
    /// (typically a truncated partial write). The message carries the
    /// parser's position detail.
    Corrupt(String),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Io(e) => write!(f, "{e}"),
            DocumentError::Corrupt(detail) => write!(f, "corrupt document: {detail}"),
        }
    }
}

impl std::error::Error for DocumentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DocumentError::Io(e) => Some(e),
            DocumentError::Corrupt(_) => None,
        }
    }
}

/// The sibling temporary path `write_atomic` stages content in: the
/// destination's file name wrapped as `.<name>.tmp~` in the same
/// directory (same filesystem, so the rename is atomic).
fn staging_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy())
        .unwrap_or_default();
    path.with_file_name(format!(".{name}.tmp~"))
}

/// Writes `contents` to `path` atomically: stage in a sibling temp file,
/// flush to disk, then rename over the destination.
///
/// # Errors
///
/// Propagates I/O errors; on failure the staging file is removed and the
/// destination is left untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let staging = staging_path(path);
    let stage = || -> io::Result<()> {
        let mut file = fs::File::create(&staging)?;
        file.write_all(contents)?;
        file.sync_all()?;
        Ok(())
    };
    let result = stage().and_then(|()| fs::rename(&staging, path));
    if result.is_err() {
        let _ = fs::remove_file(&staging);
    }
    result
}

/// Reads and parses a persisted JSON document, distinguishing I/O
/// failures from corrupt (e.g. byte-truncated) content.
///
/// # Errors
///
/// [`DocumentError::Io`] when the file cannot be read;
/// [`DocumentError::Corrupt`] when its bytes are not one complete JSON
/// document.
pub fn read_document(path: &Path) -> Result<Json, DocumentError> {
    let text = fs::read_to_string(path).map_err(DocumentError::Io)?;
    Json::parse(&text).map_err(DocumentError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbv-guard-fsx-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = temp_dir("round-trip");
        let path = dir.join("doc.json");
        write_atomic(&path, b"{\"k\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"k\":1}");
        let doc = read_document(&path).unwrap();
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(1.0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_staging_file() {
        let dir = temp_dir("replace");
        let path = dir.join("doc.json");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "new");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "doc.json")
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_destination_untouched() {
        let dir = temp_dir("failed");
        let path = dir.join("doc.json");
        write_atomic(&path, b"intact").unwrap();
        // Writing into a missing directory fails before the rename.
        let bad = dir.join("missing").join("doc.json");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(fs::read_to_string(&path).unwrap(), "intact");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_document_reads_as_corrupt() {
        let dir = temp_dir("truncated");
        let path = dir.join("doc.json");
        let full = "{\"schema\":\"rbv-ledger/v2\",\"apps\":[1,2,3]}";
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        match read_document(&path) {
            Err(DocumentError::Corrupt(detail)) => {
                let msg = DocumentError::Corrupt(detail).to_string();
                assert!(msg.contains("corrupt document"), "{msg}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_as_io_error() {
        let dir = temp_dir("missing");
        match read_document(&dir.join("absent.json")) {
            Err(DocumentError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected io error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
