//! The adaptive "do no harm" sampling governor (closing the loop on §3.4).
//!
//! The accountant (`rbv-os::accountant`) prices observer overhead *after*
//! a run; this module closes the loop *during* one. Each accounting window
//! the kernel hands the governor the window's busy cycles and priced
//! sampling cycles; the governor compares the window overhead against the
//! do-no-harm budget and adjusts a single knob — a dimensionless
//! **interval scale** multiplied into every governable sampling interval
//! (`t_syscall_min`, the backup-timer period, the interrupt period).
//!
//! Control is AIMD in the paper's "do no harm" direction: on a budget
//! breach the sampling intervals back off *multiplicatively* (scaled by at
//! least [`GovernorPolicy::backoff_factor`], or by the measured overshoot
//! ratio plus headroom when that is larger, so a single correction is
//! normally sufficient); while comfortably under budget they recover
//! *additively* ([`GovernorPolicy::recover_step`] of scale per window)
//! back toward the configured baseline.
//!
//! The governor is a pure state machine: it draws no randomness and its
//! decisions are a deterministic function of the window inputs, so the
//! same seed yields the same decision sequence.

use crate::health::HealthPolicy;
use rbv_sim::Cycles;
use rbv_telemetry::Json;

/// Inputs the kernel feeds the guard once per accounting window: the
/// deltas of the run counters over the window just ended.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSample {
    /// Workload cycles spent this window (the budget denominator).
    pub busy_cycles: f64,
    /// Priced observer cycles spent this window (the budget numerator).
    pub sampling_cycles: f64,
    /// Samples collected this window.
    pub samples: u64,
    /// Samples lost to interrupt faults this window.
    pub samples_lost: u64,
    /// Low-confidence (noise-flagged) samples this window.
    pub samples_low_confidence: u64,
    /// Syscall-sampling starvation windows that opened this window.
    pub starvation_windows: u64,
    /// Age of the newest sample on any busy core, as a fraction of the
    /// accounting window (clamped to [0, 1]; 1 = no sample all window).
    pub staleness_frac: f64,
    /// Running relative prediction error of the easing predictor (the
    /// counter-noise variance proxy; 0 when no predictions were made).
    pub noise_ewma: f64,
    /// Open-loop arrivals offered this window (0 in closed-loop runs, so
    /// the overload-pressure score stays 0 and the ladder never enters
    /// the shed/brownout band).
    pub offered: u64,
    /// Arrivals rejected or shed this window (admission rejections,
    /// CoDel sheds, deadline aborts, brownout rejections).
    pub rejected: u64,
    /// Deepest runqueue at window close as a fraction of the admission
    /// bound (clamped to [0, 1]; 0 when admission is unbounded).
    pub queue_frac: f64,
}

impl WindowSample {
    /// Observer overhead of this window as a fraction of its busy cycles.
    pub fn overhead_frac(&self) -> f64 {
        if self.busy_cycles > 0.0 {
            self.sampling_cycles / self.busy_cycles
        } else {
            0.0
        }
    }
}

/// Configuration of the guard: governor gains, health-ladder bands, and
/// which guard components are active.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorPolicy {
    /// Do-no-harm budget: sampling may spend at most this fraction of the
    /// workload's busy cycles per accounting window (default 1%).
    pub budget_frac: f64,
    /// Accounting-window length in simulated cycles (default 250 µs —
    /// short enough that the loop closes several times within the
    /// simulator's millisecond-scale runs).
    pub window: Cycles,
    /// Minimum multiplicative interval back-off on a budget breach.
    pub backoff_factor: f64,
    /// Additive scale recovery per comfortably-under-budget window.
    pub recover_step: f64,
    /// Upper bound on the interval scale (1 = configured baseline).
    pub max_scale: f64,
    /// Recover only while window overhead is below `recover_margin *
    /// budget_frac` — the hysteresis band that keeps the controller from
    /// oscillating around the budget line.
    pub recover_margin: f64,
    /// Health scoring and ladder bands.
    pub health: HealthPolicy,
    /// Whether the degradation ladder drives the easing scheduler.
    pub ladder: bool,
    /// Whether the runtime invariant monitor runs each window.
    pub invariants: bool,
    /// Power-capping ladder bands; `None` (the default) leaves thermal
    /// defense entirely to the firmware throttle. Only meaningful when
    /// the kernel runs with a power model.
    pub power_cap: Option<crate::power::PowerCapPolicy>,
}

impl Default for GovernorPolicy {
    fn default() -> GovernorPolicy {
        GovernorPolicy {
            budget_frac: 0.01,
            window: Cycles::from_micros(250),
            backoff_factor: 2.0,
            recover_step: 0.25,
            max_scale: 64.0,
            recover_margin: 0.5,
            health: HealthPolicy::default(),
            ladder: true,
            invariants: true,
            power_cap: None,
        }
    }
}

impl GovernorPolicy {
    /// An observe-only governor: it accounts windows, scores health, and
    /// checks invariants, but never adjusts sampling (the budget is set
    /// unreachably high and the ladder is disabled).
    pub fn observe_only() -> GovernorPolicy {
        GovernorPolicy {
            budget_frac: 1.0,
            ladder: false,
            ..GovernorPolicy::default()
        }
    }

    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    // Negated comparisons are deliberate throughout: `!(x > 0.0)`
    // rejects NaN along with out-of-range values, which `x <= 0.0`
    // would silently admit.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.budget_frac > 0.0 && self.budget_frac <= 1.0) {
            return Err(format!(
                "governor budget_frac must be in (0, 1], got {}",
                self.budget_frac
            ));
        }
        if self.window.is_zero() {
            return Err("governor window must be nonzero".into());
        }
        if !(self.backoff_factor > 1.0) {
            return Err(format!(
                "governor backoff_factor must exceed 1, got {}",
                self.backoff_factor
            ));
        }
        if !(self.recover_step > 0.0) {
            return Err(format!(
                "governor recover_step must be positive, got {}",
                self.recover_step
            ));
        }
        if !(self.max_scale >= 1.0) {
            return Err(format!(
                "governor max_scale must be at least 1, got {}",
                self.max_scale
            ));
        }
        if !(self.recover_margin > 0.0 && self.recover_margin < 1.0) {
            return Err(format!(
                "governor recover_margin must be in (0, 1), got {}",
                self.recover_margin
            ));
        }
        if let Some(power_cap) = &self.power_cap {
            power_cap.validate()?;
        }
        self.health.validate()
    }
}

/// What the governor did with one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorAction {
    /// Within band; no change.
    Hold,
    /// Budget breached; intervals backed off multiplicatively.
    Backoff,
    /// Comfortably under budget; intervals recovered additively.
    Recover,
}

impl GovernorAction {
    /// Stable lowercase label for telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            GovernorAction::Hold => "hold",
            GovernorAction::Backoff => "backoff",
            GovernorAction::Recover => "recover",
        }
    }
}

/// One window's control decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorDecision {
    /// What the controller did.
    pub action: GovernorAction,
    /// The interval scale now in effect (1 = configured baseline).
    pub scale: f64,
    /// The window's measured overhead fraction.
    pub overhead_frac: f64,
}

/// The AIMD controller state.
#[derive(Debug, Clone, PartialEq)]
pub struct Governor {
    budget_frac: f64,
    backoff_factor: f64,
    recover_step: f64,
    max_scale: f64,
    recover_margin: f64,
    scale: f64,
    windows: u64,
    backoffs: u64,
    recoveries: u64,
    breaches: u64,
    breach_streak: u64,
    max_breach_streak: u64,
    cum_busy: f64,
    cum_sampling: f64,
    max_window_sampling: f64,
}

impl Governor {
    /// Builds a controller from the policy gains, starting at scale 1.
    pub fn new(policy: &GovernorPolicy) -> Governor {
        Governor {
            budget_frac: policy.budget_frac,
            backoff_factor: policy.backoff_factor,
            recover_step: policy.recover_step,
            max_scale: policy.max_scale,
            recover_margin: policy.recover_margin,
            scale: 1.0,
            windows: 0,
            backoffs: 0,
            recoveries: 0,
            breaches: 0,
            breach_streak: 0,
            max_breach_streak: 0,
            cum_busy: 0.0,
            cum_sampling: 0.0,
            max_window_sampling: 0.0,
        }
    }

    /// The interval scale currently in effect.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Windows accounted so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Multiplicative back-offs taken.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Additive recovery steps taken.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Windows whose local overhead exceeded the budget.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Longest run of consecutive over-budget windows — the one-window
    /// slack guarantee holds exactly when this never exceeds 1.
    pub fn max_breach_streak(&self) -> u64 {
        self.max_breach_streak
    }

    /// Cumulative overhead fraction across every accounted window.
    pub fn cumulative_overhead_frac(&self) -> f64 {
        if self.cum_busy > 0.0 {
            self.cum_sampling / self.cum_busy
        } else {
            0.0
        }
    }

    /// The cumulative-overhead allowance the one-window slack grants on
    /// top of the budget: the costliest single window's sampling cycles
    /// as a fraction of all busy cycles. AIMD corrects one window late,
    /// so one window's worth of overshoot is the contract's tolerated
    /// lag; the do-no-harm acceptance check is
    /// `cumulative_overhead_frac() <= budget_frac + slack_frac()`.
    pub fn slack_frac(&self) -> f64 {
        if self.cum_busy > 0.0 {
            self.max_window_sampling / self.cum_busy
        } else {
            0.0
        }
    }

    /// The budget the controller regulates against.
    pub fn budget_frac(&self) -> f64 {
        self.budget_frac
    }

    /// Accounts one window and returns the control decision.
    ///
    /// An idle window (no busy cycles) counts as within budget: there is
    /// nothing to harm, and backing off on it would only starve the next
    /// busy window of samples.
    pub fn observe(&mut self, window: &WindowSample) -> GovernorDecision {
        self.windows += 1;
        self.cum_busy += window.busy_cycles;
        self.cum_sampling += window.sampling_cycles;
        self.max_window_sampling = self.max_window_sampling.max(window.sampling_cycles);
        let overhead = window.overhead_frac();
        let action = if overhead > self.budget_frac {
            self.breaches += 1;
            self.breach_streak += 1;
            self.max_breach_streak = self.max_breach_streak.max(self.breach_streak);
            // Back off by the measured overshoot ratio with 3x headroom,
            // but never less than the configured multiplicative factor —
            // one correction must land the next window under budget even
            // when the load dips between windows or the context-switch
            // decimation stride rounds down (the one-window-slack
            // contract tolerates no second consecutive breach).
            let factor = (overhead / self.budget_frac * 3.0).max(self.backoff_factor);
            self.scale = (self.scale * factor).min(self.max_scale);
            self.backoffs += 1;
            GovernorAction::Backoff
        } else {
            self.breach_streak = 0;
            if overhead < self.budget_frac * self.recover_margin && self.scale > 1.0 {
                self.scale = (self.scale - self.recover_step).max(1.0);
                self.recoveries += 1;
                GovernorAction::Recover
            } else {
                GovernorAction::Hold
            }
        };
        GovernorDecision {
            action,
            scale: self.scale,
            overhead_frac: overhead,
        }
    }

    /// Serializes the controller's counters for reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("windows".into(), Json::Num(self.windows as f64)),
            ("backoffs".into(), Json::Num(self.backoffs as f64)),
            ("recoveries".into(), Json::Num(self.recoveries as f64)),
            ("breaches".into(), Json::Num(self.breaches as f64)),
            (
                "max_breach_streak".into(),
                Json::Num(self.max_breach_streak as f64),
            ),
            ("final_scale".into(), Json::Num(self.scale)),
            (
                "cumulative_overhead_frac".into(),
                Json::Num(self.cumulative_overhead_frac()),
            ),
            ("slack_frac".into(), Json::Num(self.slack_frac())),
            ("budget_frac".into(), Json::Num(self.budget_frac)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(busy: f64, sampling: f64) -> WindowSample {
        WindowSample {
            busy_cycles: busy,
            sampling_cycles: sampling,
            samples: 10,
            ..WindowSample::default()
        }
    }

    #[test]
    fn default_policy_validates() {
        GovernorPolicy::default().validate().unwrap();
        GovernorPolicy::observe_only().validate().unwrap();
    }

    #[test]
    fn bad_fields_are_rejected() {
        for bad in [
            GovernorPolicy {
                budget_frac: 0.0,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                window: Cycles::ZERO,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                backoff_factor: 1.0,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                recover_step: 0.0,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                max_scale: 0.5,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                recover_margin: 1.0,
                ..GovernorPolicy::default()
            },
            GovernorPolicy {
                power_cap: Some(crate::power::PowerCapPolicy {
                    cap_pstate: 0,
                    ..Default::default()
                }),
                ..GovernorPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
    }

    #[test]
    fn breach_backs_off_multiplicatively() {
        let mut g = Governor::new(&GovernorPolicy::default());
        // 5% overhead against a 1% budget: scale by overshoot * 3 = 15.
        let d = g.observe(&window(1e6, 5e4));
        assert_eq!(d.action, GovernorAction::Backoff);
        assert!((d.scale - 15.0).abs() < 1e-9, "scale {}", d.scale);
        assert_eq!(g.backoffs(), 1);
        assert_eq!(g.breaches(), 1);
    }

    #[test]
    fn recovery_is_additive_and_floored_at_one() {
        let mut g = Governor::new(&GovernorPolicy::default());
        g.observe(&window(1e6, 5e4)); // scale 15
        let mut last = g.scale();
        // Quiet windows (0.1% overhead, under the recover margin) walk the
        // scale back down by recover_step each window, stopping at 1.
        for _ in 0..70 {
            let d = g.observe(&window(1e6, 1e3));
            assert!(d.scale <= last);
            assert!(last - d.scale <= 0.25 + 1e-12);
            last = d.scale;
        }
        assert_eq!(last, 1.0);
        let d = g.observe(&window(1e6, 1e3));
        assert_eq!(d.action, GovernorAction::Hold, "no recovery below 1");
    }

    #[test]
    fn band_between_margin_and_budget_holds() {
        let mut g = Governor::new(&GovernorPolicy::default());
        g.observe(&window(1e6, 5e4));
        // 0.8% overhead: under budget but above the 0.5% recover margin.
        let d = g.observe(&window(1e6, 8e3));
        assert_eq!(d.action, GovernorAction::Hold);
    }

    #[test]
    fn idle_window_is_within_budget() {
        let mut g = Governor::new(&GovernorPolicy::default());
        let d = g.observe(&window(0.0, 0.0));
        assert_eq!(d.action, GovernorAction::Hold);
        assert_eq!(d.overhead_frac, 0.0);
        assert_eq!(g.max_breach_streak(), 0);
    }

    #[test]
    fn breach_streak_tracks_consecutive_overruns() {
        let mut g = Governor::new(&GovernorPolicy::default());
        g.observe(&window(1e6, 5e4));
        g.observe(&window(1e6, 1e3));
        g.observe(&window(1e6, 5e4));
        assert_eq!(g.breaches(), 2);
        assert_eq!(g.max_breach_streak(), 1);
    }

    #[test]
    fn scale_saturates_at_max() {
        let mut g = Governor::new(&GovernorPolicy::default());
        for _ in 0..20 {
            g.observe(&window(1e6, 9e5));
        }
        assert_eq!(g.scale(), GovernorPolicy::default().max_scale);
    }

    #[test]
    fn decisions_are_deterministic() {
        let windows: Vec<WindowSample> =
            (0..50).map(|i| window(1e6, (i % 7) as f64 * 4e3)).collect();
        let mut a = Governor::new(&GovernorPolicy::default());
        let mut b = Governor::new(&GovernorPolicy::default());
        for w in &windows {
            assert_eq!(a.observe(w), b.observe(w));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn json_reports_counters() {
        let mut g = Governor::new(&GovernorPolicy::default());
        g.observe(&window(1e6, 5e4));
        let json = g.to_json();
        assert_eq!(
            json.get("backoffs").and_then(Json::as_f64),
            Some(1.0),
            "{json:?}"
        );
        assert_eq!(json.get("budget_frac").and_then(Json::as_f64), Some(0.01));
    }
}
