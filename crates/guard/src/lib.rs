//! Runtime guardrails for the simulated RBV kernel.
//!
//! The paper's §3.4 "do no harm" rule bounds what measurement may cost;
//! the rest of the reproduction *reports* that bound after the fact. This
//! crate enforces it (and its neighbors) at runtime:
//!
//! * [`Governor`] — an AIMD closed-loop controller over the sampling
//!   intervals: multiplicative back-off when an accounting window's
//!   observer overhead breaches the budget, additive recovery when it is
//!   comfortably under;
//! * [`HealthLadder`] — a measurement-health score (lost interrupts,
//!   counter noise, sampling starvation, staleness) driving the easing
//!   scheduler down an explicit degradation ladder — easing → easing on
//!   frozen predictions → stock — with hysteresis bands and a dwell time
//!   so it cannot flap, and back up when health returns;
//! * [`InvariantMonitor`] — online checks of the simulator's conservation
//!   laws (request conservation, clock/counter monotonicity, quantum
//!   accounting, non-negative slack, energy conservation), counted per
//!   kind instead of panicking;
//! * [`PowerLadder`] — a power-capping ladder over smoothed thermal
//!   pressure — nominal → frequency cap → core park — with the same
//!   hysteresis-plus-dwell machinery, degrading proactively so the
//!   firmware thermal clamp (the punitive defense of last resort) never
//!   has to;
//! * [`fsx`] — crash-safe artifact files: tempfile + atomic-rename writes
//!   and corrupt-document detection on read.
//!
//! Everything here is a pure, RNG-free state machine over scalar window
//! inputs: the kernel (`rbv-os::machine`) owns the feedback loop and
//! feeds it counter deltas, which keeps this crate below `rbv-os` in the
//! dependency DAG and keeps governed runs deterministic — the same seed
//! yields the same decision sequence, and a disabled governor leaves the
//! engine's event stream untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fsx;
pub mod governor;
pub mod health;
pub mod invariant;
pub mod power;

pub use fsx::{read_document, write_atomic, DocumentError};
pub use governor::{Governor, GovernorAction, GovernorDecision, GovernorPolicy, WindowSample};
pub use health::{HealthLadder, HealthPolicy, LadderRung, LadderTransition};
pub use invariant::{CampaignInvariants, ClusterInvariants, InvariantKind, InvariantMonitor};
pub use power::{PowerCapPolicy, PowerLadder, PowerRung, PowerTransition};
