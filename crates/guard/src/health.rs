//! Measurement-health scoring and the scheduling degradation ladder.
//!
//! The contention-easing scheduler consumes per-request behavior
//! predictions whose inputs — hardware-counter samples — can go bad under
//! measurement faults (lost interrupts, counter noise, syscall-sampling
//! starvation). The one-shot confidence gate the engine used before this
//! module fell back to stock scheduling once and never recovered; this
//! ladder replaces it with three explicit rungs:
//!
//! 1. [`LadderRung::Easing`] — full contention easing, predictions update;
//! 2. [`LadderRung::FrozenPredictions`] — easing still schedules, but on
//!    the last trusted predictions (new samples stop feeding the
//!    predictor);
//! 3. [`LadderRung::Stock`] — plain FIFO dispatch, no easing decisions.
//!
//! A health score in [0, 1] — fed by the lost-interrupt rate, the
//! counter-noise variance proxy, syscall-sampling starvation, and sample
//! staleness — moves the ladder one rung per observation: down when the
//! smoothed score falls below [`HealthPolicy::degrade_below`], up when it
//! rises above [`HealthPolicy::recover_above`]. The gap between the two
//! thresholds is the hysteresis band, and [`HealthPolicy::dwell`] imposes
//! a minimum simulated time between any two transitions, so the ladder
//! cannot flap even when the score oscillates around a threshold.
//!
//! Below [`LadderRung::Stock`] the ladder continues into *overload*
//! territory, driven not by measurement health but by a separate
//! overload-pressure score (admission rejections, sheds, and queue
//! depth):
//!
//! 4. [`LadderRung::Shed`] — admission tightens and CoDel-style queue
//!    shedding becomes more aggressive;
//! 5. [`LadderRung::Brownout`] — a deterministic fraction of new arrivals
//!    is rejected outright to protect goodput of the admitted rest.
//!
//! Health-driven degradation is capped at `Stock`; only sustained
//! pressure above [`HealthPolicy::shed_above`] pushes the ladder into
//! `Shed`/`Brownout`, and pressure must fall below
//! [`HealthPolicy::pressure_recover_below`] before the ladder climbs back
//! to `Stock`. Zero-pressure windows therefore reproduce the original
//! three-rung behavior bit for bit.

use crate::governor::WindowSample;
use rbv_sim::Cycles;
use rbv_telemetry::Json;

/// A rung of the scheduling degradation ladder, healthiest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LadderRung {
    /// Full contention easing with live prediction updates.
    Easing,
    /// Easing on frozen (last trusted) predictions.
    FrozenPredictions,
    /// Stock FIFO scheduling; no easing decisions at all.
    Stock,
    /// Overload: admission tightens, queue shedding turns aggressive.
    Shed,
    /// Severe overload: a deterministic fraction of arrivals is rejected
    /// outright before admission.
    Brownout,
}

impl LadderRung {
    /// Every rung, healthiest first.
    pub const ALL: [LadderRung; 5] = [
        LadderRung::Easing,
        LadderRung::FrozenPredictions,
        LadderRung::Stock,
        LadderRung::Shed,
        LadderRung::Brownout,
    ];

    /// Stable lowercase label for telemetry and the ledger.
    pub fn label(&self) -> &'static str {
        match self {
            LadderRung::Easing => "easing",
            LadderRung::FrozenPredictions => "frozen_predictions",
            LadderRung::Stock => "stock",
            LadderRung::Shed => "shed",
            LadderRung::Brownout => "brownout",
        }
    }

    /// Position in [`LadderRung::ALL`] (0 = healthiest).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Whether this rung is in the overload band (`Shed` or below), where
    /// the engine tightens admission and sheds queue backlog.
    pub fn is_overloaded(&self) -> bool {
        self.index() > LadderRung::Stock.index()
    }

    /// Health-driven degradation: one rung down, capped at `Stock`. The
    /// overload rungs below are entered only on pressure (see
    /// [`HealthLadder::observe`]).
    fn degraded(self) -> LadderRung {
        match self {
            LadderRung::Easing => LadderRung::FrozenPredictions,
            LadderRung::FrozenPredictions => LadderRung::Stock,
            other => other,
        }
    }

    fn recovered(self) -> LadderRung {
        match self {
            LadderRung::Brownout => LadderRung::Shed,
            LadderRung::Shed => LadderRung::Stock,
            LadderRung::Stock => LadderRung::FrozenPredictions,
            _ => LadderRung::Easing,
        }
    }

    /// Pressure-driven degradation: one rung down with no cap — sustained
    /// overload walks the ladder all the way to `Brownout`.
    fn pressured(self) -> LadderRung {
        match self {
            LadderRung::Easing => LadderRung::FrozenPredictions,
            LadderRung::FrozenPredictions => LadderRung::Stock,
            LadderRung::Stock => LadderRung::Shed,
            _ => LadderRung::Brownout,
        }
    }
}

/// Health scoring weights and ladder bands.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// Degrade one rung when the smoothed score falls below this.
    pub degrade_below: f64,
    /// Recover one rung when the smoothed score rises above this; must
    /// exceed `degrade_below` (the gap is the hysteresis band).
    pub recover_above: f64,
    /// Minimum simulated time between two ladder transitions.
    pub dwell: Cycles,
    /// Penalty weight of the lost-interrupt rate.
    pub w_lost: f64,
    /// Penalty weight of counter noise (prediction-error EWMA or the
    /// low-confidence sample rate, whichever indicts the counters more).
    pub w_noise: f64,
    /// Penalty weight of syscall-sampling starvation.
    pub w_starved: f64,
    /// Penalty weight of sample staleness.
    pub w_stale: f64,
    /// Prediction error treated as total noise (normalization reference
    /// for the noise term; matches the chaos easing gate's 0.35).
    pub noise_ref: f64,
    /// Smoothing factor for the score EWMA (weight of the new window).
    pub alpha: f64,
    /// Degrade one rung toward `Shed`/`Brownout` when the smoothed
    /// overload pressure rises above this.
    pub shed_above: f64,
    /// Recover one rung out of the overload band when the smoothed
    /// pressure falls below this; must be below `shed_above` (the gap is
    /// the overload hysteresis band).
    pub pressure_recover_below: f64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            degrade_below: 0.6,
            recover_above: 0.8,
            dwell: Cycles::from_millis(2),
            w_lost: 0.35,
            w_noise: 0.25,
            w_starved: 0.2,
            w_stale: 0.2,
            noise_ref: 0.35,
            alpha: 0.5,
            shed_above: 0.5,
            pressure_recover_below: 0.2,
        }
    }
}

impl HealthPolicy {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    // Negated comparisons are deliberate throughout: `!(x > 0.0)`
    // rejects NaN along with out-of-range values, which `x <= 0.0`
    // would silently admit.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.degrade_below > 0.0 && self.degrade_below < 1.0) {
            return Err(format!(
                "health degrade_below must be in (0, 1), got {}",
                self.degrade_below
            ));
        }
        if !(self.recover_above > self.degrade_below && self.recover_above <= 1.0) {
            return Err(format!(
                "health recover_above must be in (degrade_below, 1], got {}",
                self.recover_above
            ));
        }
        if self.dwell.is_zero() {
            return Err("health dwell must be nonzero".into());
        }
        for (name, w) in [
            ("w_lost", self.w_lost),
            ("w_noise", self.w_noise),
            ("w_starved", self.w_starved),
            ("w_stale", self.w_stale),
        ] {
            if !(0.0..=1.0).contains(&w) {
                return Err(format!("health {name} must be in [0, 1], got {w}"));
            }
        }
        if !(self.noise_ref > 0.0) {
            return Err(format!(
                "health noise_ref must be positive, got {}",
                self.noise_ref
            ));
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!(
                "health alpha must be in (0, 1], got {}",
                self.alpha
            ));
        }
        if !(self.shed_above > 0.0 && self.shed_above <= 1.0) {
            return Err(format!(
                "health shed_above must be in (0, 1], got {}",
                self.shed_above
            ));
        }
        if !(self.pressure_recover_below > 0.0 && self.pressure_recover_below < self.shed_above) {
            return Err(format!(
                "health pressure_recover_below must be in (0, shed_above), got {}",
                self.pressure_recover_below
            ));
        }
        Ok(())
    }

    /// Scores one window's measurement health in [0, 1] (1 = healthy).
    pub fn score(&self, window: &WindowSample) -> f64 {
        let taken = window.samples + window.samples_lost;
        let lost_rate = if taken > 0 {
            window.samples_lost as f64 / taken as f64
        } else {
            0.0
        };
        let lowconf_rate = if window.samples > 0 {
            window.samples_low_confidence as f64 / window.samples as f64
        } else {
            0.0
        };
        let noise = (window.noise_ewma / self.noise_ref)
            .max(lowconf_rate)
            .clamp(0.0, 1.0);
        let starved = (window.starvation_windows as f64 / 2.0).clamp(0.0, 1.0);
        let stale = window.staleness_frac.clamp(0.0, 1.0);
        let penalty = self.w_lost * lost_rate
            + self.w_noise * noise
            + self.w_starved * starved
            + self.w_stale * stale;
        (1.0 - penalty).clamp(0.0, 1.0)
    }

    /// Scores one window's overload pressure in [0, 1] (0 = no overload).
    ///
    /// Weighs the rejection rate (admission rejections + sheds per
    /// offered arrival) against queue depth relative to the admission
    /// bound. A window with no arrivals and empty queues scores 0, so
    /// closed-loop runs never see the overload rungs.
    pub fn pressure(&self, window: &WindowSample) -> f64 {
        let reject_rate = if window.offered > 0 {
            (window.rejected as f64 / window.offered as f64).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let queue = window.queue_frac.clamp(0.0, 1.0);
        (0.6 * reject_rate + 0.4 * queue).clamp(0.0, 1.0)
    }
}

/// A ladder transition, as reported to telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderTransition {
    /// The rung the ladder left.
    pub from: LadderRung,
    /// The rung the ladder entered.
    pub to: LadderRung,
    /// The smoothed health score at the time of the move.
    pub score: f64,
    /// The smoothed overload pressure at the time of the move.
    pub pressure: f64,
}

/// The degradation-ladder state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthLadder {
    policy: HealthPolicy,
    rung: LadderRung,
    smoothed: f64,
    pressure_smoothed: f64,
    primed: bool,
    last_transition: Option<Cycles>,
    transitions: u64,
}

impl HealthLadder {
    /// Builds a ladder starting on the healthiest rung.
    pub fn new(policy: HealthPolicy) -> HealthLadder {
        HealthLadder {
            policy,
            rung: LadderRung::Easing,
            smoothed: 1.0,
            pressure_smoothed: 0.0,
            primed: false,
            last_transition: None,
            transitions: 0,
        }
    }

    /// The current rung.
    pub fn rung(&self) -> LadderRung {
        self.rung
    }

    /// The smoothed health score (1 before any observation).
    pub fn score(&self) -> f64 {
        self.smoothed
    }

    /// The smoothed overload pressure (0 before any observation).
    pub fn pressure(&self) -> f64 {
        self.pressure_smoothed
    }

    /// Transitions taken so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Scores one window, updates the smoothed health and pressure, and
    /// moves at most one rung — but never within [`HealthPolicy::dwell`]
    /// of the previous transition.
    ///
    /// Pressure outranks health: a window over
    /// [`HealthPolicy::shed_above`] pushes the ladder one rung down
    /// (toward `Brownout`) regardless of the health score, and the ladder
    /// cannot climb out of the overload band until pressure falls below
    /// [`HealthPolicy::pressure_recover_below`]. With zero pressure the
    /// original three-rung health behavior is reproduced exactly —
    /// health-driven degradation is capped at `Stock`.
    pub fn observe(&mut self, window: &WindowSample, now: Cycles) -> Option<LadderTransition> {
        let score = self.policy.score(window);
        let pressure = self.policy.pressure(window);
        if self.primed {
            self.smoothed = (1.0 - self.policy.alpha) * self.smoothed + self.policy.alpha * score;
            self.pressure_smoothed =
                (1.0 - self.policy.alpha) * self.pressure_smoothed + self.policy.alpha * pressure;
        } else {
            self.primed = true;
            self.smoothed = score;
            self.pressure_smoothed = pressure;
        }
        if let Some(last) = self.last_transition {
            if now.saturating_sub(last) < self.policy.dwell {
                return None;
            }
        }
        let next = if self.pressure_smoothed > self.policy.shed_above {
            self.rung.pressured()
        } else if self.rung.is_overloaded() {
            if self.pressure_smoothed < self.policy.pressure_recover_below {
                self.rung.recovered()
            } else {
                self.rung
            }
        } else if self.smoothed < self.policy.degrade_below {
            self.rung.degraded()
        } else if self.smoothed > self.policy.recover_above {
            self.rung.recovered()
        } else {
            self.rung
        };
        if next == self.rung {
            return None;
        }
        let transition = LadderTransition {
            from: self.rung,
            to: next,
            score: self.smoothed,
            pressure: self.pressure_smoothed,
        };
        self.rung = next;
        self.last_transition = Some(now);
        self.transitions += 1;
        Some(transition)
    }

    /// Serializes the ladder state for reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rung".into(), Json::str(self.rung.label())),
            ("score".into(), Json::Num(self.smoothed)),
            ("pressure".into(), Json::Num(self.pressure_smoothed)),
            ("transitions".into(), Json::Num(self.transitions as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sick() -> WindowSample {
        WindowSample {
            busy_cycles: 1e6,
            sampling_cycles: 1e3,
            samples: 10,
            samples_lost: 30,
            samples_low_confidence: 8,
            starvation_windows: 3,
            staleness_frac: 1.0,
            noise_ewma: 1.0,
            ..WindowSample::default()
        }
    }

    fn overloaded() -> WindowSample {
        WindowSample {
            busy_cycles: 1e6,
            sampling_cycles: 1e3,
            samples: 50,
            offered: 100,
            rejected: 90,
            queue_frac: 1.0,
            ..WindowSample::default()
        }
    }

    fn healthy() -> WindowSample {
        WindowSample {
            busy_cycles: 1e6,
            sampling_cycles: 1e3,
            samples: 50,
            ..WindowSample::default()
        }
    }

    #[test]
    fn default_policy_validates() {
        HealthPolicy::default().validate().unwrap();
    }

    #[test]
    fn inverted_bands_are_rejected() {
        let bad = HealthPolicy {
            degrade_below: 0.8,
            recover_above: 0.6,
            ..HealthPolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn score_is_one_when_clean_and_low_when_stormy() {
        let p = HealthPolicy::default();
        assert_eq!(p.score(&healthy()), 1.0);
        assert!(p.score(&sick()) < 0.3, "score {}", p.score(&sick()));
    }

    #[test]
    fn ladder_degrades_one_rung_at_a_time() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        let t1 = ladder.observe(&sick(), Cycles::new(1)).unwrap();
        assert_eq!(t1.from, LadderRung::Easing);
        assert_eq!(t1.to, LadderRung::FrozenPredictions);
        let t2 = ladder.observe(&sick(), Cycles::new(1) + dwell).unwrap();
        assert_eq!(t2.to, LadderRung::Stock);
        // Already at the bottom: stays put.
        assert!(ladder
            .observe(&sick(), Cycles::new(1) + dwell * 2)
            .is_none());
        assert_eq!(ladder.rung(), LadderRung::Stock);
    }

    #[test]
    fn ladder_recovers_when_health_returns() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        ladder.observe(&sick(), Cycles::new(1));
        ladder.observe(&sick(), Cycles::new(1) + dwell);
        assert_eq!(ladder.rung(), LadderRung::Stock);
        let mut now = Cycles::new(1) + dwell * 2;
        let mut rungs = vec![];
        for _ in 0..8 {
            if let Some(t) = ladder.observe(&healthy(), now) {
                rungs.push(t.to);
            }
            now += dwell;
        }
        assert_eq!(
            rungs,
            vec![LadderRung::FrozenPredictions, LadderRung::Easing],
            "recovers one rung at a time"
        );
    }

    #[test]
    fn dwell_blocks_back_to_back_transitions() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        assert!(ladder.observe(&sick(), Cycles::new(1)).is_some());
        // Inside the dwell window nothing moves, however sick.
        assert!(ladder
            .observe(
                &sick(),
                Cycles::new(1) + dwell.saturating_sub(Cycles::new(1))
            )
            .is_none());
        assert_eq!(ladder.rung(), LadderRung::FrozenPredictions);
    }

    #[test]
    fn hysteresis_band_holds_between_thresholds() {
        // Score landing between the bands moves nothing in either direction.
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let in_band = WindowSample {
            samples: 10,
            samples_lost: 14,
            staleness_frac: 0.5,
            ..healthy()
        };
        let score = HealthPolicy::default().score(&in_band);
        assert!(
            score > 0.6 && score < 0.8,
            "fixture must land in the band, got {score}"
        );
        for i in 0..20 {
            assert!(ladder
                .observe(&in_band, Cycles::from_millis(8 * (i + 1)))
                .is_none());
        }
        assert_eq!(ladder.rung(), LadderRung::Easing);
    }

    #[test]
    fn json_reports_rung_and_score() {
        let ladder = HealthLadder::new(HealthPolicy::default());
        let json = ladder.to_json();
        assert_eq!(json.get("rung").and_then(Json::as_str), Some("easing"));
        assert_eq!(json.get("transitions").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn rung_labels_and_indices_are_stable() {
        for (i, rung) in LadderRung::ALL.iter().enumerate() {
            assert_eq!(rung.index(), i);
        }
        assert_eq!(LadderRung::FrozenPredictions.label(), "frozen_predictions");
        assert_eq!(LadderRung::Shed.label(), "shed");
        assert_eq!(LadderRung::Brownout.label(), "brownout");
        assert!(LadderRung::Shed.is_overloaded());
        assert!(LadderRung::Brownout.is_overloaded());
        assert!(!LadderRung::Stock.is_overloaded());
    }

    #[test]
    fn pressure_is_zero_without_arrivals_and_high_under_rejections() {
        let p = HealthPolicy::default();
        assert_eq!(p.pressure(&healthy()), 0.0);
        assert_eq!(p.pressure(&sick()), 0.0, "health faults are not pressure");
        assert!(p.pressure(&overloaded()) > 0.9);
    }

    #[test]
    fn sustained_pressure_walks_the_ladder_into_brownout() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        let mut now = Cycles::new(1);
        let mut rungs = vec![];
        for _ in 0..8 {
            if let Some(t) = ladder.observe(&overloaded(), now) {
                rungs.push(t.to);
            }
            now += dwell;
        }
        assert_eq!(
            rungs,
            vec![
                LadderRung::FrozenPredictions,
                LadderRung::Stock,
                LadderRung::Shed,
                LadderRung::Brownout,
            ],
            "one rung per dwell, all the way down"
        );
        assert_eq!(ladder.rung(), LadderRung::Brownout);
    }

    #[test]
    fn overload_band_recovers_only_when_pressure_clears() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        let mut now = Cycles::new(1);
        for _ in 0..8 {
            ladder.observe(&overloaded(), now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), LadderRung::Brownout);
        // Healthy but still-pressured windows hold the rung.
        let lingering = WindowSample {
            offered: 100,
            rejected: 40,
            queue_frac: 0.5,
            ..healthy()
        };
        let p = HealthPolicy::default();
        let lp = p.pressure(&lingering);
        assert!(
            lp < p.shed_above && lp > p.pressure_recover_below,
            "fixture must land in the pressure band, got {lp}"
        );
        for _ in 0..6 {
            assert!(ladder.observe(&lingering, now).is_none());
            now += dwell;
        }
        assert_eq!(ladder.rung(), LadderRung::Brownout);
        // Pressure clears: one rung back per dwell, through Shed and
        // Stock, then the health path resumes toward Easing.
        let mut rungs = vec![];
        for _ in 0..10 {
            if let Some(t) = ladder.observe(&healthy(), now) {
                rungs.push(t.to);
            }
            now += dwell;
        }
        assert_eq!(
            rungs,
            vec![
                LadderRung::Shed,
                LadderRung::Stock,
                LadderRung::FrozenPredictions,
                LadderRung::Easing,
            ]
        );
    }

    #[test]
    fn zero_pressure_keeps_stock_as_the_health_floor() {
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let dwell = HealthPolicy::default().dwell;
        let mut now = Cycles::new(1);
        for _ in 0..10 {
            ladder.observe(&sick(), now);
            now += dwell;
        }
        assert_eq!(
            ladder.rung(),
            LadderRung::Stock,
            "health faults alone never reach the overload band"
        );
    }

    #[test]
    fn pressure_bands_are_validated() {
        let bad = HealthPolicy {
            shed_above: 0.2,
            pressure_recover_below: 0.5,
            ..HealthPolicy::default()
        };
        assert!(bad.validate().is_err());
        let nan = HealthPolicy {
            shed_above: f64::NAN,
            ..HealthPolicy::default()
        };
        assert!(nan.validate().is_err());
    }
}
