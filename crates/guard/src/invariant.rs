//! Runtime invariant monitor for the simulated kernel.
//!
//! The simulator's correctness rests on a handful of conservation laws
//! that no unit test can check *during* a chaos run: requests are neither
//! created nor destroyed by scheduling, the simulated clock and the
//! cumulative counters never run backwards, a window cannot account more
//! busy cycles than its cores had, and the governed observer overhead
//! keeps non-negative slack (up to the one-window correction lag). This
//! monitor checks them online — every accounting window in governed and
//! debug runs — and counts violations per kind instead of panicking, so a
//! broken invariant surfaces as a `guard.*` metric and a failed gate
//! rather than a lost run.

use rbv_telemetry::Json;

/// The invariant families the monitor checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Generated requests = live + completed + failed + not yet admitted.
    RequestConservation,
    /// The simulated clock never moves backwards.
    ClockMonotonic,
    /// Cumulative counters never decrease and stay finite.
    CounterMonotonic,
    /// A window accounts at most `cores * elapsed` busy cycles.
    QuantumAccounting,
    /// Governed overhead keeps non-negative slack, with at most one
    /// consecutive over-budget window (the AIMD correction lag).
    NonNegativeSlack,
    /// A reconstructed request span's stage durations (queue + service +
    /// backoff + other) sum exactly to its client-visible latency.
    SpanAccounting,
    /// Attempt identity is conserved across the retry model: every queue
    /// entry carries the request's current client generation, and a
    /// client retry announces exactly the next generation.
    AttemptConservation,
    /// Energy is conserved exactly: the per-core fixed-point energy
    /// accumulators sum (integer arithmetic, no tolerance) to the run's
    /// running per-slice power·dt total.
    EnergyConservation,
    /// Every core's effective P-state stays within the configured
    /// frequency ladder's bounds.
    FrequencyBounds,
    /// Throttle events are conserved: per-core engage counts minus
    /// release counts equal the number of cores currently throttled.
    ThrottleConservation,
}

impl InvariantKind {
    /// Every kind, in metric order.
    pub const ALL: [InvariantKind; 10] = [
        InvariantKind::RequestConservation,
        InvariantKind::ClockMonotonic,
        InvariantKind::CounterMonotonic,
        InvariantKind::QuantumAccounting,
        InvariantKind::NonNegativeSlack,
        InvariantKind::SpanAccounting,
        InvariantKind::AttemptConservation,
        InvariantKind::EnergyConservation,
        InvariantKind::FrequencyBounds,
        InvariantKind::ThrottleConservation,
    ];

    /// Stable snake_case label for metrics and the ledger.
    pub fn label(&self) -> &'static str {
        match self {
            InvariantKind::RequestConservation => "request_conservation",
            InvariantKind::ClockMonotonic => "clock_monotonic",
            InvariantKind::CounterMonotonic => "counter_monotonic",
            InvariantKind::QuantumAccounting => "quantum_accounting",
            InvariantKind::NonNegativeSlack => "non_negative_slack",
            InvariantKind::SpanAccounting => "span_accounting",
            InvariantKind::AttemptConservation => "attempt_conservation",
            InvariantKind::EnergyConservation => "energy_conservation",
            InvariantKind::FrequencyBounds => "frequency_bounds",
            InvariantKind::ThrottleConservation => "throttle_conservation",
        }
    }

    /// Position in [`InvariantKind::ALL`].
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// Online invariant checker: counts checks and violations per kind and
/// keeps the first violation's detail for diagnostics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InvariantMonitor {
    checks: u64,
    violations: [u64; InvariantKind::ALL.len()],
    first_violation: Option<String>,
    last_violation: Option<(InvariantKind, String)>,
}

impl InvariantMonitor {
    /// A fresh monitor with no checks recorded.
    pub fn new() -> InvariantMonitor {
        InvariantMonitor::default()
    }

    fn record(&mut self, kind: InvariantKind, ok: bool, detail: impl FnOnce() -> String) -> bool {
        self.checks += 1;
        if !ok {
            self.violations[kind.index()] += 1;
            let detail = detail();
            if self.first_violation.is_none() {
                self.first_violation = Some(format!("{}: {}", kind.label(), detail));
            }
            self.last_violation = Some((kind, detail));
        }
        ok
    }

    /// Checks request conservation: every generated request is live,
    /// completed, failed, or not yet admitted.
    pub fn check_request_conservation(
        &mut self,
        generated: u64,
        live: u64,
        completed: u64,
        failed: u64,
        pending: u64,
    ) -> bool {
        let accounted = live + completed + failed + pending;
        self.record(
            InvariantKind::RequestConservation,
            generated == accounted,
            || format!("generated {generated} != live {live} + completed {completed} + failed {failed} + pending {pending}"),
        )
    }

    /// Checks the simulated clock only moves forward.
    pub fn check_clock_monotonic(&mut self, prev_cycles: u64, now_cycles: u64) -> bool {
        self.record(
            InvariantKind::ClockMonotonic,
            now_cycles >= prev_cycles,
            || format!("clock went backwards: {prev_cycles} -> {now_cycles}"),
        )
    }

    /// Checks a cumulative counter never decreased and stayed finite.
    pub fn check_counter_monotonic(&mut self, label: &str, prev: f64, now: f64) -> bool {
        self.record(
            InvariantKind::CounterMonotonic,
            now.is_finite() && now + 1e-9 >= prev,
            || format!("counter {label} went backwards: {prev} -> {now}"),
        )
    }

    /// Checks a window accounted at most `cores * elapsed` busy cycles.
    pub fn check_quantum_accounting(
        &mut self,
        busy_delta: f64,
        elapsed_cycles: u64,
        cores: u64,
    ) -> bool {
        let capacity = elapsed_cycles as f64 * cores as f64;
        self.record(
            InvariantKind::QuantumAccounting,
            busy_delta <= capacity * (1.0 + 1e-9) + 1.0,
            || format!("window accounted {busy_delta} busy cycles > capacity {capacity}"),
        )
    }

    /// Checks the governed overhead held non-negative slack up to the
    /// one-window AIMD correction lag (no two consecutive breach windows).
    pub fn check_non_negative_slack(&mut self, max_breach_streak: u64) -> bool {
        self.record(
            InvariantKind::NonNegativeSlack,
            max_breach_streak <= 1,
            || format!("{max_breach_streak} consecutive over-budget windows"),
        )
    }

    /// Checks a reconstructed span's stage buckets sum exactly (u64
    /// cycle arithmetic, no tolerance) to its client-visible latency.
    pub fn check_span_accounting(
        &mut self,
        rid: u64,
        queue: u64,
        service: u64,
        backoff: u64,
        other: u64,
        client_visible: u64,
    ) -> bool {
        let sum = queue + service + backoff + other;
        self.record(InvariantKind::SpanAccounting, sum == client_visible, || {
            format!(
                "rid {rid}: queue {queue} + service {service} + backoff {backoff} \
                 + other {other} = {sum} != client-visible {client_visible}"
            )
        })
    }

    /// Checks attempt identity conservation: an observed attempt
    /// generation (on a queue entry or retry announcement) matches the
    /// generation the span tracker expects for the request.
    pub fn check_attempt_conservation(
        &mut self,
        rid: u64,
        site: &str,
        expected: u32,
        observed: u32,
    ) -> bool {
        self.record(
            InvariantKind::AttemptConservation,
            expected == observed,
            || format!("rid {rid} {site}: attempt {observed} != expected {expected}"),
        )
    }

    /// Checks exact energy conservation: the per-core fixed-point energy
    /// accumulators (µW·cycles) sum — in u128 integer arithmetic, no
    /// tolerance — to the running per-slice power·dt total.
    pub fn check_energy_conservation(
        &mut self,
        core_sum_uw_cycles: u128,
        total_uw_cycles: u128,
    ) -> bool {
        self.record(
            InvariantKind::EnergyConservation,
            core_sum_uw_cycles == total_uw_cycles,
            || {
                format!(
                    "core energy sum {core_sum_uw_cycles} uW-cycles != running total {total_uw_cycles}"
                )
            },
        )
    }

    /// Checks a core's effective P-state sits within the frequency
    /// ladder's bounds and its ratio is a sane milli-fraction.
    pub fn check_frequency_bounds(
        &mut self,
        core: u64,
        pstate: u64,
        pstates: u64,
        ratio_milli: u64,
    ) -> bool {
        self.record(
            InvariantKind::FrequencyBounds,
            pstate < pstates && (1..=1000).contains(&ratio_milli),
            || {
                format!(
                    "core {core}: P-state {pstate} (of {pstates}) at ratio {ratio_milli} \
                     outside the ladder"
                )
            },
        )
    }

    /// Checks throttle-event conservation: engages minus releases must
    /// equal the number of cores currently throttled (u64 arithmetic).
    pub fn check_throttle_conservation(
        &mut self,
        engages: u64,
        releases: u64,
        throttled_now: u64,
    ) -> bool {
        self.record(
            InvariantKind::ThrottleConservation,
            engages == releases + throttled_now,
            || {
                format!(
                    "throttle engages {engages} != releases {releases} + currently throttled \
                     {throttled_now}"
                )
            },
        )
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Violations per kind, in [`InvariantKind::ALL`] order.
    pub fn violations(&self) -> [u64; InvariantKind::ALL.len()] {
        self.violations
    }

    /// Total violations across every kind.
    pub fn violations_total(&self) -> u64 {
        self.violations.iter().sum()
    }

    /// The first violation's labeled detail, if any.
    pub fn first_violation(&self) -> Option<&str> {
        self.first_violation.as_deref()
    }

    /// The most recent violation's kind and detail, if any.
    pub fn last_violation(&self) -> Option<(InvariantKind, &str)> {
        self.last_violation.as_ref().map(|(k, d)| (*k, d.as_str()))
    }

    /// Serializes the monitor for reports: totals plus per-kind counts.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checks".into(), Json::Num(self.checks as f64)),
            (
                "violations".into(),
                Json::Num(self.violations_total() as f64),
            ),
            (
                "by_kind".into(),
                Json::Obj(
                    InvariantKind::ALL
                        .iter()
                        .map(|k| {
                            (
                                k.label().to_string(),
                                Json::Num(self.violations[k.index()] as f64),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Campaign-level invariant checker for the cross-run warehouse.
///
/// Where [`InvariantMonitor`] guards one simulation while it runs, this
/// checker guards the *merge step* that folds many shard digests into a
/// warehouse: counts must be conserved (a merged cell holds exactly the
/// sum of its shards' observations), merged extrema must bracket every
/// shard's extrema, and the grid must be fully covered (every expected
/// shard present exactly once). A violated merge invariant means the
/// warehouse is lying about the campaign, so violations surface in the
/// campaign report and fail its gate rather than panicking mid-merge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignInvariants {
    checks: u64,
    violations: u64,
    first_violation: Option<String>,
}

impl CampaignInvariants {
    /// A fresh checker with no checks recorded.
    pub fn new() -> CampaignInvariants {
        CampaignInvariants::default()
    }

    fn record(&mut self, ok: bool, detail: impl FnOnce() -> String) -> bool {
        self.checks += 1;
        if !ok {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(detail());
            }
        }
        ok
    }

    /// Checks observation-count conservation across a merge: the merged
    /// cell must hold exactly the sum of its shards' counts.
    pub fn check_count_conservation(
        &mut self,
        label: &str,
        shard_sum: u64,
        merged_count: u64,
    ) -> bool {
        self.record(shard_sum == merged_count, || {
            format!("{label}: merged count {merged_count} != shard sum {shard_sum}")
        })
    }

    /// Checks the merged extrema bracket the shard extrema exactly: the
    /// merged minimum is the smallest shard minimum and the merged
    /// maximum the largest shard maximum.
    pub fn check_merged_extrema(
        &mut self,
        label: &str,
        shard_min: Option<f64>,
        shard_max: Option<f64>,
        merged_min: Option<f64>,
        merged_max: Option<f64>,
    ) -> bool {
        self.record(shard_min == merged_min && shard_max == merged_max, || {
            format!(
                "{label}: merged extrema ({merged_min:?}, {merged_max:?}) != \
                 shard extrema ({shard_min:?}, {shard_max:?})"
            )
        })
    }

    /// Checks grid coverage: every expected shard arrived exactly once.
    pub fn check_grid_coverage(&mut self, expected_shards: u64, seen_shards: u64) -> bool {
        self.record(expected_shards == seen_shards, || {
            format!("grid coverage: expected {expected_shards} shards, merged {seen_shards}")
        })
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first violation's detail, if any.
    pub fn first_violation(&self) -> Option<&str> {
        self.first_violation.as_deref()
    }

    /// Serializes the checker for the campaign report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checks".into(), Json::Num(self.checks as f64)),
            ("violations".into(), Json::Num(self.violations as f64)),
        ])
    }
}

/// Conservation checks for a multi-machine cluster run, mirroring
/// [`CampaignInvariants`]: the `rbv-cluster` event loop feeds it
/// per-request and end-of-run facts, and the cluster ledger records the
/// verdicts (and treats any violation as fatal).
///
/// The load-bearing check is the exact latency partition: a request's
/// per-tier leg residencies plus its network hops must sum — in integer
/// cycles, no tolerance — to its client-visible latency. That is the
/// cross-machine extension of the single-machine `SpanAccounting`
/// invariant.
///
/// # Example
///
/// ```
/// use rbv_guard::ClusterInvariants;
///
/// let mut inv = ClusterInvariants::new();
/// // legs 120 + 380, hops 40 + 60, client-visible 600: exact partition.
/// assert!(inv.check_latency_partition(7, 500, 100, 600));
/// assert!(inv.check_request_conservation(1, 1, 0));
/// assert_eq!(inv.violations(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterInvariants {
    checks: u64,
    violations: u64,
    first_violation: Option<String>,
}

impl ClusterInvariants {
    /// A fresh checker with no checks recorded.
    pub fn new() -> ClusterInvariants {
        ClusterInvariants::default()
    }

    fn record(&mut self, ok: bool, detail: impl FnOnce() -> String) -> bool {
        self.checks += 1;
        if !ok {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(detail());
            }
        }
        ok
    }

    /// Checks cluster-wide request conservation: every request offered
    /// to the cluster was either delivered back to the client or failed.
    pub fn check_request_conservation(
        &mut self,
        offered: u64,
        delivered: u64,
        failed: u64,
    ) -> bool {
        self.record(offered == delivered + failed, || {
            format!(
                "cluster request conservation: offered {offered} != \
                 delivered {delivered} + failed {failed}"
            )
        })
    }

    /// Checks hop accounting: every network departure was delivered —
    /// the cluster's links buffer nothing and drop nothing once a run
    /// has drained.
    pub fn check_hop_accounting(&mut self, departures: u64, deliveries: u64) -> bool {
        self.record(departures == deliveries, || {
            format!("hop accounting: {departures} departures != {deliveries} deliveries")
        })
    }

    /// Checks the exact cross-tier latency partition for one request:
    /// per-tier leg residencies plus network hop times must sum to the
    /// client-visible latency in integer cycles.
    pub fn check_latency_partition(
        &mut self,
        rid: u64,
        leg_cycles: u64,
        hop_cycles: u64,
        client_visible: u64,
    ) -> bool {
        self.record(leg_cycles + hop_cycles == client_visible, || {
            format!(
                "request {rid}: legs {leg_cycles} + hops {hop_cycles} != \
                 client-visible {client_visible}"
            )
        })
    }

    /// Checks a leg's internal split: on-CPU service can never exceed
    /// the leg's total residence on the machine.
    pub fn check_service_bound(&mut self, rid: u64, service: u64, leg_total: u64) -> bool {
        self.record(service <= leg_total, || {
            format!("request {rid}: leg service {service} exceeds residence {leg_total}")
        })
    }

    /// Checks one leg's exact internal partition: wait plus service must
    /// equal the leg's residence (arrival to completion on the machine)
    /// in integer cycles.
    pub fn check_leg_partition(
        &mut self,
        rid: u64,
        wait: u64,
        service: u64,
        residence: u64,
    ) -> bool {
        self.record(wait + service == residence, || {
            format!("request {rid}: leg wait {wait} + service {service} != residence {residence}")
        })
    }

    /// Total checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total violations.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first violation's detail, if any.
    pub fn first_violation(&self) -> Option<&str> {
        self.first_violation.as_deref()
    }

    /// Merges another checker's tallies into this one (shard fold; the
    /// first violation in fold order wins).
    pub fn absorb(&mut self, other: &ClusterInvariants) {
        self.checks += other.checks;
        self.violations += other.violations;
        if self.first_violation.is_none() {
            self.first_violation = other.first_violation.clone();
        }
    }

    /// Serializes the checker for the cluster ledger.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("checks".into(), Json::Num(self.checks as f64)),
            ("violations".into(), Json::Num(self.violations as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_checks_count_without_violations() {
        let mut m = InvariantMonitor::new();
        assert!(m.check_request_conservation(10, 2, 5, 1, 2));
        assert!(m.check_clock_monotonic(5, 5));
        assert!(m.check_counter_monotonic("busy", 1.0, 2.0));
        assert!(m.check_quantum_accounting(100.0, 50, 4));
        assert!(m.check_non_negative_slack(1));
        assert!(m.check_span_accounting(1, 10, 20, 5, 5, 40));
        assert!(m.check_attempt_conservation(1, "queue_enter", 2, 2));
        assert!(m.check_energy_conservation(12_345, 12_345));
        assert!(m.check_frequency_bounds(0, 4, 5, 600));
        assert!(m.check_throttle_conservation(3, 2, 1));
        assert_eq!(m.checks(), 10);
        assert_eq!(m.violations_total(), 0);
        assert!(m.first_violation().is_none());
    }

    #[test]
    fn each_kind_counts_its_own_violations() {
        let mut m = InvariantMonitor::new();
        assert!(!m.check_request_conservation(10, 1, 1, 1, 1));
        assert!(!m.check_clock_monotonic(7, 3));
        assert!(!m.check_counter_monotonic("busy", 5.0, 4.0));
        assert!(!m.check_counter_monotonic("cpi", 0.0, f64::NAN));
        assert!(!m.check_quantum_accounting(1e9, 10, 4));
        assert!(!m.check_non_negative_slack(3));
        assert!(!m.check_span_accounting(7, 10, 20, 5, 0, 40));
        assert!(!m.check_attempt_conservation(7, "queue_enter", 1, 2));
        assert!(!m.check_energy_conservation(12_345, 12_346));
        assert!(!m.check_frequency_bounds(2, 5, 5, 600));
        assert!(!m.check_frequency_bounds(2, 1, 5, 1_500));
        assert!(!m.check_throttle_conservation(3, 3, 1));
        assert_eq!(m.violations(), [1, 1, 2, 1, 1, 1, 1, 1, 2, 1]);
        let first = m.first_violation().unwrap();
        assert!(first.starts_with("request_conservation:"), "{first}");
    }

    #[test]
    fn slack_tolerates_exactly_one_window() {
        let mut m = InvariantMonitor::new();
        assert!(m.check_non_negative_slack(0));
        assert!(m.check_non_negative_slack(1));
        assert!(!m.check_non_negative_slack(2));
    }

    #[test]
    fn campaign_checker_flags_merge_lies() {
        let mut c = CampaignInvariants::new();
        assert!(c.check_count_conservation("web.cpi", 120, 120));
        assert!(c.check_merged_extrema("web.cpi", Some(0.5), Some(9.0), Some(0.5), Some(9.0)));
        assert!(c.check_grid_coverage(48, 48));
        assert_eq!(c.checks(), 3);
        assert_eq!(c.violations(), 0);
        assert!(c.first_violation().is_none());

        assert!(!c.check_count_conservation("web.cpi", 120, 119));
        assert!(!c.check_merged_extrema("web.cpi", Some(0.5), Some(9.0), Some(0.6), Some(9.0)));
        assert!(!c.check_grid_coverage(48, 47));
        assert_eq!(c.violations(), 3);
        let first = c.first_violation().unwrap();
        assert!(
            first.contains("web.cpi") && first.contains("119"),
            "{first}"
        );
        assert_eq!(
            c.to_json().get("violations").and_then(Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn json_lists_every_kind_by_label() {
        let mut m = InvariantMonitor::new();
        m.check_clock_monotonic(9, 1);
        let json = m.to_json();
        assert_eq!(json.get("violations").and_then(Json::as_f64), Some(1.0));
        let by_kind = json.get("by_kind").unwrap();
        for kind in InvariantKind::ALL {
            assert!(by_kind.get(kind.label()).is_some(), "{}", kind.label());
        }
        assert_eq!(
            by_kind.get("clock_monotonic").and_then(Json::as_f64),
            Some(1.0)
        );
    }
}
