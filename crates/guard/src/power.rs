//! The power-capping ladder: thermal pressure → frequency cap → core park.
//!
//! Firmware thermal throttling (in `rbv-power`) is the defense of last
//! resort: it trips at the cap, clamps the core to the slowest P-state,
//! and holds it there across a deliberately wide hysteresis band. The
//! latency cost of that clamp is what this ladder exists to avoid. It
//! watches a *smoothed* thermal-pressure signal — the hottest core's
//! temperature as a fraction of the distance from ambient to the firmware
//! cap — and degrades proactively, one rung per dwell, with the same
//! hysteresis-plus-dwell machinery as the measurement-health ladder:
//!
//! 1. [`PowerRung::Nominal`] — full frequency, every core available;
//! 2. [`PowerRung::FreqCap`] — every core capped at
//!    [`PowerCapPolicy::cap_pstate`], a mild cut that sheds heat while
//!    costing far less CPI than the firmware clamp; engages when the
//!    smoothed pressure crosses [`PowerCapPolicy::engage_above`];
//! 3. [`PowerRung::CorePark`] — the emergency rung: the frequency cap
//!    stays and the hottest core is parked (no new placements), trading
//!    capacity for thermal headroom. Reserved for extreme pressure
//!    ([`PowerCapPolicy::park_above`], default 1.0 — a core at or past
//!    the firmware cap itself), because parking costs a quarter of the
//!    machine and sustained-but-contained heat is better answered by
//!    the cap alone.
//!
//! The ladder is a pure state machine over a scalar input: the kernel
//! computes the pressure from its per-core thermal state and feeds it in
//! once per accounting window, keeping this crate below `rbv-os` in the
//! dependency DAG.

use rbv_sim::Cycles;
use rbv_telemetry::Json;

/// A rung of the power-capping ladder, coolest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PowerRung {
    /// Full frequency, every core available.
    Nominal,
    /// Every core capped at the policy's cap P-state.
    FreqCap,
    /// Frequency cap plus the hottest core parked.
    CorePark,
}

impl PowerRung {
    /// Every rung, coolest first.
    pub const ALL: [PowerRung; 3] = [PowerRung::Nominal, PowerRung::FreqCap, PowerRung::CorePark];

    /// Stable lowercase label for telemetry and the ledger.
    pub fn label(&self) -> &'static str {
        match self {
            PowerRung::Nominal => "nominal",
            PowerRung::FreqCap => "freq_cap",
            PowerRung::CorePark => "core_park",
        }
    }

    /// Position in [`PowerRung::ALL`] (0 = coolest).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Whether this rung caps core frequency.
    pub fn caps_frequency(&self) -> bool {
        self.index() >= PowerRung::FreqCap.index()
    }

    /// Whether this rung parks a core.
    pub fn parks_core(&self) -> bool {
        *self == PowerRung::CorePark
    }

    fn hotter(self) -> PowerRung {
        match self {
            PowerRung::Nominal => PowerRung::FreqCap,
            _ => PowerRung::CorePark,
        }
    }

    fn cooler(self) -> PowerRung {
        match self {
            PowerRung::CorePark => PowerRung::FreqCap,
            _ => PowerRung::Nominal,
        }
    }
}

/// Bands, dwell, and cap level of the power-capping ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapPolicy {
    /// Degrade one rung when the smoothed thermal pressure rises above
    /// this.
    pub engage_above: f64,
    /// Recover one rung when the smoothed pressure falls below this; must
    /// sit below `engage_above` (the gap is the hysteresis band).
    pub recover_below: f64,
    /// Enter the core-parking emergency rung only at or above this
    /// smoothed pressure; must sit above `engage_above`. The default 1.0
    /// means "some core is at or past the firmware cap" — anything less
    /// is answered by the frequency cap alone.
    pub park_above: f64,
    /// Minimum simulated time between two ladder transitions.
    pub dwell: Cycles,
    /// Smoothing factor for the pressure EWMA (weight of the new window).
    pub alpha: f64,
    /// The P-state index every core is capped at on the capping rungs —
    /// a mild cut (not the firmware clamp's slowest state).
    pub cap_pstate: usize,
}

impl Default for PowerCapPolicy {
    fn default() -> PowerCapPolicy {
        PowerCapPolicy {
            engage_above: 0.55,
            recover_below: 0.4,
            park_above: 1.0,
            dwell: Cycles::from_millis(1),
            alpha: 0.5,
            // P-state 3 (0.7×) under the paper-default ladder: deep
            // enough that a capped core's heatwave steady state sits
            // below the firmware cap, mild enough to beat the clamp.
            cap_pstate: 3,
        }
    }
}

impl PowerCapPolicy {
    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    // Negated comparisons are deliberate: `!(x > 0.0)` rejects NaN along
    // with out-of-range values, which `x <= 0.0` would silently admit.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.engage_above > 0.0 && self.engage_above < 1.0) {
            return Err(format!(
                "power cap engage_above must be in (0, 1), got {}",
                self.engage_above
            ));
        }
        if !(self.recover_below > 0.0 && self.recover_below < self.engage_above) {
            return Err(format!(
                "power cap recover_below must be in (0, engage_above), got {}",
                self.recover_below
            ));
        }
        if !(self.park_above > self.engage_above) {
            return Err(format!(
                "power cap park_above must sit above engage_above, got {}",
                self.park_above
            ));
        }
        if self.dwell.is_zero() {
            return Err("power cap dwell must be nonzero".into());
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!(
                "power cap alpha must be in (0, 1], got {}",
                self.alpha
            ));
        }
        if self.cap_pstate == 0 {
            return Err("power cap cap_pstate must be a slowed state (not 0)".into());
        }
        Ok(())
    }
}

/// A power-ladder transition, as reported to telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerTransition {
    /// The rung the ladder left.
    pub from: PowerRung,
    /// The rung the ladder entered.
    pub to: PowerRung,
    /// The smoothed thermal pressure at the time of the move.
    pub pressure: f64,
}

/// The power-capping ladder state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLadder {
    policy: PowerCapPolicy,
    rung: PowerRung,
    smoothed: f64,
    primed: bool,
    last_transition: Option<Cycles>,
    transitions: u64,
}

impl PowerLadder {
    /// Builds a ladder starting on the coolest rung.
    pub fn new(policy: PowerCapPolicy) -> PowerLadder {
        PowerLadder {
            policy,
            rung: PowerRung::Nominal,
            smoothed: 0.0,
            primed: false,
            last_transition: None,
            transitions: 0,
        }
    }

    /// The current rung.
    pub fn rung(&self) -> PowerRung {
        self.rung
    }

    /// The policy this ladder runs.
    pub fn policy(&self) -> &PowerCapPolicy {
        &self.policy
    }

    /// The smoothed thermal pressure (0 before any observation).
    pub fn pressure(&self) -> f64 {
        self.smoothed
    }

    /// Transitions taken so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Folds one window's thermal pressure into the EWMA and moves at
    /// most one rung toward the rung the pressure calls for — but never
    /// within [`PowerCapPolicy::dwell`] of the previous transition, and
    /// never while the pressure sits inside the hysteresis band. The
    /// park rung is reachable only at or above
    /// [`PowerCapPolicy::park_above`]; once the pressure falls back
    /// under it the ladder un-parks to the frequency cap.
    pub fn observe(&mut self, pressure: f64, now: Cycles) -> Option<PowerTransition> {
        let pressure = pressure.clamp(0.0, 2.0);
        if self.primed {
            self.smoothed =
                (1.0 - self.policy.alpha) * self.smoothed + self.policy.alpha * pressure;
        } else {
            self.primed = true;
            self.smoothed = pressure;
        }
        if let Some(last) = self.last_transition {
            if now.saturating_sub(last) < self.policy.dwell {
                return None;
            }
        }
        let desired = if self.smoothed >= self.policy.park_above {
            PowerRung::CorePark
        } else if self.smoothed > self.policy.engage_above {
            PowerRung::FreqCap
        } else if self.smoothed < self.policy.recover_below {
            PowerRung::Nominal
        } else {
            // Inside the hysteresis band: hold whatever rung we're on.
            self.rung
        };
        let next = match desired.index().cmp(&self.rung.index()) {
            std::cmp::Ordering::Greater => self.rung.hotter(),
            std::cmp::Ordering::Less => self.rung.cooler(),
            std::cmp::Ordering::Equal => self.rung,
        };
        if next == self.rung {
            return None;
        }
        let transition = PowerTransition {
            from: self.rung,
            to: next,
            pressure: self.smoothed,
        };
        self.rung = next;
        self.last_transition = Some(now);
        self.transitions += 1;
        Some(transition)
    }

    /// Serializes the ladder state for reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rung".into(), Json::str(self.rung.label())),
            ("pressure".into(), Json::Num(self.smoothed)),
            ("transitions".into(), Json::Num(self.transitions as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        PowerCapPolicy::default().validate().unwrap();
    }

    #[test]
    fn bad_fields_are_rejected() {
        for bad in [
            PowerCapPolicy {
                engage_above: 1.0,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                recover_below: 0.6,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                park_above: 0.5,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                park_above: f64::NAN,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                dwell: Cycles::ZERO,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                alpha: 0.0,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                cap_pstate: 0,
                ..PowerCapPolicy::default()
            },
            PowerCapPolicy {
                engage_above: f64::NAN,
                ..PowerCapPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
    }

    #[test]
    fn extreme_heat_walks_down_one_rung_per_dwell() {
        let mut ladder = PowerLadder::new(PowerCapPolicy::default());
        let dwell = PowerCapPolicy::default().dwell;
        let mut now = Cycles::new(1);
        let mut rungs = vec![];
        for _ in 0..6 {
            if let Some(t) = ladder.observe(1.5, now) {
                rungs.push(t.to);
            }
            now += dwell;
        }
        assert_eq!(rungs, vec![PowerRung::FreqCap, PowerRung::CorePark]);
        assert_eq!(ladder.rung(), PowerRung::CorePark);
        assert!(ladder.rung().caps_frequency());
        assert!(ladder.rung().parks_core());
    }

    #[test]
    fn sub_cap_heat_stops_at_the_frequency_cap() {
        // Pressure above engage but below park: the ladder caps and
        // holds — parking a quarter of the machine needs a core at or
        // past the firmware cap, not just sustained warmth.
        let mut ladder = PowerLadder::new(PowerCapPolicy::default());
        let dwell = PowerCapPolicy::default().dwell;
        let mut now = Cycles::new(1);
        for _ in 0..6 {
            ladder.observe(0.95, now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), PowerRung::FreqCap);
        // A core crossing the firmware cap escalates; falling back under
        // the park threshold un-parks to the cap rung.
        for _ in 0..4 {
            ladder.observe(1.2, now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), PowerRung::CorePark);
        for _ in 0..4 {
            ladder.observe(0.9, now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), PowerRung::FreqCap);
    }

    #[test]
    fn hysteresis_band_holds_and_cooling_recovers() {
        let mut ladder = PowerLadder::new(PowerCapPolicy::default());
        let dwell = PowerCapPolicy::default().dwell;
        let mut now = Cycles::new(1);
        for _ in 0..4 {
            ladder.observe(1.5, now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), PowerRung::CorePark);
        // In-band raw pressure: the smoothed signal decays below the
        // park threshold (un-parking to the cap rung) and then settles
        // inside the hysteresis band, where the cap holds.
        for _ in 0..6 {
            ladder.observe(0.5, now);
            now += dwell;
        }
        assert_eq!(ladder.rung(), PowerRung::FreqCap);
        let settled = ladder.transitions();
        for _ in 0..4 {
            assert!(ladder.observe(0.5, now).is_none(), "in-band must hold");
            now += dwell;
        }
        assert_eq!(ladder.transitions(), settled);
        // Cool pressure recovers the last rung.
        let mut rungs = vec![];
        for _ in 0..6 {
            if let Some(t) = ladder.observe(0.05, now) {
                rungs.push(t.to);
            }
            now += dwell;
        }
        assert_eq!(rungs, vec![PowerRung::Nominal]);
        assert_eq!(ladder.rung(), PowerRung::Nominal);
    }

    #[test]
    fn dwell_blocks_back_to_back_transitions() {
        let mut ladder = PowerLadder::new(PowerCapPolicy::default());
        assert!(ladder.observe(1.0, Cycles::new(1)).is_some());
        assert!(ladder.observe(1.0, Cycles::new(2)).is_none());
        assert_eq!(ladder.rung(), PowerRung::FreqCap);
    }

    #[test]
    fn rung_labels_and_indices_are_stable() {
        for (i, rung) in PowerRung::ALL.iter().enumerate() {
            assert_eq!(rung.index(), i);
        }
        assert_eq!(PowerRung::Nominal.label(), "nominal");
        assert_eq!(PowerRung::FreqCap.label(), "freq_cap");
        assert_eq!(PowerRung::CorePark.label(), "core_park");
        assert!(!PowerRung::Nominal.caps_frequency());
        assert!(PowerRung::FreqCap.caps_frequency());
        assert!(!PowerRung::FreqCap.parks_core());
    }

    #[test]
    fn json_reports_rung_and_pressure() {
        let ladder = PowerLadder::new(PowerCapPolicy::default());
        let json = ladder.to_json();
        assert_eq!(json.get("rung").and_then(Json::as_str), Some("nominal"));
        assert_eq!(json.get("transitions").and_then(Json::as_f64), Some(0.0));
    }
}
