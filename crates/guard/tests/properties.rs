//! Property tests of the guard's three contracts.
//!
//! 1. **Do-no-harm budget with one-window slack**: across random
//!    measurement-fault plans, a governed run's longest streak of
//!    over-budget windows never exceeds 1 (the AIMD correction lag) and
//!    cumulative compensated overhead stays within budget plus at most
//!    one window's overshoot.
//! 2. **Ladder dwell and hysteresis**: the health ladder moves one rung
//!    at a time, never re-transitions within the dwell, and holds its
//!    rung while the smoothed score sits inside the hysteresis band.
//! 3. **Governor-off bit-identity**: with the governor disabled the
//!    engine takes none of the guard paths, so runs are bit-identical
//!    and carry all-zero guard statistics.
//! 4. **Rung recovery**: whatever overload or thermal history drove the
//!    health ladder into its shed/brownout band or the power ladder onto
//!    its cap/park rungs, sustained calm input always climbs both
//!    ladders back out — no pressure history can latch a degraded rung.

use proptest::prelude::*;

use rbv_guard::{
    HealthLadder, HealthPolicy, LadderRung, PowerCapPolicy, PowerLadder, PowerRung, WindowSample,
};
use rbv_os::{run_simulation, GovernorPolicy, RunResult, SimConfig};
use rbv_sim::Cycles;
use rbv_workloads::{factory_for, AppId};

fn storm_run(app: AppId, seed: u64, faults: rbv_os::MeasurementFaults, n: usize) -> RunResult {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.governor = Some(GovernorPolicy::default());
    let mut factory = factory_for(app, seed, 1.0);
    run_simulation(cfg, factory.as_mut(), n).expect("valid governed config")
}

proptest! {
    // Each case is a full simulation; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1, end to end: random fault plans cannot push the
    /// governor past its budget-plus-one-window-slack envelope.
    #[test]
    fn governed_overhead_honors_budget_with_one_window_slack(
        app in prop::sample::select(vec![AppId::WebServer, AppId::Tpcc, AppId::Rubis]),
        seed in 0u64..1_000,
        lost in 0.0f64..0.3,
        skid in 0.0f64..0.1,
        overflow in 0.0f64..0.05,
    ) {
        let faults = rbv_os::MeasurementFaults {
            lost_interrupt_prob: lost,
            counter_overflow_prob: overflow,
            counter_skid_sigma: skid,
            syscall_starvation_prob: 0.0,
            syscall_starvation_window: Cycles::ZERO,
        };
        let r = storm_run(app, seed, faults, 30);
        let s = &r.stats;
        prop_assert!(s.governor_windows > 0, "governor accounted no windows");
        prop_assert!(
            s.governor_max_breach_streak <= 1,
            "breach streak {} exceeds the one-window correction lag",
            s.governor_max_breach_streak
        );
        let budget = GovernorPolicy::default().budget_frac;
        prop_assert!(
            s.governor_overhead_frac <= budget + s.governor_slack_frac + 1e-9,
            "cumulative overhead {:.5} above budget {:.3} + slack {:.5}",
            s.governor_overhead_frac,
            budget,
            s.governor_slack_frac
        );
        prop_assert!(s.invariant_checks > 0);
        prop_assert_eq!(s.invariant_violations.iter().sum::<u64>(), 0);
    }

    /// Contract 2: whatever window sequence the storm produces, the
    /// ladder moves at most one rung per observation and never twice
    /// within one dwell period.
    #[test]
    fn ladder_moves_one_rung_at_a_time_and_respects_dwell(
        scores in prop::collection::vec(
            (0u64..10, 0u64..5, 0.0f64..1.0, 0.0f64..1.0),
            4..60,
        ),
        step_micros in 20u64..400,
    ) {
        let policy = HealthPolicy::default();
        let dwell = policy.dwell;
        let mut ladder = HealthLadder::new(policy);
        let step = Cycles::from_micros(step_micros);
        let mut now = Cycles::ZERO;
        let mut last_transition_at: Option<Cycles> = None;
        for (samples, lost, staleness, noise) in scores {
            now += step;
            let window = WindowSample {
                busy_cycles: 1e6,
                sampling_cycles: 1e3,
                samples,
                samples_lost: lost,
                samples_low_confidence: 0,
                starvation_windows: 0,
                staleness_frac: staleness,
                noise_ewma: noise,
                ..WindowSample::default()
            };
            let before = ladder.rung();
            if let Some(t) = ladder.observe(&window, now) {
                prop_assert_eq!(t.from, before, "transition must leave the current rung");
                prop_assert_eq!(t.to, ladder.rung(), "transition must land on the new rung");
                let adjacent = (t.from as i8 - t.to as i8).abs() == 1;
                prop_assert!(adjacent, "ladder jumped {:?} -> {:?}", t.from, t.to);
                if let Some(prev) = last_transition_at {
                    prop_assert!(
                        now - prev >= dwell,
                        "re-transition after {:?} violates the {:?} dwell",
                        now - prev,
                        dwell
                    );
                }
                last_transition_at = Some(now);
            } else {
                prop_assert_eq!(before, ladder.rung(), "rung changed without a transition");
            }
        }
    }

    /// Contract 2, hysteresis: scores inside the band (between
    /// `degrade_below` and `recover_above`) never move the ladder.
    #[test]
    fn ladder_holds_inside_the_hysteresis_band(
        start in prop::sample::select(vec![
            LadderRung::Easing,
            LadderRung::FrozenPredictions,
            LadderRung::Stock,
        ]),
        noises in prop::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let policy = HealthPolicy::default();
        let (lo, hi) = (policy.degrade_below, policy.recover_above);
        let noise_ref = policy.noise_ref;
        let mut ladder = HealthLadder::new(policy);
        let mut now = Cycles::ZERO;
        // Walk the ladder to the starting rung with decisively sick
        // windows, then clear the dwell.
        let sick = WindowSample {
            busy_cycles: 1e6,
            samples: 10,
            samples_lost: 40,
            staleness_frac: 1.0,
            noise_ewma: 10.0 * noise_ref,
            ..WindowSample::default()
        };
        while ladder.rung() != start {
            now += Cycles::from_millis(10);
            ladder.observe(&sick, now);
        }
        for noise in noises {
            now += Cycles::from_millis(10);
            // Craft a window whose raw score lands strictly inside the
            // band by spreading the penalty over the lost, noise, and
            // staleness terms (their weights sum to 0.8). With the
            // smoothed score starting either pinned sick (<= lo) or
            // fresh (1.0), the EWMA converges toward the in-band raw
            // scores without ever crossing `recover_above`, so the one
            // move hysteresis permits is degrading further — recovering
            // on in-band input is a hysteresis violation.
            let target = lo + (hi - lo) * (0.1 + 0.8 * noise);
            let f = (1.0 - target) / 0.8;
            let samples_lost = (1000.0 * f).round() as u64;
            let in_band = WindowSample {
                busy_cycles: 1e6,
                samples: 1000 - samples_lost,
                samples_lost,
                staleness_frac: f,
                noise_ewma: f * noise_ref,
                ..WindowSample::default()
            };
            let before = ladder.rung();
            if let Some(t) = ladder.observe(&in_band, now) {
                prop_assert!(
                    t.to as u8 > before as u8,
                    "in-band score recovered {:?} -> {:?}",
                    t.from,
                    t.to
                );
            }
            prop_assert!(
                ladder.rung() as u8 >= start as u8,
                "in-band scores recovered the ladder from {:?} to {:?}",
                start,
                ladder.rung()
            );
        }
    }

    /// Contract 4: no overload history can latch the health ladder in
    /// its shed/brownout band, and no thermal-pressure history can latch
    /// the power ladder on its cap/park rungs. Once the input calms,
    /// both always recover.
    #[test]
    fn degraded_rungs_always_recover_after_pressure_subsides(
        overload_windows in 1usize..20,
        reject_frac in 0.6f64..1.0,
        queue_frac in 0.5f64..1.0,
        thermal_pressures in prop::collection::vec(0.6f64..2.0, 1..20),
    ) {
        // Health ladder: arbitrary sustained overload, then calm.
        let mut ladder = HealthLadder::new(HealthPolicy::default());
        let mut now = Cycles::ZERO;
        let hot = WindowSample {
            busy_cycles: 1e6,
            samples: 10,
            offered: 100,
            rejected: (100.0 * reject_frac) as u64,
            queue_frac,
            ..WindowSample::default()
        };
        for _ in 0..overload_windows {
            now += Cycles::from_millis(10);
            ladder.observe(&hot, now);
        }
        let overloaded = matches!(ladder.rung(), LadderRung::Shed | LadderRung::Brownout);
        prop_assert!(
            overloaded || overload_windows < 3,
            "sustained rejections never pushed the ladder into the overload band"
        );
        // Calm, healthy windows: zero rejections, empty queue. The
        // ladder must walk back out of the overload band (and with a
        // perfect health score, all the way to normal operation).
        let calm = WindowSample {
            busy_cycles: 1e6,
            samples: 10,
            offered: 100,
            ..WindowSample::default()
        };
        for _ in 0..64 {
            now += Cycles::from_millis(10);
            ladder.observe(&calm, now);
        }
        prop_assert!(
            !matches!(ladder.rung(), LadderRung::Shed | LadderRung::Brownout),
            "health ladder latched on {:?} after pressure subsided",
            ladder.rung()
        );

        // Power ladder: arbitrary thermal-pressure history (including
        // readings past the firmware cap), then cool readings.
        let mut power = PowerLadder::new(PowerCapPolicy::default());
        let mut pnow = Cycles::ZERO;
        for pressure in thermal_pressures {
            pnow += Cycles::from_millis(2);
            power.observe(pressure, pnow);
        }
        for _ in 0..64 {
            pnow += Cycles::from_millis(2);
            power.observe(0.05, pnow);
        }
        prop_assert_eq!(
            power.rung(),
            PowerRung::Nominal,
            "power ladder latched on {:?} after the cores cooled",
            power.rung()
        );
    }

    /// Contract 3: governor-disabled runs take no guard path — two runs
    /// are bit-identical and report all-zero guard statistics.
    #[test]
    fn governor_off_runs_are_bit_identical(
        app in prop::sample::select(vec![AppId::WebServer, AppId::Tpcc]),
        seed in 0u64..1_000,
    ) {
        let run = |_: ()| {
            let mut cfg = SimConfig::paper_default()
                .with_interrupt_sampling(app.sampling_period_micros());
            cfg.seed = seed;
            let mut factory = factory_for(app, seed, 1.0);
            run_simulation(cfg, factory.as_mut(), 25).expect("valid config")
        };
        let a = run(());
        let b = run(());
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(&a.completed, &b.completed);
        prop_assert_eq!(&a.failed, &b.failed);
        prop_assert_eq!(a.stats.governor_windows, 0);
        prop_assert_eq!(a.stats.governor_backoffs, 0);
        prop_assert_eq!(a.stats.governor_final_scale, 0.0);
        // Debug builds run the end-of-run `debug_invariant_sweep` (four
        // conservation checks) even without a governor; release builds
        // skip it entirely. Either way nothing may be violated.
        let expected_checks: u64 = if cfg!(debug_assertions) { 4 } else { 0 };
        prop_assert_eq!(a.stats.invariant_checks, expected_checks);
        prop_assert_eq!(
            a.stats.invariant_violations,
            [0u64; rbv_guard::InvariantKind::ALL.len()]
        );
        prop_assert_eq!(a.stats.health_transitions, 0);
    }
}
