//! Guard acceptance: the governed measurement storm (the chaos matrix's
//! `--governor` scenario) holds the do-no-harm contract on every server
//! application.
//!
//! Contract, per `ISSUE` and the module docs:
//!
//! - compensated observer overhead stays within the budget with one
//!   accounting window of slack — the longest run of consecutive
//!   over-budget windows never exceeds 1 (the AIMD correction lag), and
//!   cumulative overhead stays under budget plus at most one window's
//!   worth of overshoot;
//! - the runtime invariant monitor reports zero violations;
//! - governed easing under the storm never loses to stock scheduling at
//!   p99 request CPI.

use rbv_faults::chaos::governor_storm;
use rbv_workloads::AppId;

/// Fast-mode request counts, mirroring the chaos matrix sizes.
fn requests_of(app: AppId) -> usize {
    let full = match app {
        AppId::WebServer => 320,
        AppId::Tpcc => 240,
        AppId::Rubis => 200,
        AppId::Tpch => 120,
        _ => 60,
    };
    (full / 4).max(40)
}

#[test]
fn governed_storm_holds_do_no_harm_across_the_matrix() {
    for app in AppId::SERVER_APPS {
        let n = requests_of(app);
        let o = governor_storm(app, 42, n).expect("governed storm runs");
        println!(
            "{app:?}: windows {} backoffs {} breaches {} streak {} scale {:.2} \
             overhead {:.5} stock_p99 {:.4} governed_p99 {:.4} rung {} transitions {}",
            o.windows,
            o.backoffs,
            o.budget_breaches,
            o.max_breach_streak,
            o.final_scale,
            o.overhead_frac,
            o.stock_p99_cpi,
            o.governed_p99_cpi,
            o.final_rung,
            o.health_transitions
        );
        assert_eq!(o.completed, n, "{app:?}: storm must complete every request");
        assert!(o.windows > 0, "{app:?}: governor accounted no windows");
        assert!(
            o.max_breach_streak <= 1,
            "{app:?}: breach streak {} exceeds the one-window slack",
            o.max_breach_streak
        );
        assert!(
            o.overhead_frac <= o.budget_frac + o.slack_frac + 1e-9,
            "{app:?}: cumulative overhead {:.5} above the {:.3} budget plus \
             one-window slack {:.5}",
            o.overhead_frac,
            o.budget_frac,
            o.slack_frac
        );
        assert!(o.invariant_checks > 0, "{app:?}: no invariant checks ran");
        assert_eq!(
            o.invariant_violations, 0,
            "{app:?}: runtime invariants violated"
        );
        assert!(
            o.stock_p99_cpi.is_finite() && o.governed_p99_cpi.is_finite(),
            "{app:?}: degenerate CPI tails"
        );
        assert!(
            o.governed_p99_cpi <= o.stock_p99_cpi * 1.05,
            "{app:?}: governed easing p99 CPI {:.3} worse than stock {:.3}",
            o.governed_p99_cpi,
            o.stock_p99_cpi
        );
    }
}
