//! Per-core DVFS, power, and thermal models for the simulated server.
//!
//! The paper's request-level attribution exists so a system can *act* on
//! behavior variation; PowerTracer-style work shows the canonical action:
//! trade frequency (and therefore the paper's p99-CPI win) against joules
//! without blowing latency targets. This crate supplies the physical
//! models the kernel (`rbv-os::machine`) integrates into its event loop:
//!
//! * [`PowerPolicy`] — a discrete P-state frequency ladder (ratios of the
//!   nominal 3 GHz clock, in milli-units) with a `static + dynamic·f³`
//!   per-core power model scaled by per-slice activity, an RC-style
//!   thermal model (linear relaxation toward the dissipation-dependent
//!   steady state — deliberately `exp`-free so the arithmetic is exactly
//!   reproducible), and firmware throttle thresholds;
//! * [`CorePower`] — one core's thermal/energy state: temperature in
//!   integer milli-°C, a fixed-point energy accumulator in µW·cycles
//!   (order-free integer addition, so merged ledgers are byte-identical
//!   at any `--threads`), and the firmware throttle latch;
//! * [`ThermalFaults`] — the seeded thermal fault class: a heatwave
//!   ambient step, a per-core cooling failure, and a sustained hot-loop
//!   (power-virus) window that multiplies dynamic power.
//!
//! Everything here is a pure state machine over integer inputs: no
//! randomness, no floating-point accumulation, no wall clock. The only
//! floating-point value near this crate is the activity fraction the
//! kernel derives from its contention model, and the kernel rounds it to
//! milli-units before it crosses this boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rbv_sim::Cycles;
use rbv_telemetry::Json;

/// Milli-unit denominator shared by frequency ratios, activity fractions,
/// and fault multipliers.
pub const MILLI: u64 = 1_000;

/// Simulated clock rate in cycles per second (the 3 GHz the rest of the
/// reproduction assumes), used to convert µW·cycles to joules.
pub const CYCLES_PER_SEC: u64 = 3_000_000_000;

/// Converts a fixed-point energy accumulator (µW·cycles) to joules.
///
/// Reporting-only: the exact quantity is the integer accumulator itself.
pub fn joules(uw_cycles: u128) -> f64 {
    // µW·cycles / (cycles/s) = µW·s = µJ; / 1e6 = J.
    uw_cycles as f64 / (CYCLES_PER_SEC as f64 * 1e6)
}

/// The DVFS frequency ladder, power coefficients, thermal RC constants,
/// and firmware throttle thresholds for every core.
///
/// Frequencies are expressed as milli-ratios of the nominal clock: 1000
/// means full speed, 600 means 0.6×. The ladder is ordered fastest first,
/// and P-state 0 must be the full-speed state so that a power-model run
/// holding P-state 0 executes the exact same schedule as a power-off run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPolicy {
    /// P-state frequency ratios in milli-units of the nominal clock,
    /// strictly descending, first entry 1000 (full speed).
    pub ladder_milli: Vec<u32>,
    /// Static (leakage) power per core in milliwatts, paid even when idle.
    pub static_mw: u32,
    /// Dynamic power per core in milliwatts at full frequency and full
    /// activity; scales with the cube of the frequency ratio and linearly
    /// with per-slice activity.
    pub dynamic_mw: u32,
    /// Ambient (idle steady-state) temperature in milli-°C.
    pub ambient_milli_c: i64,
    /// Steady-state temperature rise per watt of dissipation, in milli-°C
    /// per watt (the thermal resistance R of the RC model).
    pub r_milli_c_per_w: u32,
    /// Thermal time constant of the RC model in cycles: the temperature
    /// relaxes toward its steady state by `dt/tau` of the gap per slice.
    pub tau: Cycles,
    /// Firmware throttle trip point in milli-°C: at or above this the
    /// core clamps to the slowest P-state.
    pub throttle_cap_milli_c: i64,
    /// Firmware throttle release point in milli-°C; must sit below the
    /// trip point. Firmware hysteresis is deliberately punitive (a wide
    /// band), which is exactly why proactive capping wins.
    pub throttle_release_milli_c: i64,
}

impl Default for PowerPolicy {
    fn default() -> PowerPolicy {
        PowerPolicy::paper_default()
    }
}

impl PowerPolicy {
    /// The default model: a 5-state ladder on a Xeon-5160-flavored core
    /// (≈12 W leakage + 28 W peak dynamic per core), ambient 45 °C,
    /// ≈1.1 °C/W thermal resistance, a 5 ms time constant (compressed so
    /// heating is observable within millisecond-scale runs), and a
    /// 95 °C→78 °C firmware throttle band. The slowest state (0.4×) sits
    /// far below the rest of the ladder: it models PROCHOT-style duty
    /// cycling, reachable only by the firmware clamp — which is exactly
    /// why the guard's proactive cap (a mild mid-ladder state) is worth
    /// engaging before the cap trips.
    pub fn paper_default() -> PowerPolicy {
        PowerPolicy {
            ladder_milli: vec![1000, 900, 800, 700, 400],
            static_mw: 12_000,
            dynamic_mw: 28_000,
            ambient_milli_c: 45_000,
            r_milli_c_per_w: 1_100,
            tau: Cycles::from_millis(5),
            throttle_cap_milli_c: 95_000,
            throttle_release_milli_c: 78_000,
        }
    }

    /// A neutral policy for identity tests: one full-speed P-state and an
    /// unreachable throttle cap, so the model observes (accumulates
    /// energy, tracks temperature) without ever influencing the schedule.
    pub fn neutral() -> PowerPolicy {
        PowerPolicy {
            ladder_milli: vec![1000],
            throttle_cap_milli_c: i64::MAX / 2,
            throttle_release_milli_c: i64::MAX / 4,
            ..PowerPolicy::paper_default()
        }
    }

    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.ladder_milli.is_empty() || self.ladder_milli.len() > 16 {
            return Err(format!(
                "power ladder must have 1..=16 P-states, got {}",
                self.ladder_milli.len()
            ));
        }
        if self.ladder_milli[0] != MILLI as u32 {
            return Err(format!(
                "power ladder must start at full speed (1000), got {}",
                self.ladder_milli[0]
            ));
        }
        for pair in self.ladder_milli.windows(2) {
            if pair[1] >= pair[0] {
                return Err(format!(
                    "power ladder must be strictly descending, got {} then {}",
                    pair[0], pair[1]
                ));
            }
        }
        if self.ladder_milli[self.ladder_milli.len() - 1] == 0 {
            return Err("power ladder ratios must be positive".into());
        }
        if self.tau.is_zero() {
            return Err("power tau must be nonzero".into());
        }
        if self.r_milli_c_per_w == 0 {
            return Err("power r_milli_c_per_w must be positive".into());
        }
        if self.throttle_release_milli_c >= self.throttle_cap_milli_c {
            return Err(format!(
                "power throttle release ({}) must sit below the cap ({})",
                self.throttle_release_milli_c, self.throttle_cap_milli_c
            ));
        }
        if self.ambient_milli_c >= self.throttle_release_milli_c {
            return Err(format!(
                "power ambient ({}) must sit below the throttle release ({})",
                self.ambient_milli_c, self.throttle_release_milli_c
            ));
        }
        Ok(())
    }

    /// Number of P-states on the ladder.
    pub fn pstates(&self) -> usize {
        self.ladder_milli.len()
    }

    /// Index of the slowest (firmware throttle) P-state.
    pub fn slowest(&self) -> usize {
        self.ladder_milli.len() - 1
    }

    /// The frequency ratio of `pstate` in milli-units, clamped to the
    /// ladder (out-of-range indices read the slowest state).
    pub fn ratio_milli(&self, pstate: usize) -> u32 {
        self.ladder_milli[pstate.min(self.slowest())]
    }

    /// The multiplier DVFS applies to the *compute* portion of CPI at
    /// `pstate`: time is counted in nominal-clock cycles, so a core at
    /// ratio r retires compute-bound instructions r× slower (CPI ÷ r)
    /// while memory-stall cycles are unchanged — the classic reason
    /// memory-bound phases are cheap to slow down.
    pub fn compute_cpi_factor(&self, pstate: usize) -> f64 {
        MILLI as f64 / f64::from(self.ratio_milli(pstate))
    }

    /// Per-core power in µW at `pstate` with activity `act_milli`
    /// (milli-fraction of the slice spent on compute; 0 = idle) and a
    /// dynamic-power fault multiplier `dyn_mult_milli` (1000 = nominal).
    ///
    /// Pure integer arithmetic: `static + dynamic · r³ · activity ·
    /// fault`, all in milli-units over a u128 intermediate, so the result
    /// is exactly reproducible and safely mergeable across shards.
    pub fn power_uw(&self, pstate: usize, act_milli: u32, dyn_mult_milli: u32) -> u64 {
        let r = u128::from(self.ratio_milli(pstate));
        let dynamic = u128::from(self.dynamic_mw)
            * MILLI as u128 // mW -> µW
            * r
            * r
            * r
            * u128::from(act_milli.min(MILLI as u32))
            * u128::from(dyn_mult_milli)
            / (MILLI as u128).pow(5);
        let total = u128::from(self.static_mw) * MILLI as u128 + dynamic;
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// Steady-state temperature in milli-°C for a dissipation of
    /// `power_uw` with ambient offset `ambient_delta_milli_c` (heatwave)
    /// and thermal-resistance multiplier `r_mult_milli` (cooling failure;
    /// 1000 = nominal).
    pub fn steady_milli_c(
        &self,
        power_uw: u64,
        ambient_delta_milli_c: i64,
        r_mult_milli: u32,
    ) -> i64 {
        // µW · (m°C/W) / 1e6 = m°C, with the fault multiplier in milli.
        let rise = u128::from(power_uw) * u128::from(self.r_milli_c_per_w)
            / (MILLI as u128 * MILLI as u128) // µW->W
            * u128::from(r_mult_milli)
            / MILLI as u128;
        self.ambient_milli_c
            .saturating_add(ambient_delta_milli_c)
            .saturating_add(i64::try_from(rise).unwrap_or(i64::MAX))
    }

    /// One RC relaxation step: moves `temp` toward `steady` by
    /// `min(dt, tau)/tau` of the gap. Linear (first-order Euler with a
    /// clamped step) instead of exponential so the update is exact
    /// integer arithmetic; the clamp keeps it unconditionally stable.
    pub fn step_temp(&self, temp_milli_c: i64, steady_milli_c: i64, dt: Cycles) -> i64 {
        let tau = self.tau.get().max(1);
        let dt = dt.get().min(tau);
        let gap = i128::from(steady_milli_c) - i128::from(temp_milli_c);
        let step = gap * i128::from(dt) / i128::from(tau);
        i64::try_from(i128::from(temp_milli_c) + step).unwrap_or(i64::MAX)
    }
}

/// What one accounting slice did to a core's power/thermal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOutcome {
    /// The P-state in effect during the elapsed slice.
    pub pstate: usize,
    /// Power drawn over the slice in µW.
    pub power_uw: u64,
    /// Firmware throttle edge this slice: `Some(true)` = engaged,
    /// `Some(false)` = released, `None` = unchanged.
    pub throttle_edge: Option<bool>,
    /// Core temperature after the slice, in milli-°C.
    pub temp_milli_c: i64,
}

/// One core's thermal/energy state: an integer temperature, the firmware
/// throttle latch, and the exact fixed-point energy accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorePower {
    /// Current temperature in milli-°C.
    pub temp_milli_c: i64,
    /// Whether firmware throttling is engaged (latched until the
    /// temperature falls to the release point).
    pub throttled: bool,
    /// Exact dissipated energy in µW·cycles.
    pub energy_uw_cycles: u128,
    /// Firmware throttle engagements.
    pub throttle_engages: u64,
    /// Firmware throttle releases.
    pub throttle_releases: u64,
}

impl CorePower {
    /// A core at ambient temperature with no energy dissipated.
    pub fn new(policy: &PowerPolicy) -> CorePower {
        CorePower {
            temp_milli_c: policy.ambient_milli_c,
            throttled: false,
            energy_uw_cycles: 0,
            throttle_engages: 0,
            throttle_releases: 0,
        }
    }

    /// The P-state this core runs at given the scheduler-requested state:
    /// firmware throttle overrides everything with the slowest state.
    pub fn effective_pstate(&self, policy: &PowerPolicy, requested: usize) -> usize {
        if self.throttled {
            policy.slowest()
        } else {
            requested.min(policy.slowest())
        }
    }

    /// Advances this core's thermal/energy state across an elapsed slice
    /// of `dt` cycles during which it ran at `pstate` with activity
    /// `act_milli`, under ambient offset `ambient_delta_milli_c`,
    /// cooling-failure multiplier `r_mult_milli`, and hot-loop dynamic
    /// multiplier `dyn_mult_milli` (all 0 / 1000 when no fault is live).
    ///
    /// Power is integrated with the state that was in effect *during* the
    /// slice; the firmware throttle latch is re-evaluated afterwards, so
    /// an edge reported here takes effect from the next slice on.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        policy: &PowerPolicy,
        dt: Cycles,
        pstate: usize,
        act_milli: u32,
        ambient_delta_milli_c: i64,
        r_mult_milli: u32,
        dyn_mult_milli: u32,
    ) -> SliceOutcome {
        let power_uw = policy.power_uw(pstate, act_milli, dyn_mult_milli);
        self.energy_uw_cycles += u128::from(power_uw) * u128::from(dt.get());
        let steady = policy.steady_milli_c(power_uw, ambient_delta_milli_c, r_mult_milli);
        self.temp_milli_c = policy.step_temp(self.temp_milli_c, steady, dt);
        let throttle_edge = if !self.throttled && self.temp_milli_c >= policy.throttle_cap_milli_c {
            self.throttled = true;
            self.throttle_engages += 1;
            Some(true)
        } else if self.throttled && self.temp_milli_c <= policy.throttle_release_milli_c {
            self.throttled = false;
            self.throttle_releases += 1;
            Some(false)
        } else {
            None
        };
        SliceOutcome {
            pstate,
            power_uw,
            throttle_edge,
            temp_milli_c: self.temp_milli_c,
        }
    }

    /// Thermal pressure of this core: 0 at ambient, 1 at the firmware
    /// cap, above 1 while the core sits over the cap (saturating at 2,
    /// so a runaway reading cannot swamp the guard's EWMA). The guard's
    /// power-capping ladder smooths the maximum of this across cores;
    /// readings at or past 1.0 are what drive its emergency park rung.
    pub fn pressure(&self, policy: &PowerPolicy) -> f64 {
        let span = (policy.throttle_cap_milli_c - policy.ambient_milli_c).max(1);
        let above = self.temp_milli_c - policy.ambient_milli_c;
        (above as f64 / span as f64).clamp(0.0, 2.0)
    }
}

/// The seeded thermal fault class: a heatwave (ambient step), a per-core
/// cooling failure (thermal-resistance multiplier on one hash-chosen
/// core), and a hot-loop window (a power-virus phase multiplying dynamic
/// power). All three are deterministic functions of simulated time, so
/// the same plan replays bit-identically under any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThermalFaults {
    /// Seed choosing the cooling-failure victim core.
    pub seed: u64,
    /// Heatwave: ambient rises by `heatwave_milli_c` from `heatwave_at`.
    pub heatwave_at: Option<Cycles>,
    /// Ambient step of the heatwave in milli-°C.
    pub heatwave_milli_c: i64,
    /// Cooling failure: one core's thermal resistance multiplies by
    /// `cooling_mult_milli` from `cooling_fail_at`.
    pub cooling_fail_at: Option<Cycles>,
    /// Thermal-resistance multiplier of the cooling failure (milli).
    pub cooling_mult_milli: u32,
    /// Hot loop: dynamic power multiplies by `hot_loop_mult_milli` inside
    /// `[hot_loop_at, hot_loop_until)`.
    pub hot_loop_at: Option<Cycles>,
    /// End of the hot-loop window.
    pub hot_loop_until: Cycles,
    /// Dynamic-power multiplier of the hot loop (milli).
    pub hot_loop_mult_milli: u32,
}

/// SplitMix64 finalizer-style hash for victim-core choice.
fn hash_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ThermalFaults {
    /// No thermal faults (every query returns the nominal value).
    pub fn none(seed: u64) -> ThermalFaults {
        ThermalFaults {
            seed,
            heatwave_at: None,
            heatwave_milli_c: 0,
            cooling_fail_at: None,
            cooling_mult_milli: MILLI as u32,
            hot_loop_at: None,
            hot_loop_until: Cycles::ZERO,
            hot_loop_mult_milli: MILLI as u32,
        }
    }

    /// The canonical thermal storm the chaos harness injects: a cooling
    /// failure at 0.5 ms (1.9× thermal resistance on one hash-chosen
    /// core), a +22 °C heatwave from 1 ms, and a 1.6× hot loop across
    /// [1.5 ms, 6 ms) — timed to land inside millisecond-scale serve runs.
    pub fn storm(seed: u64) -> ThermalFaults {
        ThermalFaults {
            seed,
            heatwave_at: Some(Cycles::from_micros(1_000)),
            heatwave_milli_c: 22_000,
            cooling_fail_at: Some(Cycles::from_micros(500)),
            cooling_mult_milli: 1_900,
            hot_loop_at: Some(Cycles::from_micros(1_500)),
            hot_loop_until: Cycles::from_micros(6_000),
            hot_loop_mult_milli: 1_600,
        }
    }

    /// Validates field ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cooling_mult_milli < MILLI as u32 {
            return Err(format!(
                "thermal cooling_mult_milli must be at least 1000, got {}",
                self.cooling_mult_milli
            ));
        }
        if self.hot_loop_mult_milli < MILLI as u32 {
            return Err(format!(
                "thermal hot_loop_mult_milli must be at least 1000, got {}",
                self.hot_loop_mult_milli
            ));
        }
        if let Some(at) = self.hot_loop_at {
            if self.hot_loop_until <= at {
                return Err("thermal hot loop must end after it starts".into());
            }
        }
        Ok(())
    }

    /// Ambient offset in milli-°C at simulated time `now`.
    pub fn ambient_delta_at(&self, now: Cycles) -> i64 {
        match self.heatwave_at {
            Some(at) if now >= at => self.heatwave_milli_c,
            _ => 0,
        }
    }

    /// Thermal-resistance multiplier (milli) for `core` at `now`.
    pub fn cooling_mult_for(&self, core: usize, cores: usize, now: Cycles) -> u32 {
        match self.cooling_fail_at {
            Some(at) if now >= at && cores > 0 && core == self.victim_core(cores) => {
                self.cooling_mult_milli
            }
            _ => MILLI as u32,
        }
    }

    /// The hash-chosen cooling-failure victim among `cores` cores.
    pub fn victim_core(&self, cores: usize) -> usize {
        if cores == 0 {
            return 0;
        }
        (hash_mix(self.seed ^ 0xC001_F417) % cores as u64) as usize
    }

    /// Dynamic-power multiplier (milli) at `now`.
    pub fn dyn_mult_at(&self, now: Cycles) -> u32 {
        match self.hot_loop_at {
            Some(at) if now >= at && now < self.hot_loop_until => self.hot_loop_mult_milli,
            _ => MILLI as u32,
        }
    }

    /// Serializes the plan for reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "heatwave_at".into(),
                match self.heatwave_at {
                    Some(at) => Json::Num(at.get() as f64),
                    None => Json::Null,
                },
            ),
            (
                "heatwave_milli_c".into(),
                Json::Num(self.heatwave_milli_c as f64),
            ),
            (
                "cooling_fail_at".into(),
                match self.cooling_fail_at {
                    Some(at) => Json::Num(at.get() as f64),
                    None => Json::Null,
                },
            ),
            (
                "cooling_mult_milli".into(),
                Json::Num(f64::from(self.cooling_mult_milli)),
            ),
            (
                "hot_loop_at".into(),
                match self.hot_loop_at {
                    Some(at) => Json::Num(at.get() as f64),
                    None => Json::Null,
                },
            ),
            (
                "hot_loop_until".into(),
                Json::Num(self.hot_loop_until.get() as f64),
            ),
            (
                "hot_loop_mult_milli".into(),
                Json::Num(f64::from(self.hot_loop_mult_milli)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_and_neutral_policies_validate() {
        PowerPolicy::paper_default().validate().unwrap();
        PowerPolicy::neutral().validate().unwrap();
    }

    #[test]
    fn bad_policies_are_rejected() {
        for bad in [
            PowerPolicy {
                ladder_milli: vec![],
                ..PowerPolicy::paper_default()
            },
            PowerPolicy {
                ladder_milli: vec![900, 800],
                ..PowerPolicy::paper_default()
            },
            PowerPolicy {
                ladder_milli: vec![1000, 800, 800],
                ..PowerPolicy::paper_default()
            },
            PowerPolicy {
                tau: Cycles::ZERO,
                ..PowerPolicy::paper_default()
            },
            PowerPolicy {
                throttle_release_milli_c: 96_000,
                ..PowerPolicy::paper_default()
            },
            PowerPolicy {
                ambient_milli_c: 80_000,
                ..PowerPolicy::paper_default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
    }

    #[test]
    fn power_is_static_when_idle_and_cubic_in_frequency() {
        let p = PowerPolicy::paper_default();
        assert_eq!(p.power_uw(0, 0, 1000), 12_000_000);
        let full = p.power_uw(0, 1000, 1000);
        assert_eq!(full, 40_000_000, "12 W static + 28 W dynamic");
        // At the 0.4x PROCHOT state the dynamic term scales by 0.064.
        let slow = p.power_uw(p.slowest(), 1000, 1000);
        assert_eq!(slow, 12_000_000 + 28_000_000 * 64 / 1000);
        // Hot loop multiplies only the dynamic term.
        assert_eq!(p.power_uw(0, 1000, 2000), 12_000_000 + 56_000_000);
    }

    #[test]
    fn compute_cpi_factor_is_inverse_ratio() {
        let p = PowerPolicy::paper_default();
        assert_eq!(p.compute_cpi_factor(0), 1.0);
        assert!((p.compute_cpi_factor(4) - 1.0 / 0.4).abs() < 1e-12);
    }

    #[test]
    fn temperature_relaxes_toward_steady_state_and_is_stable() {
        let p = PowerPolicy::paper_default();
        let steady = p.steady_milli_c(40_000_000, 0, 1000);
        assert_eq!(steady, 45_000 + 44_000, "40 W at 1.1 C/W over 45 C");
        let mut t = p.ambient_milli_c;
        for _ in 0..100 {
            t = p.step_temp(t, steady, Cycles::from_millis(1));
        }
        assert!((t - steady).abs() < 100, "converges, got {t}");
        // Oversized steps clamp to tau: one step lands exactly on steady.
        assert_eq!(
            p.step_temp(p.ambient_milli_c, steady, Cycles::from_millis(50)),
            steady
        );
    }

    #[test]
    fn firmware_throttle_latches_with_hysteresis() {
        let p = PowerPolicy::paper_default();
        let mut core = CorePower::new(&p);
        // Cook the core with a cooling failure until it throttles.
        let mut edges = vec![];
        for _ in 0..60 {
            let out = core.advance(&p, Cycles::from_millis(1), 0, 1000, 0, 3000, 1000);
            if let Some(e) = out.throttle_edge {
                edges.push(e);
            }
        }
        assert_eq!(edges, vec![true], "engages once, stays latched");
        assert_eq!(core.effective_pstate(&p, 0), p.slowest());
        assert_eq!(core.throttle_engages, 1);
        // Cool at idle with nominal cooling until it releases.
        let mut released = false;
        for _ in 0..200 {
            let out = core.advance(&p, Cycles::from_millis(1), p.slowest(), 0, 0, 1000, 1000);
            if out.throttle_edge == Some(false) {
                released = true;
                break;
            }
        }
        assert!(released, "releases below the (punitive) release point");
        assert_eq!(core.effective_pstate(&p, 0), 0);
        assert_eq!(core.throttle_releases, 1);
    }

    #[test]
    fn energy_accumulates_exactly() {
        let p = PowerPolicy::paper_default();
        let mut core = CorePower::new(&p);
        core.advance(&p, Cycles::new(1_000), 0, 1000, 0, 1000, 1000);
        core.advance(&p, Cycles::new(500), 0, 0, 0, 1000, 1000);
        let expected = 40_000_000u128 * 1_000 + 12_000_000u128 * 500;
        assert_eq!(core.energy_uw_cycles, expected);
        // 3e15 µW·cycles would be one joule.
        assert!((joules(3_000_000_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_spans_ambient_to_cap() {
        let p = PowerPolicy::paper_default();
        let mut core = CorePower::new(&p);
        assert_eq!(core.pressure(&p), 0.0);
        core.temp_milli_c = p.throttle_cap_milli_c;
        assert_eq!(core.pressure(&p), 1.0);
        core.temp_milli_c = (p.ambient_milli_c + p.throttle_cap_milli_c) / 2;
        assert!((core.pressure(&p) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn thermal_faults_gate_on_time_and_core() {
        let f = ThermalFaults::storm(42);
        f.validate().unwrap();
        assert_eq!(f.ambient_delta_at(Cycles::from_micros(999)), 0);
        assert_eq!(f.ambient_delta_at(Cycles::from_micros(1_000)), 22_000);
        assert_eq!(f.dyn_mult_at(Cycles::from_micros(1_400)), 1_000);
        assert_eq!(f.dyn_mult_at(Cycles::from_micros(1_500)), 1_600);
        assert_eq!(f.dyn_mult_at(Cycles::from_micros(6_000)), 1_000);
        let victim = f.victim_core(4);
        assert!(victim < 4);
        for c in 0..4 {
            let expect = if c == victim { 1_900 } else { 1_000 };
            assert_eq!(f.cooling_mult_for(c, 4, Cycles::from_micros(600)), expect);
            assert_eq!(f.cooling_mult_for(c, 4, Cycles::from_micros(400)), 1_000);
        }
        let none = ThermalFaults::none(42);
        none.validate().unwrap();
        assert_eq!(none.ambient_delta_at(Cycles::from_millis(10)), 0);
        assert_eq!(none.dyn_mult_at(Cycles::from_millis(10)), 1_000);
    }

    #[test]
    fn json_reports_the_plan() {
        let j = ThermalFaults::storm(7).to_json();
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            j.get("heatwave_milli_c").and_then(Json::as_f64),
            Some(22_000.0)
        );
        assert_eq!(
            ThermalFaults::none(7).to_json().get("heatwave_at"),
            Some(&Json::Null)
        );
    }

    proptest! {
        #[test]
        fn advance_is_deterministic_and_energy_is_additive(
            slices in proptest::collection::vec((1u64..2_000_000, 0u32..=1000, 0usize..5), 1..40)
        ) {
            let p = PowerPolicy::paper_default();
            let mut a = CorePower::new(&p);
            let mut b = CorePower::new(&p);
            let mut manual: u128 = 0;
            for (dt, act, ps) in &slices {
                let oa = a.advance(&p, Cycles::new(*dt), *ps, *act, 0, 1000, 1000);
                let ob = b.advance(&p, Cycles::new(*dt), *ps, *act, 0, 1000, 1000);
                prop_assert_eq!(oa, ob);
                manual += u128::from(oa.power_uw) * u128::from(*dt);
            }
            prop_assert_eq!(a, b);
            prop_assert_eq!(a.energy_uw_cycles, manual, "slice-sum equals accumulator exactly");
        }

        #[test]
        fn temperature_never_exceeds_the_hottest_steady_state(
            slices in proptest::collection::vec((1u64..20_000_000, 0u32..=1000), 1..60)
        ) {
            let p = PowerPolicy::paper_default();
            let hottest = p.steady_milli_c(p.power_uw(0, 1000, 1000), 0, 1000);
            let mut core = CorePower::new(&p);
            for (dt, act) in &slices {
                core.advance(&p, Cycles::new(*dt), 0, *act, 0, 1000, 1000);
                prop_assert!(core.temp_milli_c >= p.ambient_milli_c);
                prop_assert!(core.temp_milli_c <= hottest);
            }
        }
    }
}
