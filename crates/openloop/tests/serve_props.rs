//! Property tests of the serve harness: across random seeds, apps,
//! overload factors, and defense ablations, the serialized ledger must
//! be byte-identical at 1 vs 4 worker threads and must conserve every
//! offered request.

use proptest::prelude::*;

use rbv_openloop::{serve_with_shard_target, ServeSpec};
use rbv_workloads::AppId;

fn app_strategy() -> impl Strategy<Value = AppId> {
    prop::sample::select(vec![AppId::WebServer, AppId::Tpcc, AppId::Rubis])
}

proptest! {
    // Each case runs the same serve twice (serial and 4-thread pool);
    // keep the count and the per-case request volume modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn serve_ledgers_are_thread_independent_and_conserving(
        app in app_strategy(),
        seed in 0u64..1_000,
        requests in 60usize..160,
        overload in 0.5f64..4.0,
        admission in prop::bool::ANY,
        shed in prop::bool::ANY,
        retries in prop::bool::ANY,
        mmpp in prop::bool::ANY,
    ) {
        let mut spec = ServeSpec::new(app, requests, seed);
        spec.overload = overload;
        spec.admission = admission;
        spec.shed = shed;
        spec.retries = retries;
        spec.mmpp = mmpp;

        // A small shard target forces a multi-shard plan even at these
        // request counts, so the merge path is actually exercised.
        let serial = serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 40)
            .expect("serial serve");
        let pooled = serve_with_shard_target(&spec, &rbv_par::Pool::new(4), 40)
            .expect("pooled serve");

        // Conservation: every offered request is accounted for exactly
        // once, whichever defense dropped or completed it.
        prop_assert_eq!(serial.completed + serial.failed(), requests as u64);

        // Byte-identity of the serialized ledger across thread counts.
        let a = serial.to_json().to_string_compact();
        let b = pooled.to_json().to_string_compact();
        prop_assert_eq!(a, b);
    }
}
