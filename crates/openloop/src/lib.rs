//! Open-loop serving harness for the Request Behavior Variations
//! reproduction: `repro serve` drives an application with a seeded
//! open-loop arrival process (Poisson or bursty MMPP) at a chosen
//! multiple of its measured capacity, with the overload defenses —
//! admission control, CoDel-style shedding, client timeout/retry — as
//! independent ablation switches.
//!
//! Two properties make million-request runs practical:
//!
//! * **Bounded memory.** Completed and failed requests are folded into
//!   [`QuantileSketch`] digests and counters as they finish
//!   ([`rbv_os::CompletionSink`]); nothing per-request is retained, so
//!   memory is O(live requests), not O(total requests).
//! * **Thread-count-independent determinism.** The run is split into a
//!   fixed shard plan that depends only on the request count — never on
//!   `--threads` — and each shard is an independent simulation seeded by
//!   a SplitMix64 hash of `(seed, shard index)`. Shard digests merge in
//!   shard order, so the serialized ledger is byte-identical at any
//!   thread count (wall-clock throughput is opt-in and excluded).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use rbv_os::{
    joules, run_simulation, run_simulation_streaming, run_simulation_streaming_traced,
    ArrivalProcess, ClientPolicy, CompletedRequest, CompletionSink, EnergyStats, FailReason,
    FailedRequest, GovernorPolicy, LadderRung, OverloadPolicy, PowerCapPolicy, PowerPolicy,
    PowerRung, QueueDiscipline, RbvError, ShedPolicy, SimConfig, ThermalFaults,
};
use rbv_sim::Cycles;
use rbv_telemetry::{Json, QuantileSketch};
use rbv_trace::{SpanCollector, SpanRecord, SpanSummary};
use rbv_workloads::{factory_for, AppId};

/// Schema tag embedded in every serve ledger; bumped on layout changes.
pub const SCHEMA: &str = "rbv-serve/v1";

/// Target requests per shard. Small enough that a million-request run
/// fans out to the shard cap, large enough that per-shard warmup (the
/// first arrivals landing on an idle machine) stays in the noise.
const SHARD_TARGET: usize = 32_768;

/// Shard-count cap: fixing the plan at ≤ 64 shards keeps the plan
/// independent of the worker pool while still saturating any thread
/// count the CLI accepts.
const MAX_SHARDS: usize = 64;

/// The failure reasons a serve ledger itemizes, in slot order.
const REASONS: [FailReason; 5] = [
    FailReason::AdmissionShed,
    FailReason::DeadlineAbort,
    FailReason::ClientTimeout,
    FailReason::CodelShed,
    FailReason::BrownoutReject,
];

/// SplitMix64 finalizer used to derive independent shard seeds — same
/// constants as the warehouse sharder and the engine's decision hashes.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Harness scale for the long-request applications (mirrors the bench
/// and chaos harnesses so serve runs finish in reasonable time).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

fn reason_slot(reason: FailReason) -> usize {
    match reason {
        FailReason::AdmissionShed => 0,
        FailReason::DeadlineAbort => 1,
        FailReason::ClientTimeout => 2,
        FailReason::CodelShed => 3,
        FailReason::BrownoutReject => 4,
    }
}

fn cycles_at_least_one(value: f64) -> Cycles {
    Cycles::new(value.max(1.0) as u64)
}

/// Everything `repro serve <app>` needs to know: the offered load and
/// which overload defenses are armed. Defenses default **on**; the
/// ablation flags turn them off one at a time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// Application under test.
    pub app: AppId,
    /// Total requests to offer (across all shards).
    pub requests: usize,
    /// Offered load as a multiple of measured capacity: 1.0 matches the
    /// service rate of all cores, 2.0 offers twice what the machine can
    /// complete.
    pub overload: f64,
    /// Front-end queue discipline; `None` keeps the engine's default
    /// least-loaded placement.
    pub discipline: Option<QueueDiscipline>,
    /// Deadline-based admission control (bounded runqueues + deadline).
    pub admission: bool,
    /// CoDel-style dequeue-time shedding.
    pub shed: bool,
    /// Impatient clients: timeout, capped exponential backoff, retry.
    pub retries: bool,
    /// Arm the runtime guard (sampling governor + health ladder +
    /// invariant monitor) so sustained overload can walk the ladder down
    /// to its shed and brownout rungs. With [`ServeSpec::power`] also
    /// armed, the guard additionally runs the power-capping ladder
    /// (frequency cap → core parking) against smoothed thermal pressure.
    pub guard: bool,
    /// Arm the per-core DVFS/power/thermal model
    /// ([`rbv_os::PowerPolicy::paper_default`]) and fold the exact
    /// integer energy accounting into the ledger's `"energy"` member.
    /// The paper-default policy never throttles an unfaulted machine, so
    /// without [`ServeSpec::thermal`] every non-energy ledger member is
    /// byte-identical with the power model off.
    pub power: bool,
    /// Inject the canonical seeded thermal storm
    /// ([`rbv_os::ThermalFaults::storm`], per shard on the shard's seed):
    /// a cooling failure, a heatwave, and a hot-loop window, which can
    /// drive cores into firmware throttling. Requires `power`.
    pub thermal: bool,
    /// Bursty MMPP arrivals instead of plain Poisson.
    pub mmpp: bool,
    /// Reconstruct per-request causal spans and fold the client-visible
    /// latency decomposition into the ledger's `"trace"` member.
    /// Observation-only: every other ledger member is byte-identical
    /// with tracing off.
    pub trace: bool,
    /// Additionally retain one compact span record per finished request
    /// for Perfetto export (implies `trace`; memory grows to O(total
    /// requests), so leave off for million-request decomposition runs).
    pub trace_spans: bool,
    /// Seed of the whole run; shard seeds derive from it.
    pub seed: u64,
}

impl ServeSpec {
    /// A fully-defended Poisson run at moderate overload.
    pub fn new(app: AppId, requests: usize, seed: u64) -> ServeSpec {
        ServeSpec {
            app,
            requests,
            overload: 1.5,
            discipline: None,
            admission: true,
            shed: true,
            retries: true,
            guard: false,
            power: false,
            thermal: false,
            mmpp: false,
            trace: false,
            trace_spans: false,
            seed,
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if self.requests == 0 {
            return Err(RbvError::Config("serve requires at least 1 request".into()));
        }
        if !self.overload.is_finite() || self.overload <= 0.0 {
            return Err(RbvError::Config(
                "serve overload factor must be finite and positive".into(),
            ));
        }
        if self.thermal && !self.power {
            return Err(RbvError::Config(
                "serve thermal faults require the power model (--power)".into(),
            ));
        }
        Ok(())
    }
}

/// Mean per-request CPU cycles from a small clean serial probe — the
/// yardstick serve sizes its arrival rate, deadline, shedding target,
/// and client patience against (same idiom as the chaos overload
/// scenario, on its own seed stream).
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn probe_mean_service(app: AppId, seed: u64) -> Result<f64, RbvError> {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed ^ 0x5EED_0B5E;
    let cfg = cfg.serial();
    let mut factory = factory_for(app, seed ^ 0x5EED_0B5E, scale_of(app));
    let result = run_simulation(cfg, factory.as_mut(), 8)?;
    let total: f64 = result
        .completed
        .iter()
        .map(CompletedRequest::cpu_cycles)
        .sum();
    Ok((total / result.completed.len() as f64).max(1.0))
}

/// The streaming sink: completed and failed requests fold into digests
/// and counters by reference and are dropped — the bounded-memory half
/// of the serve contract.
#[derive(Debug, Clone, Default, PartialEq)]
struct ServeAccumulator {
    completed: u64,
    failed_by_reason: [u64; 5],
    latency_us: QuantileSketch,
    cpu_cycles: QuantileSketch,
}

impl CompletionSink for ServeAccumulator {
    fn on_complete(&mut self, request: &CompletedRequest) {
        self.completed += 1;
        self.latency_us
            .observe(request.latency().as_f64() / 3_000.0);
        self.cpu_cycles.observe(request.cpu_cycles());
    }

    fn on_fail(&mut self, request: &FailedRequest) {
        self.failed_by_reason[reason_slot(request.reason)] += 1;
    }
}

/// One shard's digest, merged in shard order by [`serve`].
struct ShardOutput {
    acc: ServeAccumulator,
    stats: rbv_os::RunStats,
    total_time: Cycles,
    /// Span summary plus retained records, when the spec traces.
    trace: Option<(SpanSummary, Vec<SpanRecord>)>,
}

/// The shard plan: per-shard request counts summing to `requests`,
/// a pure function of the request count alone.
fn shard_plan(requests: usize, shard_target: usize) -> Vec<usize> {
    let shards = requests.div_ceil(shard_target.max(1)).clamp(1, MAX_SHARDS);
    let base = requests / shards;
    let rem = requests % shards;
    (0..shards).map(|i| base + usize::from(i < rem)).collect()
}

/// Builds the shard's simulation config from the spec and the probed
/// mean service time.
fn shard_config(spec: &ServeSpec, mean_service: f64, shard_seed: u64) -> SimConfig {
    let mut cfg =
        SimConfig::paper_default().with_interrupt_sampling(spec.app.sampling_period_micros());
    cfg.seed = shard_seed;
    let cores = cfg.machine.topology.cores as f64;
    // Offered rate = overload × capacity; capacity = cores / mean service.
    let base_gap = (mean_service / (cores * spec.overload)).max(1.0);
    cfg.arrivals = if spec.mmpp {
        // Calm/burst gaps straddle the Poisson gap so the long-run
        // offered load stays near the same overload factor while the
        // burst state transiently doubles it.
        ArrivalProcess::OpenMmpp {
            mean_interarrival: cycles_at_least_one(base_gap * 1.5),
            burst_mean_interarrival: cycles_at_least_one(base_gap * 0.5),
            mean_calm_dwell: cycles_at_least_one(mean_service * 64.0),
            mean_burst_dwell: cycles_at_least_one(mean_service * 32.0),
        }
    } else {
        ArrivalProcess::OpenPoisson {
            mean_interarrival: cycles_at_least_one(base_gap),
        }
    };
    cfg.queue_discipline = spec.discipline;
    if spec.admission {
        cfg.overload = Some(OverloadPolicy {
            max_runqueue: 4,
            deadline: Some(cycles_at_least_one(mean_service * 8.0)),
            max_retries: 3,
            retry_backoff: cycles_at_least_one(mean_service / 4.0),
        });
    }
    if spec.shed {
        cfg.shed = Some(ShedPolicy {
            target: cycles_at_least_one(mean_service * 4.0),
            interval: cycles_at_least_one(mean_service * 16.0),
        });
    }
    if spec.retries {
        cfg.client = Some(ClientPolicy {
            timeout: cycles_at_least_one(mean_service * 12.0),
            max_retries: 3,
            retry_backoff: cycles_at_least_one(mean_service),
        });
    }
    if spec.guard {
        let mut governor = GovernorPolicy::default();
        if spec.power {
            governor.power_cap = Some(PowerCapPolicy::default());
        }
        cfg.governor = Some(governor);
    }
    if spec.power {
        cfg.power = Some(PowerPolicy::paper_default());
        if spec.thermal {
            cfg.thermal_faults = Some(ThermalFaults::storm(shard_seed));
        }
    }
    cfg
}

/// Runs one shard to completion through the streaming sink and checks
/// request conservation before returning its digest.
fn run_shard(
    spec: &ServeSpec,
    mean_service: f64,
    shard_index: usize,
    n: usize,
) -> Result<ShardOutput, RbvError> {
    let shard_seed =
        splitmix64(splitmix64(spec.seed ^ 0x0be7_10c4).wrapping_add(shard_index as u64));
    let cfg = shard_config(spec, mean_service, shard_seed);
    let mut factory = factory_for(spec.app, shard_seed, scale_of(spec.app));
    let mut acc = ServeAccumulator::default();
    let mut trace = None;
    let result = if spec.trace || spec.trace_spans {
        let mut collector = if spec.trace_spans {
            SpanCollector::retaining()
        } else {
            SpanCollector::new()
        };
        let result =
            run_simulation_streaming_traced(cfg, factory.as_mut(), n, &mut acc, &mut collector)?;
        let (summary, spans) = collector.into_parts();
        if summary.completed != acc.completed || summary.unfinished != 0 {
            // Span conservation: the reconstructor must agree with the
            // completion stream request for request. A mismatch is a
            // tracing bug, not a user error.
            return Err(RbvError::Config(format!(
                "shard {shard_index}: span reconstruction diverged ({} spans completed vs {} \
                 streamed, {} unfinished)",
                summary.completed, acc.completed, summary.unfinished
            )));
        }
        trace = Some((summary, spans));
        result
    } else {
        run_simulation_streaming(cfg, factory.as_mut(), n, &mut acc)?
    };
    let failed: u64 = acc.failed_by_reason.iter().sum();
    if acc.completed + failed != n as u64 {
        // Request conservation: every offered request must end completed
        // or failed exactly once. A violation is an engine bug, not a
        // user error — surface it loudly rather than folding it in.
        return Err(RbvError::Config(format!(
            "shard {shard_index}: conservation violated ({} completed + {failed} failed != {n} offered)",
            acc.completed
        )));
    }
    Ok(ShardOutput {
        acc,
        stats: result.stats,
        total_time: result.total_time,
        trace,
    })
}

/// Merged energy/thermal accounting across shards, present when the
/// spec arms the power model. The per-core accumulators are exact
/// integers (µW·cycles), so the shard-order merge is order-free and the
/// serialized `"energy"` member is byte-identical at any thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnergyReport {
    /// Exact energy per core in µW·cycles, summed across shards.
    pub core_uw_cycles: Vec<u128>,
    /// Exact total energy in µW·cycles (must equal the core sum).
    pub total_uw_cycles: u128,
    /// Firmware throttle engagements across all cores and shards.
    pub throttle_engages: u64,
    /// Firmware throttle releases across all cores and shards.
    pub throttle_releases: u64,
    /// Cores still throttled when their shard ended.
    pub throttled_final: u64,
    /// DVFS P-state transitions across all cores and shards.
    pub dvfs_transitions: u64,
    /// Hottest temperature any core reached, milli-°C.
    pub max_temp_milli_c: i64,
    /// Power-capping ladder transitions (0 unless the guard is armed).
    pub power_rung_transitions: u64,
    /// Worst (deepest) final power rung across shards, as a
    /// [`PowerRung`] index.
    pub power_final_rung: u64,
    /// Shards whose per-core energy sum failed to equal their total
    /// exactly — the serve-level energy-conservation check. Always 0;
    /// a nonzero count is an engine bug on the record.
    pub conservation_violations: u64,
}

impl EnergyReport {
    /// Total dissipated energy in joules.
    pub fn total_joules(&self) -> f64 {
        joules(self.total_uw_cycles)
    }

    /// Label of the worst final power rung.
    pub fn power_rung_label(&self) -> &'static str {
        let idx = (self.power_final_rung as usize).min(PowerRung::ALL.len() - 1);
        PowerRung::ALL[idx].label()
    }

    /// Folds one shard's engine-side energy stats in, checking the
    /// shard's exact conservation (Σ per-core µW·cycles == total) on
    /// the way.
    fn absorb(&mut self, shard: &EnergyStats) {
        if self.core_uw_cycles.len() < shard.core_uw_cycles.len() {
            self.core_uw_cycles.resize(shard.core_uw_cycles.len(), 0);
        }
        for (slot, uw_cycles) in shard.core_uw_cycles.iter().enumerate() {
            self.core_uw_cycles[slot] += uw_cycles;
        }
        if shard.core_uw_cycles.iter().sum::<u128>() != shard.total_uw_cycles {
            self.conservation_violations += 1;
        }
        self.total_uw_cycles += shard.total_uw_cycles;
        self.throttle_engages += shard.throttle_engages;
        self.throttle_releases += shard.throttle_releases;
        self.throttled_final += shard.throttled_final;
        self.dvfs_transitions += shard.dvfs_transitions;
        self.max_temp_milli_c = self.max_temp_milli_c.max(shard.max_temp_milli_c);
        self.power_rung_transitions += shard.power_rung_transitions;
        self.power_final_rung = self.power_final_rung.max(shard.power_final_rung);
    }

    /// Serializes the energy member. The exact accumulator rides along
    /// as a decimal string (µW·cycles exceed f64's integer range on
    /// long runs), so byte-comparison of ledgers covers it losslessly.
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        Json::Obj(vec![
            ("joules".into(), num(self.total_joules())),
            (
                "uw_cycles".into(),
                Json::str(self.total_uw_cycles.to_string()),
            ),
            (
                "core_joules".into(),
                Json::Arr(
                    self.core_uw_cycles
                        .iter()
                        .map(|&c| num(joules(c)))
                        .collect(),
                ),
            ),
            ("throttle_engages".into(), num(self.throttle_engages as f64)),
            (
                "throttle_releases".into(),
                num(self.throttle_releases as f64),
            ),
            ("throttled_final".into(), num(self.throttled_final as f64)),
            ("dvfs_transitions".into(), num(self.dvfs_transitions as f64)),
            ("max_temp_milli_c".into(), num(self.max_temp_milli_c as f64)),
            (
                "power_rung_transitions".into(),
                num(self.power_rung_transitions as f64),
            ),
            (
                "power_final_rung".into(),
                Json::str(self.power_rung_label()),
            ),
            (
                "conservation_violations".into(),
                num(self.conservation_violations as f64),
            ),
        ])
    }
}

/// Everything one serve run reports: the goodput/shed/retry/deadline
/// ledger plus merged latency and CPU digests.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The spec that produced this report.
    pub spec: ServeSpec,
    /// Shards the run fanned out to.
    pub shards: u64,
    /// Probed mean per-request service cycles (the capacity yardstick).
    pub mean_service_cycles: f64,
    /// Requests that completed.
    pub completed: u64,
    /// Failures itemized by reason, in [`FailReason`] slot order
    /// (shed, deadline, timeout, codel, brownout).
    pub failed_by_reason: [u64; 5],
    /// Client timeout firings (including ones the client retried past).
    pub client_timeouts: u64,
    /// Client resubmissions after timeouts.
    pub client_retries: u64,
    /// Admission-control rejections (per attempt).
    pub admission_rejections: u64,
    /// Admission retries after backoff.
    pub admission_retries: u64,
    /// CPU cycles spent on attempts that were later aborted or shed.
    pub wasted_cycles: f64,
    /// Health-ladder transitions across all shards (0 unless `guard`).
    pub health_transitions: u64,
    /// Worst (most degraded) final ladder rung across shards; the
    /// healthy "easing" label when the guard is off or never moved.
    pub final_rung: LadderRung,
    /// Total busy cycles across all shards.
    pub busy_cycles: f64,
    /// Sum of simulated time across shards, cycles.
    pub simulated_cycles: f64,
    /// End-to-end latency digest of completed requests, microseconds.
    pub latency_us: QuantileSketch,
    /// Per-request CPU cycle digest of completed requests.
    pub cpu_cycles: QuantileSketch,
    /// Merged exact energy/thermal accounting when the spec armed the
    /// power model. `None` keeps the serialized ledger byte-identical
    /// to power-model-off builds.
    pub energy: Option<EnergyReport>,
    /// Merged span summary — the client-visible latency decomposition —
    /// when the spec traced. `None` keeps the serialized ledger
    /// byte-identical to pre-tracing builds.
    pub trace: Option<SpanSummary>,
    /// Retained span records per shard, in shard order (empty unless
    /// `trace_spans`); feeds [`rbv_trace::spans_to_perfetto`], never the
    /// serialized ledger.
    pub spans: Vec<(u32, Vec<SpanRecord>)>,
    /// Wall-clock duration of the run, seconds. Opt-in (`--wallclock`);
    /// `None` keeps the serialized ledger a pure function of the spec,
    /// which the thread-count byte-identity gate relies on.
    pub wall_seconds: Option<f64>,
}

impl ServeReport {
    /// Requests offered (= completed + failed, by conservation).
    pub fn offered(&self) -> u64 {
        self.spec.requests as u64
    }

    /// Total failures across all reasons.
    pub fn failed(&self) -> u64 {
        self.failed_by_reason.iter().sum()
    }

    /// Fraction of offered requests that completed — the metric the
    /// overload defenses exist to protect.
    pub fn goodput_frac(&self) -> f64 {
        self.completed as f64 / self.spec.requests as f64
    }

    /// Requests turned away by any shedding mechanism (admission,
    /// CoDel, brownout) — as opposed to client-side abandonment.
    pub fn shed_total(&self) -> u64 {
        self.failed_by_reason[0] + self.failed_by_reason[3] + self.failed_by_reason[4]
    }

    /// Requests that blew their end-to-end deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.failed_by_reason[1]
    }

    /// Whether every shard's ladder ended at or above its normal
    /// operating rung — the overload rungs (shed, brownout) must not
    /// outlive the storm.
    pub fn recovered(&self) -> bool {
        !self.final_rung.is_overloaded()
    }

    /// Simulated requests resolved per wall-clock second, when wall
    /// timing was recorded.
    pub fn sim_requests_per_wall_second(&self) -> Option<f64> {
        self.wall_seconds
            .filter(|s| *s > 0.0)
            .map(|s| self.spec.requests as f64 / s)
    }

    /// Serializes the report. Key order is fixed and wall-clock fields
    /// are segregated under `"profile"` (absent unless recorded), so two
    /// runs of the same spec serialize byte-identically at any thread
    /// count.
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        let arrivals = if self.spec.mmpp { "mmpp" } else { "poisson" };
        let discipline = self.spec.discipline.map_or("none", QueueDiscipline::label);
        let failed = Json::Obj(
            REASONS
                .iter()
                .enumerate()
                .map(|(slot, reason)| {
                    (
                        reason.label().to_string(),
                        num(self.failed_by_reason[slot] as f64),
                    )
                })
                .collect(),
        );
        let ledger = Json::Obj(vec![
            ("offered".into(), num(self.offered() as f64)),
            ("completed".into(), num(self.completed as f64)),
            ("goodput_frac".into(), num(self.goodput_frac())),
            ("failed".into(), failed),
            ("shed_total".into(), num(self.shed_total() as f64)),
            ("deadline_misses".into(), num(self.deadline_misses() as f64)),
            ("client_timeouts".into(), num(self.client_timeouts as f64)),
            ("client_retries".into(), num(self.client_retries as f64)),
            (
                "admission_rejections".into(),
                num(self.admission_rejections as f64),
            ),
            (
                "admission_retries".into(),
                num(self.admission_retries as f64),
            ),
            ("wasted_cycles".into(), num(self.wasted_cycles)),
            ("busy_cycles".into(), num(self.busy_cycles)),
            ("simulated_cycles".into(), num(self.simulated_cycles)),
            (
                "health_transitions".into(),
                num(self.health_transitions as f64),
            ),
            ("final_rung".into(), Json::str(self.final_rung.label())),
            ("recovered".into(), Json::Bool(self.recovered())),
        ]);
        let mut members = vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("app".into(), Json::str(self.spec.app.to_string())),
            ("seed".into(), num(self.spec.seed as f64)),
            ("requests".into(), num(self.spec.requests as f64)),
            ("overload".into(), num(self.spec.overload)),
            ("arrivals".into(), Json::str(arrivals)),
            ("discipline".into(), Json::str(discipline)),
            ("admission".into(), Json::Bool(self.spec.admission)),
            ("shed".into(), Json::Bool(self.spec.shed)),
            ("retries".into(), Json::Bool(self.spec.retries)),
            ("guard".into(), Json::Bool(self.spec.guard)),
        ];
        if self.spec.power {
            // Conditional like the energy member itself: power-off
            // ledgers stay byte-identical to pre-power builds.
            members.push(("power".into(), Json::Bool(true)));
            members.push(("thermal".into(), Json::Bool(self.spec.thermal)));
        }
        members.extend([
            ("shards".into(), num(self.shards as f64)),
            ("mean_service_cycles".into(), num(self.mean_service_cycles)),
            ("ledger".into(), ledger),
            ("latency_us".into(), self.latency_us.to_json()),
            ("cpu_cycles".into(), self.cpu_cycles.to_json()),
        ]);
        if let Some(energy) = &self.energy {
            members.push(("energy".into(), energy.to_json()));
        }
        if let Some(trace) = &self.trace {
            members.push(("trace".into(), trace.to_json()));
        }
        if let Some(wall) = self.wall_seconds {
            members.push((
                "profile".into(),
                Json::Obj(vec![
                    ("wall_seconds".into(), num(wall)),
                    (
                        "sim_requests_per_wall_second".into(),
                        num(self.sim_requests_per_wall_second().unwrap_or(0.0)),
                    ),
                ]),
            ));
        }
        Json::Obj(members)
    }
}

/// Runs the full serve campaign: probe capacity, fan the fixed shard
/// plan over `pool`, and merge digests in shard order.
///
/// # Errors
///
/// Propagates [`RbvError`] from validation, the probe, or any shard
/// (first shard in plan order wins, deterministically).
pub fn serve(spec: &ServeSpec, pool: &rbv_par::Pool) -> Result<ServeReport, RbvError> {
    serve_with_shard_target(spec, pool, SHARD_TARGET)
}

/// [`serve`] with an explicit shard-size target — the test seam that
/// exercises multi-shard merging without million-request runs. The
/// public entry point fixes the target so the plan stays a pure
/// function of the request count.
///
/// # Errors
///
/// Propagates [`RbvError`] as [`serve`] does.
pub fn serve_with_shard_target(
    spec: &ServeSpec,
    pool: &rbv_par::Pool,
    shard_target: usize,
) -> Result<ServeReport, RbvError> {
    spec.validate()?;
    let mean_service = probe_mean_service(spec.app, spec.seed)?;
    let plan = shard_plan(spec.requests, shard_target);
    let sizes: Vec<(usize, usize)> = plan.iter().copied().enumerate().collect();
    let outputs = pool.ordered_map(&sizes, |&(i, n)| run_shard(spec, mean_service, i, n));
    let mut report = ServeReport {
        spec: *spec,
        shards: plan.len() as u64,
        mean_service_cycles: mean_service,
        completed: 0,
        failed_by_reason: [0; 5],
        client_timeouts: 0,
        client_retries: 0,
        admission_rejections: 0,
        admission_retries: 0,
        wasted_cycles: 0.0,
        health_transitions: 0,
        final_rung: LadderRung::Easing,
        busy_cycles: 0.0,
        simulated_cycles: 0.0,
        latency_us: QuantileSketch::new(),
        cpu_cycles: QuantileSketch::new(),
        energy: None,
        trace: None,
        spans: Vec::new(),
        wall_seconds: None,
    };
    // Merge in shard order — the canonical order that makes floating-
    // point sums and sketch digests byte-identical at any thread count.
    for (shard_index, output) in outputs.into_iter().enumerate() {
        let shard = output?;
        report.completed += shard.acc.completed;
        for (slot, count) in shard.acc.failed_by_reason.iter().enumerate() {
            report.failed_by_reason[slot] += count;
        }
        report.client_timeouts += shard.stats.client_timeouts;
        report.client_retries += shard.stats.client_retries;
        report.admission_rejections += shard.stats.admission_rejections;
        report.admission_retries += shard.stats.admission_retries;
        report.wasted_cycles += shard.stats.wasted_cycles;
        report.health_transitions += shard.stats.health_transitions;
        let shard_rung = LadderRung::ALL[shard.stats.health_final_rung as usize];
        if shard_rung.index() > report.final_rung.index() {
            report.final_rung = shard_rung;
        }
        report.busy_cycles += shard.stats.busy_cycles;
        report.simulated_cycles += shard.total_time.as_f64();
        report.latency_us.merge(&shard.acc.latency_us);
        report.cpu_cycles.merge(&shard.acc.cpu_cycles);
        if let Some(shard_energy) = &shard.stats.energy {
            report
                .energy
                .get_or_insert_with(EnergyReport::default)
                .absorb(shard_energy);
        }
        if let Some((mut summary, spans)) = shard.trace {
            summary.set_shard(shard_index as u32);
            match &mut report.trace {
                Some(merged) => merged.merge(&summary),
                None => report.trace = Some(summary),
            }
            if spec.trace_spans {
                report.spans.push((shard_index as u32, spans));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(requests: usize, seed: u64) -> ServeSpec {
        ServeSpec::new(AppId::WebServer, requests, seed)
    }

    #[test]
    fn shard_plan_is_a_pure_function_of_the_request_count() {
        assert_eq!(shard_plan(1, SHARD_TARGET), vec![1]);
        assert_eq!(shard_plan(100, SHARD_TARGET), vec![100]);
        let million = shard_plan(1_000_000, SHARD_TARGET);
        assert_eq!(million.len(), 31);
        assert_eq!(million.iter().sum::<usize>(), 1_000_000);
        // The cap binds eventually and the plan still conserves.
        let huge = shard_plan(10_000_000, SHARD_TARGET);
        assert_eq!(huge.len(), MAX_SHARDS);
        assert_eq!(huge.iter().sum::<usize>(), 10_000_000);
        // Sizes differ by at most one, so shard runtimes stay balanced.
        let (lo, hi) = (huge.iter().min().unwrap(), huge.iter().max().unwrap());
        assert!(hi - lo <= 1);
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let mut spec = quick_spec(0, 1);
        assert!(spec.validate().is_err());
        spec.requests = 10;
        spec.overload = 0.0;
        assert!(spec.validate().is_err());
        spec.overload = f64::NAN;
        assert!(spec.validate().is_err());
        spec.overload = 2.0;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn serve_ledger_is_byte_identical_across_thread_counts() {
        let mut spec = quick_spec(120, 7);
        spec.overload = 2.0;
        let serial =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 30).expect("serial serve");
        let pooled =
            serve_with_shard_target(&spec, &rbv_par::Pool::new(4), 30).expect("pooled serve");
        assert_eq!(serial.shards, 4);
        assert_eq!(
            serial.to_json().to_string_compact(),
            pooled.to_json().to_string_compact()
        );
        assert_eq!(serial, pooled);
    }

    #[test]
    fn overload_run_conserves_requests_and_sheds() {
        let mut spec = quick_spec(160, 11);
        spec.overload = 3.0;
        let report =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 80).expect("overloaded serve");
        assert_eq!(report.completed + report.failed(), 160);
        assert!(report.failed() > 0, "3x overload must shed something");
        assert!(report.goodput_frac() > 0.0);
        assert!(report.latency_us.count() == report.completed);
        assert!(report.wasted_cycles >= 0.0);
        // The ledger section carries the same conservation story.
        let json = report.to_json();
        let ledger = json.get("ledger").expect("ledger member");
        let offered = ledger.get("offered").and_then(Json::as_f64).unwrap();
        let completed = ledger.get("completed").and_then(Json::as_f64).unwrap();
        assert_eq!(offered as u64, 160);
        assert_eq!(completed as u64, report.completed);
    }

    #[test]
    fn mmpp_arrivals_serve_and_conserve() {
        let mut spec = quick_spec(100, 3);
        spec.mmpp = true;
        spec.overload = 2.0;
        let report =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 100).expect("mmpp serve");
        assert_eq!(report.completed + report.failed(), 100);
        let json = report.to_json();
        assert_eq!(json.get("arrivals").and_then(Json::as_str), Some("mmpp"));
    }

    #[test]
    fn wallclock_profile_is_opt_in_and_segregated() {
        let spec = quick_spec(40, 5);
        let mut report =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 40).expect("serve");
        assert!(report.to_json().get("profile").is_none());
        report.wall_seconds = Some(2.0);
        let json = report.to_json();
        let profile = json.get("profile").expect("profile member");
        assert_eq!(
            profile
                .get("sim_requests_per_wall_second")
                .and_then(Json::as_f64),
            Some(20.0)
        );
    }

    #[test]
    fn traced_ledger_is_byte_identical_across_thread_counts() {
        let mut spec = quick_spec(120, 7);
        spec.overload = 2.0;
        spec.trace = true;
        let serial =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 30).expect("serial serve");
        let pooled =
            serve_with_shard_target(&spec, &rbv_par::Pool::new(4), 30).expect("pooled serve");
        assert_eq!(serial.shards, 4);
        let serial_text = serial.to_json().to_string_compact();
        assert_eq!(serial_text, pooled.to_json().to_string_compact());
        assert!(serial_text.contains("\"trace\""));
        // The decomposition sketches themselves are byte-identical too.
        let a = serial.trace.expect("serial trace");
        let b = pooled.trace.expect("pooled trace");
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact()
        );
        assert_eq!(a.violations_total(), 0, "{:?}", a.first_violation);
    }

    #[test]
    fn tracing_is_observation_only() {
        let mut traced_spec = quick_spec(100, 13);
        traced_spec.overload = 2.5;
        traced_spec.trace = true;
        let mut plain_spec = traced_spec;
        plain_spec.trace = false;
        let pool = rbv_par::Pool::serial();
        let traced = serve_with_shard_target(&traced_spec, &pool, 50).expect("traced");
        let plain = serve_with_shard_target(&plain_spec, &pool, 50).expect("plain");
        // Tracing off leaves no trace member at all (byte-identity with
        // pre-tracing ledgers).
        assert!(!plain.to_json().to_string_compact().contains("\"trace\""));
        // Tracing on changes nothing but the trace member: strip it (and
        // the spec flag) and the reports serialize identically.
        let mut stripped = traced.clone();
        stripped.trace = None;
        stripped.spec.trace = false;
        assert_eq!(
            stripped.to_json().to_string_compact(),
            plain.to_json().to_string_compact()
        );
    }

    #[test]
    fn span_decomposition_accounts_for_every_request() {
        let mut spec = quick_spec(160, 11);
        spec.overload = 3.0;
        spec.trace = true;
        let report =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 80).expect("traced serve");
        let trace = report.trace.as_ref().expect("trace summary");
        assert_eq!(trace.arrived, 160);
        assert_eq!(trace.completed, report.completed);
        assert_eq!(trace.failed, report.failed());
        assert_eq!(trace.unfinished, 0);
        // Client-visible latency covers exactly the completed requests;
        // the stage sketches cover every finished request.
        assert_eq!(trace.client_visible_us.count(), report.completed);
        assert_eq!(trace.queue_us.count(), 160);
        // Every per-request exact-sum and attempt-identity check passed.
        assert_eq!(trace.violations_total(), 0, "{:?}", trace.first_violation);
        assert!(trace.invariant_checks >= 160);
        assert!(!trace.top.is_empty());
        // Client-visible latency dominates pure service time at 3x
        // overload: queueing and retries are visible in the sketches.
        let visible_p99 = trace.client_visible_us.p99().unwrap_or(0.0);
        let service_p99 = trace.service_us.p99().unwrap_or(f64::MAX);
        assert!(visible_p99 >= service_p99);
    }

    #[test]
    fn retained_spans_round_trip_through_the_perfetto_exporter() {
        let mut spec = quick_spec(90, 17);
        spec.overload = 2.0;
        spec.trace = true;
        spec.trace_spans = true;
        let report =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 30).expect("span serve");
        assert_eq!(report.spans.len(), report.shards as usize);
        let total: usize = report.spans.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 90, "one span record per finished request");
        for (_, spans) in &report.spans {
            for span in spans {
                assert_eq!(
                    span.queue + span.service + span.backoff + span.other,
                    span.finished - span.arrived,
                    "span buckets partition the lifetime"
                );
            }
        }
        let trace = rbv_trace::spans_to_perfetto(&report.spans);
        let parsed = Json::parse(&trace.to_json_string()).expect("exported JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");
        let begins = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(Json::as_str) == Some("request")
                    && e.get("ph").and_then(Json::as_str) == Some("b")
            })
            .count();
        assert_eq!(begins, 90);
    }

    #[test]
    fn unfaulted_power_model_is_observation_only() {
        // The paper-default power policy never throttles an unfaulted
        // machine, so arming it must change nothing but the energy
        // member (and the flags that announce it).
        let mut powered_spec = quick_spec(100, 19);
        powered_spec.overload = 2.0;
        powered_spec.power = true;
        let mut plain_spec = powered_spec;
        plain_spec.power = false;
        let pool = rbv_par::Pool::serial();
        let powered = serve_with_shard_target(&powered_spec, &pool, 50).expect("powered");
        let plain = serve_with_shard_target(&plain_spec, &pool, 50).expect("plain");
        assert!(!plain.to_json().to_string_compact().contains("\"energy\""));
        let energy = powered.energy.clone().expect("energy member");
        assert_eq!(
            energy.core_uw_cycles.iter().sum::<u128>(),
            energy.total_uw_cycles,
            "exact conservation"
        );
        assert_eq!(energy.conservation_violations, 0);
        assert_eq!(energy.throttle_engages, 0, "unfaulted must not throttle");
        assert_eq!(energy.dvfs_transitions, 0);
        assert!(energy.total_joules() > 0.0);
        let mut stripped = powered.clone();
        stripped.energy = None;
        stripped.spec.power = false;
        assert_eq!(
            stripped.to_json().to_string_compact(),
            plain.to_json().to_string_compact()
        );
    }

    #[test]
    fn powered_thermal_ledger_is_byte_identical_across_thread_counts() {
        let mut spec = quick_spec(120, 7);
        spec.overload = 2.0;
        spec.power = true;
        spec.thermal = true;
        spec.guard = true;
        let serial =
            serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 30).expect("serial serve");
        let pooled =
            serve_with_shard_target(&spec, &rbv_par::Pool::new(4), 30).expect("pooled serve");
        assert_eq!(serial.shards, 4);
        let serial_text = serial.to_json().to_string_compact();
        assert_eq!(serial_text, pooled.to_json().to_string_compact());
        assert!(serial_text.contains("\"energy\""));
        assert_eq!(serial, pooled);
        let energy = serial.energy.expect("energy member");
        assert_eq!(energy.conservation_violations, 0);
        assert_eq!(
            energy.core_uw_cycles.iter().sum::<u128>(),
            energy.total_uw_cycles
        );
    }

    #[test]
    fn thermal_without_power_is_rejected() {
        let mut spec = quick_spec(10, 1);
        spec.thermal = true;
        assert!(spec.validate().is_err());
        spec.power = true;
        assert!(spec.validate().is_ok());
    }

    proptest::proptest! {
        // Two full serves per case; keep the count modest.
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        /// The power-model-off bit-identity contract: a ledger served
        /// with the power model off is byte-identical to the powered,
        /// unfaulted ledger with its energy member (and flags) stripped
        /// — i.e. the power model is observation-only until a thermal
        /// fault or the capping ladder actually moves a frequency.
        #[test]
        fn power_off_ledgers_are_bit_identical_to_powered_unfaulted(
            seed in 0u64..1_000,
            requests in 40usize..120,
        ) {
            let mut powered_spec = quick_spec(requests, seed);
            powered_spec.overload = 2.5;
            powered_spec.power = true;
            let mut plain_spec = powered_spec;
            plain_spec.power = false;
            let pool = rbv_par::Pool::serial();
            let powered = serve_with_shard_target(&powered_spec, &pool, 60).expect("powered");
            let plain = serve_with_shard_target(&plain_spec, &pool, 60).expect("plain");
            let mut stripped = powered.clone();
            stripped.energy = None;
            stripped.spec.power = false;
            proptest::prop_assert_eq!(
                stripped.to_json().to_string_compact(),
                plain.to_json().to_string_compact()
            );
        }
    }

    #[test]
    fn defenses_beat_the_undefended_ablation_under_retry_storm() {
        // The acceptance comparison in miniature: at sustained overload
        // with impatient clients, armed defenses must complete at least
        // as many requests as the everything-off ablation, and the
        // undefended run must exhibit the retry storm (timeouts and
        // resubmissions) the defenses exist to contain.
        let mut defended = quick_spec(400, 23);
        defended.overload = 4.0;
        let mut undefended = defended;
        undefended.admission = false;
        undefended.shed = false;
        let pool = rbv_par::Pool::serial();
        let d = serve_with_shard_target(&defended, &pool, 400).expect("defended");
        let u = serve_with_shard_target(&undefended, &pool, 400).expect("undefended");
        assert_eq!(u.completed + u.failed(), 400);
        assert!(
            u.client_timeouts > 100 && u.client_retries > 100,
            "undefended overload should storm: {} timeouts, {} retries",
            u.client_timeouts,
            u.client_retries
        );
        assert!(
            u.wasted_cycles > 0.0,
            "aborted attempts should waste service cycles"
        );
        assert!(
            d.goodput_frac() > u.goodput_frac(),
            "defenses lost goodput: defended {:.3} <= undefended {:.3}",
            d.goodput_frac(),
            u.goodput_frac()
        );
        assert!(
            d.wasted_cycles < u.wasted_cycles,
            "defenses should waste fewer cycles than the storm"
        );
    }
}
