//! Deterministic fault injection for the Request Behavior Variations
//! reproduction.
//!
//! The paper's anomaly-detection and "do no harm" claims (§3–5) are only
//! credible if the stack can *manufacture* misbehavior and demonstrably
//! tolerate and detect it. This crate provides that substrate:
//!
//! * [`plan`] — the seedable [`FaultPlan`]: same seed ⇒ identical fault
//!   schedule across workload, measurement, and overload levels;
//! * [`inject`] — [`FaultyFactory`], a request-factory wrapper applying
//!   the plan's workload faults (inflated working sets, runaway segment
//!   loops, stuck syscalls) and logging ground truth;
//! * [`detect`] — the §4.3 centroid-outlier detector over completed
//!   requests, scored precision/recall against that ground truth;
//! * [`chaos`] — the full fault matrix behind `repro chaos <app>`:
//!   anomaly scoring, measurement-storm degradation, overload
//!   protection, and the easing-vs-stock fault-storm comparison;
//! * [`drift`] — campaign-level [`DriftScenario`]: deterministic
//!   assignment of sustained workload drift to `(app, epoch)` cells of a
//!   long-horizon campaign, the ground truth the warehouse drift
//!   detector is scored against.
//!
//! Fault injection is strictly opt-in: [`FaultPlan::none`] leaves every
//! random stream, request, and event schedule untouched, so clean runs
//! are bit-identical with or without this crate in the loop.
//!
//! # Example
//!
//! ```
//! use rbv_faults::{FaultPlan, FaultyFactory, WorkloadFaults};
//! use rbv_os::{run_simulation, SimConfig};
//! use rbv_workloads::factory_for;
//!
//! let plan = FaultPlan {
//!     workload: Some(WorkloadFaults::storm()),
//!     ..FaultPlan::none(42)
//! };
//! let mut factory = FaultyFactory::new(
//!     factory_for(rbv_workloads::AppId::WebServer, 42, 1.0),
//!     plan,
//! );
//! let result = run_simulation(SimConfig::paper_default(), &mut factory, 30)
//!     .expect("valid configuration");
//! assert_eq!(result.completed.len(), 30);
//! // Ground truth for scoring the detector:
//! let _injected = factory.injected();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod detect;
pub mod drift;
pub mod inject;
pub mod plan;

pub use chaos::{
    run_matrix, run_matrix_pooled, scenario_retry_storm, scenario_thermal, ChaosReport,
    RetryStormOutcome, ThermalOutcome,
};
pub use detect::{detect_anomalies, score, DetectorConfig, PrecisionRecall};
pub use drift::{DriftScenario, FIRST_DRIFT_EPOCH};
pub use inject::{FaultyFactory, InjectedFault};
pub use plan::{FaultPlan, WorkloadFaultKind, WorkloadFaults};
