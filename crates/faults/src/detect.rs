//! Anomaly detection over completed requests, scored against injected
//! ground truth.
//!
//! The detector is the paper's §4.3 recipe: group requests sharing
//! application-level semantics (the [`rbv_workloads::RequestClass`]),
//! then within each group rank members by distance from the group
//! centroid ([`rbv_core::anomaly::centroid_outliers`]) and flag the far
//! tail. Features are the request's (log) instruction total and its
//! whole-request CPI — the two axes the workload fault kinds disturb —
//! robustly normalized per group (median/MAD) so the flagging threshold
//! is scale-free.

use std::collections::BTreeMap;

use rbv_core::anomaly::centroid_outliers;
use rbv_core::cluster::DistanceMatrix;
use rbv_core::stats::percentile;
use rbv_os::CompletedRequest;
use rbv_workloads::RequestClass;

/// Tuning of the [`detect_anomalies`] flagging rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Smallest semantic group the detector will judge on its own;
    /// members of smaller groups are pooled into one application-level
    /// fallback group instead.
    pub min_group: usize,
    /// A member is flagged when its centroid distance exceeds this
    /// multiple of the group's median centroid distance...
    pub median_multiple: f64,
    /// ...and also exceeds this absolute floor in MAD-normalized units
    /// (guards tight groups whose median distance is nearly zero).
    pub min_distance: f64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            min_group: 4,
            median_multiple: 3.0,
            min_distance: 2.5,
        }
    }
}

/// Detection quality against known ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrecisionRecall {
    /// Flagged requests that really were injected.
    pub true_positives: usize,
    /// Flagged requests that were clean.
    pub false_positives: usize,
    /// Injected requests the detector missed.
    pub false_negatives: usize,
}

impl PrecisionRecall {
    /// Fraction of flags that were right (1 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of injected anomalies found (1 when none were injected).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Flags suspected anomalies among `completed`; returns their request
/// ids, ascending.
pub fn detect_anomalies(completed: &[CompletedRequest], det: &DetectorConfig) -> Vec<usize> {
    let mut groups: BTreeMap<RequestClass, Vec<usize>> = BTreeMap::new();
    for (pos, r) in completed.iter().enumerate() {
        groups.entry(r.class).or_default().push(pos);
    }

    let mut flagged = Vec::new();
    // Requests whose semantic group is too small for a meaningful
    // centroid (e.g. WeBWorK's ~3000 Zipf-drawn problems yield mostly
    // singleton classes) fall back to one pooled application-level
    // group: weaker (cross-class spread widens the normal band) but
    // strictly better than leaving them unjudged.
    let mut residual: Vec<usize> = Vec::new();
    for members in groups.values() {
        if members.len() < det.min_group {
            residual.extend_from_slice(members);
            continue;
        }
        flag_group(completed, members, det, &mut flagged);
    }
    if residual.len() >= det.min_group {
        flag_group(completed, &residual, det, &mut flagged);
    }
    flagged.sort_unstable();
    flagged
}

/// Runs the centroid-outlier rule over one group of `completed`
/// positions, appending the ids of members past the cut to `flagged`.
fn flag_group(
    completed: &[CompletedRequest],
    members: &[usize],
    det: &DetectorConfig,
    flagged: &mut Vec<usize>,
) {
    let features: Vec<[f64; 2]> = members
        .iter()
        .map(|&pos| {
            let r = &completed[pos];
            let ins = r.timeline.total_instructions().max(1.0);
            let cpi = r.request_cpi().unwrap_or(0.0);
            [ins.ln(), cpi]
        })
        .collect();
    let scales = [mad_scale(&features, 0), mad_scale(&features, 1)];
    let dm = DistanceMatrix::compute(features.len(), |i, j| {
        let dx = (features[i][0] - features[j][0]) / scales[0];
        let dy = (features[i][1] - features[j][1]) / scales[1];
        (dx * dx + dy * dy).sqrt()
    });
    let Some((_, outliers)) = centroid_outliers(&dm) else {
        return;
    };
    let distances: Vec<f64> = outliers.iter().map(|o| o.distance).collect();
    let median = percentile(&distances, 0.5).unwrap_or(0.0);
    let cut = (det.median_multiple * median).max(det.min_distance);
    for o in outliers {
        if o.distance > cut {
            flagged.push(completed[members[o.index]].id);
        }
    }
}

/// Robust scale of one feature dimension: the median absolute deviation
/// scaled to Gaussian sigma, floored so a constant dimension does not
/// blow up the normalized distances.
fn mad_scale(features: &[[f64; 2]], dim: usize) -> f64 {
    let values: Vec<f64> = features.iter().map(|f| f[dim]).collect();
    let med = percentile(&values, 0.5).unwrap_or(0.0);
    let dev: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    let mad = percentile(&dev, 0.5).unwrap_or(0.0);
    (mad * 1.4826).max(1e-3)
}

/// Scores `flagged` (request ids) against `truth` (injected request ids
/// that actually completed). Both may be in any order.
pub fn score(flagged: &[usize], truth: &[usize]) -> PrecisionRecall {
    let truth_set: std::collections::BTreeSet<usize> = truth.iter().copied().collect();
    let flagged_set: std::collections::BTreeSet<usize> = flagged.iter().copied().collect();
    let true_positives = flagged_set.intersection(&truth_set).count();
    PrecisionRecall {
        true_positives,
        false_positives: flagged_set.len() - true_positives,
        false_negatives: truth_set.len() - true_positives,
    }
}

#[cfg(test)]
mod tests {
    use rbv_os::{run_simulation, SimConfig};
    use rbv_workloads::{factory_for, AppId};

    use super::*;
    use crate::inject::FaultyFactory;
    use crate::plan::{FaultPlan, WorkloadFaults};

    #[test]
    fn precision_recall_arithmetic() {
        let pr = score(&[1, 2, 3], &[2, 3, 4, 5]);
        assert_eq!(pr.true_positives, 2);
        assert_eq!(pr.false_positives, 1);
        assert_eq!(pr.false_negatives, 2);
        assert!((pr.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall() - 0.5).abs() < 1e-12);

        let empty = score(&[], &[]);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn clean_runs_raise_few_flags() {
        let mut factory = factory_for(AppId::WebServer, 17, 1.0);
        let cfg = SimConfig::paper_default().with_interrupt_sampling(10);
        let result = run_simulation(cfg, factory.as_mut(), 80).expect("valid");
        let flagged = detect_anomalies(&result.completed, &DetectorConfig::default());
        assert!(
            flagged.len() <= result.completed.len() / 10,
            "{} of {} clean requests flagged",
            flagged.len(),
            result.completed.len()
        );
    }

    #[test]
    fn injected_anomalies_are_found() {
        let plan = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(42)
        };
        let mut factory = FaultyFactory::new(factory_for(AppId::WebServer, 17, 1.0), plan);
        let mut cfg = SimConfig::paper_default().with_interrupt_sampling(10);
        cfg.seed = 17;
        let result = run_simulation(cfg, &mut factory, 120).expect("valid");
        let completed_ids: std::collections::BTreeSet<usize> =
            result.completed.iter().map(|r| r.id).collect();
        let truth: Vec<usize> = factory
            .injected_ids()
            .into_iter()
            .filter(|id| completed_ids.contains(id))
            .collect();
        assert!(!truth.is_empty());

        let flagged = detect_anomalies(&result.completed, &DetectorConfig::default());
        let pr = score(&flagged, &truth);
        assert!(
            pr.recall() >= 0.8,
            "recall {:.2} (tp {} fn {})",
            pr.recall(),
            pr.true_positives,
            pr.false_negatives
        );
        assert!(
            pr.precision() >= 0.5,
            "precision {:.2} (tp {} fp {})",
            pr.precision(),
            pr.true_positives,
            pr.false_positives
        );
    }
}
