//! The chaos matrix: one run per fault level plus the easing fault
//! storm, folded into a single [`ChaosReport`] for `repro chaos <app>`.
//!
//! Four scenarios, all deterministic in `(app, seed)`:
//!
//! 1. **Anomaly injection** — a workload-fault storm over a clean
//!    engine; the §4.3 detector is scored precision/recall against the
//!    injected ground truth.
//! 2. **Degradation** — a measurement-fault storm over syscall-triggered
//!    sampling; the engine must degrade to the backup interrupt timer
//!    and flag low-confidence samples while every request still
//!    completes.
//! 3. **Overload** — open-loop arrivals at twice the measured service
//!    capacity against bounded runqueues, deadlines, and client retry;
//!    every offered request is accounted for as completed or failed.
//! 4. **Easing storm** — the contention-easing scheduler with its
//!    prediction-confidence gate under the same measurement storm,
//!    compared against stock scheduling at p99 request CPI.

use std::io::{self, Write};

use rbv_core::stats::percentile;
use rbv_os::{
    config::ArrivalProcess, run_simulation, GovernorPolicy, LadderRung, MeasurementFaults,
    OverloadPolicy, RbvError, RunResult, SchedulerPolicy, SimConfig,
};
use rbv_sim::Cycles;
use rbv_telemetry::Json;
use rbv_workloads::{factory_for, AppId};

use crate::detect::{detect_anomalies, score, DetectorConfig, PrecisionRecall};
use crate::inject::FaultyFactory;
use crate::plan::{FaultPlan, WorkloadFaultKind, WorkloadFaults};

/// Outcome of the anomaly-injection scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyOutcome {
    /// Injected anomalies that completed (the scoring ground truth).
    pub injected: usize,
    /// Injected count per fault kind, aligned with
    /// [`WorkloadFaultKind::ALL`].
    pub injected_by_kind: [usize; 3],
    /// Requests the detector flagged.
    pub flagged: usize,
    /// Detection quality.
    pub score: PrecisionRecall,
}

/// Outcome of the measurement-degradation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationOutcome {
    /// Requests that completed despite the storm.
    pub completed: usize,
    /// Samples taken in syscall/context-switch contexts.
    pub samples_inkernel: u64,
    /// Samples the (backup) interrupt path collected.
    pub samples_interrupt: u64,
    /// Sampling interrupts lost to injected faults.
    pub samples_lost: u64,
    /// Samples flagged low-confidence instead of corrupting series.
    pub low_confidence: u64,
    /// Counter overflows detected and zeroed.
    pub counter_overflows: u64,
    /// Syscall-sampling starvation windows the backup timer covered.
    pub starvation_windows: u64,
}

/// Outcome of the overload scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadOutcome {
    /// Requests offered to the system.
    pub offered: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests shed or aborted.
    pub failed: usize,
    /// Admission-control bounces (one request may bounce repeatedly).
    pub admission_rejections: u64,
    /// Client retries scheduled with backoff + jitter.
    pub admission_retries: u64,
    /// Requests shed for good after exhausting retries.
    pub load_shed: u64,
    /// Requests aborted at their deadline.
    pub deadline_aborts: u64,
    /// 99th-percentile latency of the completed requests, microseconds.
    pub p99_latency_micros: f64,
}

/// Outcome of the easing-under-fault-storm comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EasingStormOutcome {
    /// p99 request CPI under the stock scheduler.
    pub stock_p99_cpi: f64,
    /// p99 request CPI under gated contention easing, same storm.
    pub eased_p99_cpi: f64,
    /// Scheduling decisions the confidence gate sent back to stock.
    pub gate_fallbacks: u64,
}

/// Outcome of the governed-storm scenario: the adaptive sampling
/// governor, health ladder, and invariant monitor riding the same
/// measurement storm as scenario 4.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorOutcome {
    /// Requests that completed under the governed storm.
    pub completed: usize,
    /// Accounting windows the governor closed.
    pub windows: u64,
    /// Multiplicative interval backoffs applied.
    pub backoffs: u64,
    /// Additive interval recoveries applied.
    pub recoveries: u64,
    /// Windows whose compensated observer overhead breached the budget.
    pub budget_breaches: u64,
    /// Longest run of consecutive over-budget windows (do-no-harm allows
    /// at most one: the AIMD correction lag).
    pub max_breach_streak: u64,
    /// Sampling-interval scale at run end (1 = configured baseline).
    pub final_scale: f64,
    /// Cumulative priced observer overhead across governed windows as a
    /// fraction of busy cycles.
    pub overhead_frac: f64,
    /// One-window slack: the costliest single window's sampling cycles
    /// as a fraction of all busy cycles (the overshoot allowance the
    /// AIMD correction lag is permitted).
    pub slack_frac: f64,
    /// The do-no-harm budget the governor enforced.
    pub budget_frac: f64,
    /// Measurement-health ladder transitions taken.
    pub health_transitions: u64,
    /// Ladder rung at run end ("easing" / "frozen_predictions" /
    /// "stock").
    pub final_rung: String,
    /// Runtime invariant checks performed.
    pub invariant_checks: u64,
    /// Runtime invariant violations (must be zero on a healthy engine).
    pub invariant_violations: u64,
    /// p99 request CPI under the stock scheduler, same storm.
    pub stock_p99_cpi: f64,
    /// p99 request CPI under governed contention easing, same storm.
    pub governed_p99_cpi: f64,
}

/// Outcome of the retry-storm scenario (opt-in via `repro chaos
/// --retry-storm`): sustained open-loop overdrive with impatient
/// clients, run twice — once with the overload defenses (admission,
/// CoDel shedding, guard ladder) armed and once with them ablated — so
/// the metastable retry amplification and the goodput the defenses
/// preserve are both on the record.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryStormOutcome {
    /// Requests offered to each contender.
    pub offered: usize,
    /// Completions with the defenses armed.
    pub defended_completed: u64,
    /// Completions with admission and shedding ablated.
    pub undefended_completed: u64,
    /// Client timeout firings in the undefended storm.
    pub undefended_timeouts: u64,
    /// Client resubmissions in the undefended storm.
    pub undefended_retries: u64,
    /// Service cycles the undefended storm burned on attempts that were
    /// later abandoned.
    pub undefended_wasted_cycles: f64,
    /// Wasted cycles with the defenses armed (should be far smaller).
    pub defended_wasted_cycles: f64,
    /// Requests the armed defenses turned away (admission + CoDel +
    /// brownout).
    pub defended_shed: u64,
    /// Brownout-rung rejections among the defended sheds.
    pub brownout_rejections: u64,
    /// Health-ladder transitions the defended run took.
    pub health_transitions: u64,
    /// Defended run's final ladder rung; must not be an overload rung.
    pub final_rung: String,
    /// Whether the defended ladder ended at or above normal operation.
    pub recovered: bool,
}

impl RetryStormOutcome {
    /// Fraction of offered requests the defended run completed.
    pub fn defended_goodput(&self) -> f64 {
        self.defended_completed as f64 / self.offered as f64
    }

    /// Fraction of offered requests the undefended run completed.
    pub fn undefended_goodput(&self) -> f64 {
        self.undefended_completed as f64 / self.offered as f64
    }

    /// Serializes the retry-storm outcome (the `retry_storm` member of
    /// the chaos report).
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        Json::Obj(vec![
            ("offered".into(), num(self.offered as f64)),
            (
                "defended_completed".into(),
                num(self.defended_completed as f64),
            ),
            (
                "undefended_completed".into(),
                num(self.undefended_completed as f64),
            ),
            ("defended_goodput".into(), num(self.defended_goodput())),
            ("undefended_goodput".into(), num(self.undefended_goodput())),
            (
                "undefended_timeouts".into(),
                num(self.undefended_timeouts as f64),
            ),
            (
                "undefended_retries".into(),
                num(self.undefended_retries as f64),
            ),
            (
                "undefended_wasted_cycles".into(),
                num(self.undefended_wasted_cycles),
            ),
            (
                "defended_wasted_cycles".into(),
                num(self.defended_wasted_cycles),
            ),
            ("defended_shed".into(), num(self.defended_shed as f64)),
            (
                "brownout_rejections".into(),
                num(self.brownout_rejections as f64),
            ),
            (
                "health_transitions".into(),
                num(self.health_transitions as f64),
            ),
            ("final_rung".into(), Json::str(self.final_rung.clone())),
            ("recovered".into(), Json::Bool(self.recovered)),
        ])
    }
}

/// Outcome of the thermal-storm scenario (opt-in via `repro chaos
/// --thermal`): sub-capacity open-loop serving under a permanent
/// heatwave with a cooling-failure victim core, run twice — once with
/// the guard's power-capping rungs armed and once with only the
/// firmware throttle latch to fall back on — so the goodput and tail
/// latency the proactive cap preserves are both on the record.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalOutcome {
    /// Requests offered to each contender.
    pub offered: usize,
    /// Completions with the power-capping defense armed.
    pub defended_completed: u64,
    /// Completions with the defense ablated (firmware latch only).
    pub undefended_completed: u64,
    /// p99 client latency with the defense armed, microseconds.
    pub defended_p99_latency_micros: f64,
    /// p99 client latency with the defense ablated, microseconds.
    pub undefended_p99_latency_micros: f64,
    /// Firmware throttle latches the defended run suffered.
    pub defended_throttle_engages: u64,
    /// Firmware throttle latches the ablated run suffered.
    pub undefended_throttle_engages: u64,
    /// Power-ladder rung transitions the defended guard took.
    pub power_rung_transitions: u64,
    /// Defended run's power rung at run end ("nominal" / "freq_cap" /
    /// "core_park").
    pub power_final_rung: String,
    /// Defended run's health-ladder rung at run end.
    pub final_rung: String,
    /// Whether the defended health ladder ended at or above normal
    /// operation.
    pub recovered: bool,
    /// Joules the defended run burned.
    pub defended_joules: f64,
    /// Joules the ablated run burned.
    pub undefended_joules: f64,
}

impl ThermalOutcome {
    /// Fraction of offered requests the defended run completed.
    pub fn defended_goodput(&self) -> f64 {
        self.defended_completed as f64 / self.offered as f64
    }

    /// Fraction of offered requests the ablated run completed.
    pub fn undefended_goodput(&self) -> f64 {
        self.undefended_completed as f64 / self.offered as f64
    }

    /// Serializes the thermal outcome (the `thermal` member of the
    /// chaos report).
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        Json::Obj(vec![
            ("offered".into(), num(self.offered as f64)),
            (
                "defended_completed".into(),
                num(self.defended_completed as f64),
            ),
            (
                "undefended_completed".into(),
                num(self.undefended_completed as f64),
            ),
            ("defended_goodput".into(), num(self.defended_goodput())),
            ("undefended_goodput".into(), num(self.undefended_goodput())),
            (
                "defended_p99_latency_micros".into(),
                num(self.defended_p99_latency_micros),
            ),
            (
                "undefended_p99_latency_micros".into(),
                num(self.undefended_p99_latency_micros),
            ),
            (
                "defended_throttle_engages".into(),
                num(self.defended_throttle_engages as f64),
            ),
            (
                "undefended_throttle_engages".into(),
                num(self.undefended_throttle_engages as f64),
            ),
            (
                "power_rung_transitions".into(),
                num(self.power_rung_transitions as f64),
            ),
            (
                "power_final_rung".into(),
                Json::str(self.power_final_rung.clone()),
            ),
            ("final_rung".into(), Json::str(self.final_rung.clone())),
            ("recovered".into(), Json::Bool(self.recovered)),
            ("defended_joules".into(), num(self.defended_joules)),
            ("undefended_joules".into(), num(self.undefended_joules)),
        ])
    }
}

impl GovernorOutcome {
    /// Serializes the governed-storm outcome (the `governor` member of
    /// the chaos report and the run ledger's guard section).
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        Json::Obj(vec![
            ("completed".into(), num(self.completed as f64)),
            ("windows".into(), num(self.windows as f64)),
            ("backoffs".into(), num(self.backoffs as f64)),
            ("recoveries".into(), num(self.recoveries as f64)),
            ("budget_breaches".into(), num(self.budget_breaches as f64)),
            (
                "max_breach_streak".into(),
                num(self.max_breach_streak as f64),
            ),
            ("final_scale".into(), num(self.final_scale)),
            ("overhead_frac".into(), num(self.overhead_frac)),
            ("slack_frac".into(), num(self.slack_frac)),
            ("budget_frac".into(), num(self.budget_frac)),
            (
                "health_transitions".into(),
                num(self.health_transitions as f64),
            ),
            ("final_rung".into(), Json::str(self.final_rung.clone())),
            ("invariant_checks".into(), num(self.invariant_checks as f64)),
            (
                "invariant_violations".into(),
                num(self.invariant_violations as f64),
            ),
            ("stock_p99_cpi".into(), num(self.stock_p99_cpi)),
            ("governed_p99_cpi".into(), num(self.governed_p99_cpi)),
        ])
    }
}

/// Everything `repro chaos <app>` reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Application under test.
    pub app: AppId,
    /// Seed of the whole matrix.
    pub seed: u64,
    /// Scenario 1.
    pub anomaly: AnomalyOutcome,
    /// Scenario 2.
    pub degradation: DegradationOutcome,
    /// Scenario 3.
    pub overload: OverloadOutcome,
    /// Scenario 4.
    pub easing: EasingStormOutcome,
    /// Scenario 5 (opt-in via `repro chaos --governor`): the sampling
    /// governor under the storm.
    pub governor: Option<GovernorOutcome>,
    /// Scenario 6 (opt-in via `repro chaos --retry-storm`): metastable
    /// retry amplification, defended vs ablated.
    pub retry_storm: Option<RetryStormOutcome>,
    /// Scenario 7 (opt-in via `repro chaos --thermal`): serving through
    /// a thermal-fault storm, power-capping defense vs firmware-only
    /// ablation.
    pub thermal: Option<ThermalOutcome>,
}

impl ChaosReport {
    /// Serializes the whole matrix outcome as a self-describing JSON
    /// object — the shape `repro chaos --json` prints and the run ledger
    /// embeds per app.
    pub fn to_json(&self) -> Json {
        let num = Json::Num;
        let a = &self.anomaly;
        let d = &self.degradation;
        let o = &self.overload;
        let e = &self.easing;
        Json::Obj(
            vec![
                ("app".into(), Json::str(self.app.to_string())),
                ("seed".into(), num(self.seed as f64)),
                (
                    "anomaly".into(),
                    Json::Obj(vec![
                        ("injected".into(), num(a.injected as f64)),
                        (
                            "injected_by_kind".into(),
                            Json::Obj(
                                WorkloadFaultKind::ALL
                                    .iter()
                                    .enumerate()
                                    .map(|(slot, kind)| {
                                        (
                                            kind.label().to_string(),
                                            num(a.injected_by_kind[slot] as f64),
                                        )
                                    })
                                    .collect(),
                            ),
                        ),
                        ("flagged".into(), num(a.flagged as f64)),
                        ("precision".into(), num(a.score.precision())),
                        ("recall".into(), num(a.score.recall())),
                    ]),
                ),
                (
                    "degradation".into(),
                    Json::Obj(vec![
                        ("completed".into(), num(d.completed as f64)),
                        ("samples_inkernel".into(), num(d.samples_inkernel as f64)),
                        ("samples_interrupt".into(), num(d.samples_interrupt as f64)),
                        ("samples_lost".into(), num(d.samples_lost as f64)),
                        ("low_confidence".into(), num(d.low_confidence as f64)),
                        ("counter_overflows".into(), num(d.counter_overflows as f64)),
                        (
                            "starvation_windows".into(),
                            num(d.starvation_windows as f64),
                        ),
                    ]),
                ),
                (
                    "overload".into(),
                    Json::Obj(vec![
                        ("offered".into(), num(o.offered as f64)),
                        ("completed".into(), num(o.completed as f64)),
                        ("failed".into(), num(o.failed as f64)),
                        (
                            "admission_rejections".into(),
                            num(o.admission_rejections as f64),
                        ),
                        ("admission_retries".into(), num(o.admission_retries as f64)),
                        ("load_shed".into(), num(o.load_shed as f64)),
                        ("deadline_aborts".into(), num(o.deadline_aborts as f64)),
                        ("p99_latency_micros".into(), num(o.p99_latency_micros)),
                    ]),
                ),
                (
                    "easing".into(),
                    Json::Obj(vec![
                        ("stock_p99_cpi".into(), num(e.stock_p99_cpi)),
                        ("eased_p99_cpi".into(), num(e.eased_p99_cpi)),
                        ("gate_fallbacks".into(), num(e.gate_fallbacks as f64)),
                    ]),
                ),
            ]
            .into_iter()
            .chain(
                self.governor
                    .as_ref()
                    .map(|g| ("governor".into(), g.to_json())),
            )
            .chain(
                self.retry_storm
                    .as_ref()
                    .map(|s| ("retry_storm".into(), s.to_json())),
            )
            .chain(
                self.thermal
                    .as_ref()
                    .map(|t| ("thermal".into(), t.to_json())),
            )
            .collect(),
        )
    }
}

/// Harness scale for the long-request applications (mirrors the bench
/// harness so chaos runs finish in seconds).
fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

/// Requests per scenario.
fn requests_of(app: AppId, fast: bool) -> usize {
    let full = match app {
        AppId::WebServer => 320,
        AppId::Tpcc => 240,
        AppId::Rubis => 200,
        AppId::Tpch => 120,
        AppId::Webwork | AppId::MbenchSpin | AppId::MbenchData => 60,
    };
    if fast {
        (full / 4).max(40)
    } else {
        full
    }
}

/// The measurement-fault storm shared by scenarios 2 and 4.
fn measurement_storm(app: AppId) -> MeasurementFaults {
    MeasurementFaults {
        lost_interrupt_prob: 0.25,
        counter_overflow_prob: 0.05,
        counter_skid_sigma: 0.05,
        syscall_starvation_prob: 0.3,
        syscall_starvation_window: Cycles::from_micros(app.sampling_period_micros() * 20),
    }
}

/// The standard interrupt-sampled config for `app`.
fn base_config(app: AppId, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    cfg
}

/// Mean per-request CPU cycles from a small clean serial probe — the
/// yardstick the overload scenario sizes its arrival rate, deadline, and
/// backoff against.
fn probe_mean_service(app: AppId, seed: u64) -> Result<f64, RbvError> {
    let cfg = base_config(app, seed ^ 0x9B0E).serial();
    let mut factory = factory_for(app, seed ^ 0x9B0E, scale_of(app));
    let result = run_simulation(cfg, factory.as_mut(), 8)?;
    let total: f64 = result.completed.iter().map(|r| r.cpu_cycles()).sum();
    Ok((total / result.completed.len() as f64).max(1.0))
}

/// Runs the full chaos matrix for `app` at `seed`.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation (none of the
/// built-in scenarios should trigger it; custom plans might).
pub fn run_matrix(app: AppId, seed: u64, fast: bool) -> Result<ChaosReport, RbvError> {
    run_matrix_with(app, seed, fast, false)
}

/// Runs the chaos matrix, optionally adding scenario 5: the adaptive
/// sampling governor (with health ladder and invariant monitor) under
/// the measurement storm.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn run_matrix_with(
    app: AppId,
    seed: u64,
    fast: bool,
    governor: bool,
) -> Result<ChaosReport, RbvError> {
    run_matrix_pooled(
        app,
        seed,
        fast,
        governor,
        false,
        false,
        &rbv_par::Pool::serial(),
    )
}

/// One scenario's outcome, tagged for ordered collection by
/// [`run_matrix_pooled`].
enum ScenarioResult {
    Anomaly(AnomalyOutcome),
    Degradation(DegradationOutcome),
    Overload(OverloadOutcome),
    Easing(EasingStormOutcome),
    Governor(GovernorOutcome),
    RetryStorm(RetryStormOutcome),
    Thermal(ThermalOutcome),
}

/// Runs the chaos matrix with its scenarios fanned over `pool`.
///
/// Every scenario is an independent simulation deterministic in
/// `(app, seed, fast)`, so distributing them over worker threads and
/// collecting in scenario order produces a report **bit-identical** to
/// the serial matrix at any thread count ([`rbv_par`]'s ordered-collect
/// contract). `run_matrix` / [`run_matrix_with`] are the serial-pool
/// special case.
///
/// # Errors
///
/// Propagates the first scenario's [`RbvError`] in scenario order
/// (deterministic regardless of which worker hit it first).
pub fn run_matrix_pooled(
    app: AppId,
    seed: u64,
    fast: bool,
    governor: bool,
    retry_storm: bool,
    thermal: bool,
    pool: &rbv_par::Pool,
) -> Result<ChaosReport, RbvError> {
    let n = requests_of(app, fast);
    let mut scenarios: Vec<u8> = vec![0, 1, 2, 3];
    if governor {
        scenarios.push(4);
    }
    if retry_storm {
        scenarios.push(5);
    }
    if thermal {
        scenarios.push(6);
    }
    let results = pool.ordered_map(&scenarios, |&which| match which {
        0 => scenario_anomaly(app, seed, n).map(ScenarioResult::Anomaly),
        1 => scenario_degradation(app, seed, n).map(ScenarioResult::Degradation),
        2 => scenario_overload(app, seed, n).map(ScenarioResult::Overload),
        3 => easing_storm(app, seed, n).map(ScenarioResult::Easing),
        4 => governor_storm(app, seed, n).map(ScenarioResult::Governor),
        5 => scenario_retry_storm(app, seed).map(ScenarioResult::RetryStorm),
        _ => scenario_thermal(app, seed).map(ScenarioResult::Thermal),
    });
    let mut anomaly = None;
    let mut degradation = None;
    let mut overload = None;
    let mut easing = None;
    let mut governor_outcome = None;
    let mut storm_outcome = None;
    let mut thermal_outcome = None;
    for result in results {
        match result? {
            ScenarioResult::Anomaly(o) => anomaly = Some(o),
            ScenarioResult::Degradation(o) => degradation = Some(o),
            ScenarioResult::Overload(o) => overload = Some(o),
            ScenarioResult::Easing(o) => easing = Some(o),
            ScenarioResult::Governor(o) => governor_outcome = Some(o),
            ScenarioResult::RetryStorm(o) => storm_outcome = Some(o),
            ScenarioResult::Thermal(o) => thermal_outcome = Some(o),
        }
    }
    Ok(ChaosReport {
        app,
        seed,
        anomaly: anomaly.unwrap_or_else(|| unreachable!("scenario 1 always runs")),
        degradation: degradation.unwrap_or_else(|| unreachable!("scenario 2 always runs")),
        overload: overload.unwrap_or_else(|| unreachable!("scenario 3 always runs")),
        easing: easing.unwrap_or_else(|| unreachable!("scenario 4 always runs")),
        governor: governor_outcome,
        retry_storm: storm_outcome,
        thermal: thermal_outcome,
    })
}

/// Scenario 1: anomaly injection and detection.
fn scenario_anomaly(app: AppId, seed: u64, n: usize) -> Result<AnomalyOutcome, RbvError> {
    let plan = FaultPlan {
        workload: Some(WorkloadFaults::storm()),
        ..FaultPlan::none(seed)
    };
    plan.validate()?;
    let mut factory = FaultyFactory::new(factory_for(app, seed, scale_of(app)), plan);
    let result = run_simulation(base_config(app, seed), &mut factory, n)?;
    let completed_ids: std::collections::BTreeSet<usize> =
        result.completed.iter().map(|r| r.id).collect();
    let mut injected_by_kind = [0usize; 3];
    let truth: Vec<usize> = factory
        .injected()
        .iter()
        .filter(|f| completed_ids.contains(&f.index))
        .map(|f| {
            let slot = WorkloadFaultKind::ALL
                .iter()
                .position(|&k| k == f.kind)
                .unwrap_or_else(|| unreachable!("every kind is in ALL"));
            injected_by_kind[slot] += 1;
            f.index
        })
        .collect();
    let flagged = detect_anomalies(&result.completed, &DetectorConfig::default());
    Ok(AnomalyOutcome {
        injected: truth.len(),
        injected_by_kind,
        flagged: flagged.len(),
        score: score(&flagged, &truth),
    })
}

/// Scenario 2: measurement storm over syscall-triggered sampling.
fn scenario_degradation(app: AppId, seed: u64, n: usize) -> Result<DegradationOutcome, RbvError> {
    let period = app.sampling_period_micros();
    let mut cfg = base_config(app, seed ^ 0xDE6).with_syscall_sampling(period / 2, period * 5);
    cfg.faults = measurement_storm(app);
    let mut factory = factory_for(app, seed ^ 0xDE6, scale_of(app));
    let r = run_simulation(cfg, factory.as_mut(), n / 2)?;
    Ok(DegradationOutcome {
        completed: r.completed.len(),
        samples_inkernel: r.stats.samples_inkernel,
        samples_interrupt: r.stats.samples_interrupt,
        samples_lost: r.stats.samples_lost,
        low_confidence: r.stats.samples_low_confidence,
        counter_overflows: r.stats.counter_overflows,
        starvation_windows: r.stats.starvation_windows,
    })
}

/// Scenario 3: open-loop overdrive against overload protection.
fn scenario_overload(app: AppId, seed: u64, n: usize) -> Result<OverloadOutcome, RbvError> {
    let mean_service = probe_mean_service(app, seed)?;
    let cores = SimConfig::paper_default().machine.topology.cores as f64;
    let mut cfg = base_config(app, seed ^ 0x0F7);
    cfg.arrivals = ArrivalProcess::OpenPoisson {
        mean_interarrival: Cycles::new((mean_service / (cores * 2.0)).max(1.0) as u64),
    };
    cfg.overload = Some(OverloadPolicy {
        max_runqueue: 4,
        deadline: Some(Cycles::new((mean_service * 8.0) as u64)),
        max_retries: 3,
        retry_backoff: Cycles::new((mean_service / 4.0).max(1.0) as u64),
    });
    let mut factory = factory_for(app, seed ^ 0x0F7, scale_of(app));
    let r = run_simulation(cfg, factory.as_mut(), n)?;
    Ok(OverloadOutcome {
        offered: r.completed.len() + r.failed.len(),
        completed: r.completed.len(),
        failed: r.failed.len(),
        admission_rejections: r.stats.admission_rejections,
        admission_retries: r.stats.admission_retries,
        load_shed: r.stats.load_shed,
        deadline_aborts: r.stats.deadline_aborts,
        p99_latency_micros: r.latency_sketch().p99().unwrap_or(0.0),
    })
}

/// Scenario 6: the metastable retry storm. Sustained 4x open-loop
/// overdrive with impatient retrying clients, served twice through the
/// `rbv-openloop` harness: once with admission control, CoDel shedding,
/// and the guard ladder armed, once with all three ablated (clients
/// still time out and retry). The defended run must preserve strictly
/// more goodput than the storm it prevents, and its ladder must end
/// back at a normal operating rung.
pub fn scenario_retry_storm(app: AppId, seed: u64) -> Result<RetryStormOutcome, RbvError> {
    // The storm needs a backlog deep enough to outlast client patience;
    // request counts below a few hundred drain before amplification
    // sets in, independent of `fast`.
    let offered = 400;
    let mut defended = rbv_openloop::ServeSpec::new(app, offered, seed ^ 0x5708);
    defended.overload = 4.0;
    defended.guard = true;
    let mut undefended = defended;
    undefended.admission = false;
    undefended.shed = false;
    undefended.guard = false;
    let pool = rbv_par::Pool::serial();
    let d = rbv_openloop::serve(&defended, &pool)?;
    let u = rbv_openloop::serve(&undefended, &pool)?;
    Ok(RetryStormOutcome {
        offered,
        defended_completed: d.completed,
        undefended_completed: u.completed,
        undefended_timeouts: u.client_timeouts,
        undefended_retries: u.client_retries,
        undefended_wasted_cycles: u.wasted_cycles,
        defended_wasted_cycles: d.wasted_cycles,
        defended_shed: d.shed_total(),
        brownout_rejections: d.failed_by_reason[4],
        health_transitions: d.health_transitions,
        final_rung: d.final_rung.label().to_string(),
        recovered: d.recovered(),
    })
}

/// Scenario 7: serving through a thermal-fault storm. A permanent
/// heatwave plus a cooling-failure victim core push every core toward
/// the firmware throttle cap while open-loop arrivals hold the machine
/// just below its *nominal* capacity. Served twice through
/// `rbv-openloop`: once with the guard's power-capping rungs armed
/// (proactive frequency cap at 0.7x keeps cores below the punitive
/// firmware latch) and once ablated, where the firmware latch clamps
/// cores to 0.4x with a release point the heatwave never lets them
/// reach — collapsing capacity below the offered load. The defense must
/// preserve strictly more goodput *and* a strictly better p99, and the
/// health ladder must end back at a normal operating rung.
pub fn scenario_thermal(app: AppId, seed: u64) -> Result<ThermalOutcome, RbvError> {
    // Load sits at ~55% of nominal capacity: comfortably served at the
    // defended 0.7x cap, unserviceable once the firmware latch drags
    // the ablated run to 0.4x. The count must outlast the thermal RC
    // transient (tau 5ms) by a wide margin.
    let offered = 1600;
    let mut defended = rbv_openloop::ServeSpec::new(app, offered, seed ^ 0x7e41);
    defended.overload = 0.55;
    defended.power = true;
    defended.thermal = true;
    defended.guard = true;
    let mut undefended = defended;
    undefended.guard = false;
    let pool = rbv_par::Pool::serial();
    let d = rbv_openloop::serve(&defended, &pool)?;
    let u = rbv_openloop::serve(&undefended, &pool)?;
    let missing = || RbvError::Config("powered serve reported no energy ledger".into());
    let d_energy = d.energy.as_ref().ok_or_else(missing)?;
    let u_energy = u.energy.as_ref().ok_or_else(missing)?;
    Ok(ThermalOutcome {
        offered,
        defended_completed: d.completed,
        undefended_completed: u.completed,
        defended_p99_latency_micros: d.latency_us.p99().unwrap_or(f64::NAN),
        undefended_p99_latency_micros: u.latency_us.p99().unwrap_or(f64::NAN),
        defended_throttle_engages: d_energy.throttle_engages,
        undefended_throttle_engages: u_energy.throttle_engages,
        power_rung_transitions: d_energy.power_rung_transitions,
        power_final_rung: d_energy.power_rung_label().to_string(),
        final_rung: d.final_rung.label().to_string(),
        recovered: d.recovered(),
        defended_joules: d_energy.total_joules(),
        undefended_joules: u_energy.total_joules(),
    })
}

/// Runs the stock-vs-gated-easing comparison under the measurement
/// storm; also used directly by the acceptance test.
pub fn easing_storm(app: AppId, seed: u64, n: usize) -> Result<EasingStormOutcome, RbvError> {
    // The per-application high-usage threshold from a clean stock
    // profiling run (§5.2's 80th percentile).
    let mut cfg = base_config(app, seed ^ 0xB0);
    cfg.concurrency = 12;
    let mut factory = factory_for(app, seed ^ 0xB0, scale_of(app));
    let profile = run_simulation(cfg, factory.as_mut(), (n / 2).max(20))?;
    let mut mpi = Vec::new();
    for r in &profile.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    // Exact percentile, not a sketch: the threshold is a *scheduler
    // input*, and moving it even within sketch resolution would change
    // which requests easing displaces.
    let threshold = percentile(&mpi, 0.8).unwrap_or(0.0);

    let storm_run = |easing: bool| -> Result<RunResult, RbvError> {
        let mut cfg = base_config(app, seed ^ 0x57);
        cfg.concurrency = 12;
        cfg.faults = measurement_storm(app);
        if easing {
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: threshold,
                alpha: 0.6,
            };
            cfg.easing_error_gate = Some(0.35);
        }
        let mut factory = factory_for(app, seed ^ 0x57, scale_of(app));
        run_simulation(cfg, factory.as_mut(), n)
    };
    let stock = storm_run(false)?;
    let eased = storm_run(true)?;
    Ok(EasingStormOutcome {
        stock_p99_cpi: stock.cpi_sketch().p99().unwrap_or(f64::NAN),
        eased_p99_cpi: eased.cpi_sketch().p99().unwrap_or(f64::NAN),
        gate_fallbacks: eased.stats.easing_gate_fallbacks,
    })
}

/// Runs the governed storm: contention easing under the measurement
/// storm with the adaptive sampling governor, measurement-health ladder
/// (superseding the one-shot confidence gate), and invariant monitor
/// enabled — compared against stock scheduling under the same storm.
/// Also used directly by the run ledger and the guard acceptance test.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn governor_storm(app: AppId, seed: u64, n: usize) -> Result<GovernorOutcome, RbvError> {
    // Same clean profiling run as the easing storm: the high-usage
    // threshold is a scheduler input shared by both contenders.
    let mut cfg = base_config(app, seed ^ 0xB0);
    cfg.concurrency = 12;
    let mut factory = factory_for(app, seed ^ 0xB0, scale_of(app));
    let profile = run_simulation(cfg, factory.as_mut(), (n / 2).max(20))?;
    let mut mpi = Vec::new();
    for r in &profile.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    let threshold = percentile(&mpi, 0.8).unwrap_or(0.0);

    let storm_run = |governed: bool| -> Result<RunResult, RbvError> {
        let mut cfg = base_config(app, seed ^ 0x57);
        cfg.concurrency = 12;
        cfg.faults = measurement_storm(app);
        if governed {
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: threshold,
                alpha: 0.6,
            };
            // The ladder replaces the one-shot confidence gate.
            cfg.easing_error_gate = None;
            cfg.governor = Some(GovernorPolicy::default());
        }
        let mut factory = factory_for(app, seed ^ 0x57, scale_of(app));
        run_simulation(cfg, factory.as_mut(), n)
    };
    let stock = storm_run(false)?;
    let governed = storm_run(true)?;
    let stats = &governed.stats;
    Ok(GovernorOutcome {
        completed: governed.completed.len(),
        windows: stats.governor_windows,
        backoffs: stats.governor_backoffs,
        recoveries: stats.governor_recoveries,
        budget_breaches: stats.governor_budget_breaches,
        max_breach_streak: stats.governor_max_breach_streak,
        final_scale: stats.governor_final_scale,
        overhead_frac: stats.governor_overhead_frac,
        slack_frac: stats.governor_slack_frac,
        budget_frac: GovernorPolicy::default().budget_frac,
        health_transitions: stats.health_transitions,
        final_rung: LadderRung::ALL[stats.health_final_rung as usize]
            .label()
            .to_string(),
        invariant_checks: stats.invariant_checks,
        invariant_violations: stats.invariant_violations.iter().sum(),
        stock_p99_cpi: stock.cpi_sketch().p99().unwrap_or(f64::NAN),
        governed_p99_cpi: governed.cpi_sketch().p99().unwrap_or(f64::NAN),
    })
}

/// Writes the human-readable chaos report.
pub fn summarize<W: Write>(report: &ChaosReport, out: &mut W) -> io::Result<()> {
    writeln!(out)?;
    writeln!(out, "==== chaos {} (seed {}) ====", report.app, report.seed)?;

    let a = &report.anomaly;
    writeln!(out)?;
    writeln!(out, "anomaly injection:")?;
    for (slot, kind) in WorkloadFaultKind::ALL.iter().enumerate() {
        writeln!(
            out,
            "  injected {:22} {}",
            kind.label(),
            a.injected_by_kind[slot]
        )?;
    }
    writeln!(out, "  injected total           {}", a.injected)?;
    writeln!(out, "  flagged                  {}", a.flagged)?;
    writeln!(out, "  precision                {:.3}", a.score.precision())?;
    writeln!(out, "  recall                   {:.3}", a.score.recall())?;

    let d = &report.degradation;
    writeln!(out)?;
    writeln!(out, "measurement-storm degradation:")?;
    writeln!(out, "  requests completed       {}", d.completed)?;
    writeln!(
        out,
        "  samples in-kernel/intr   {} / {}",
        d.samples_inkernel, d.samples_interrupt
    )?;
    writeln!(out, "  interrupts lost          {}", d.samples_lost)?;
    writeln!(out, "  low-confidence samples   {}", d.low_confidence)?;
    writeln!(out, "  counter overflows        {}", d.counter_overflows)?;
    writeln!(out, "  starvation windows       {}", d.starvation_windows)?;

    let o = &report.overload;
    writeln!(out)?;
    writeln!(out, "overload protection (2x overdrive):")?;
    writeln!(
        out,
        "  offered / completed / failed  {} / {} / {}",
        o.offered, o.completed, o.failed
    )?;
    writeln!(out, "  admission rejections     {}", o.admission_rejections)?;
    writeln!(out, "  admission retries        {}", o.admission_retries)?;
    writeln!(out, "  load shed                {}", o.load_shed)?;
    writeln!(out, "  deadline aborts          {}", o.deadline_aborts)?;
    writeln!(
        out,
        "  p99 latency (us)         {:.1}",
        o.p99_latency_micros
    )?;

    let e = &report.easing;
    writeln!(out)?;
    writeln!(out, "easing under fault storm:")?;
    writeln!(out, "  stock p99 CPI            {:.3}", e.stock_p99_cpi)?;
    writeln!(out, "  gated easing p99 CPI     {:.3}", e.eased_p99_cpi)?;
    writeln!(out, "  gate fallbacks           {}", e.gate_fallbacks)?;

    if let Some(g) = &report.governor {
        writeln!(out)?;
        writeln!(out, "sampling governor under storm:")?;
        writeln!(out, "  requests completed       {}", g.completed)?;
        writeln!(out, "  accounting windows       {}", g.windows)?;
        writeln!(
            out,
            "  backoffs / recoveries    {} / {}",
            g.backoffs, g.recoveries
        )?;
        writeln!(
            out,
            "  budget breaches          {} (max streak {})",
            g.budget_breaches, g.max_breach_streak
        )?;
        writeln!(
            out,
            "  overhead vs budget       {:.4} / {:.4} of busy cycles",
            g.overhead_frac, g.budget_frac
        )?;
        writeln!(out, "  final interval scale     {:.2}x", g.final_scale)?;
        writeln!(
            out,
            "  ladder transitions       {} (final rung {})",
            g.health_transitions, g.final_rung
        )?;
        writeln!(
            out,
            "  invariants checked       {} ({} violations)",
            g.invariant_checks, g.invariant_violations
        )?;
        writeln!(out, "  stock p99 CPI            {:.3}", g.stock_p99_cpi)?;
        writeln!(out, "  governed p99 CPI         {:.3}", g.governed_p99_cpi)?;
    }

    if let Some(s) = &report.retry_storm {
        writeln!(out)?;
        writeln!(out, "retry storm (4x overdrive, impatient clients):")?;
        writeln!(
            out,
            "  goodput defended/ablated {:.3} / {:.3}",
            s.defended_goodput(),
            s.undefended_goodput()
        )?;
        writeln!(
            out,
            "  storm timeouts/retries   {} / {}",
            s.undefended_timeouts, s.undefended_retries
        )?;
        writeln!(
            out,
            "  wasted cycles def/abl    {:.2e} / {:.2e}",
            s.defended_wasted_cycles, s.undefended_wasted_cycles
        )?;
        writeln!(
            out,
            "  defended shed (brownout) {} ({})",
            s.defended_shed, s.brownout_rejections
        )?;
        writeln!(
            out,
            "  ladder transitions       {} (final rung {})",
            s.health_transitions, s.final_rung
        )?;
        writeln!(
            out,
            "  recovered                {}",
            if s.recovered { "yes" } else { "NO" }
        )?;
    }

    if let Some(t) = &report.thermal {
        writeln!(out)?;
        writeln!(out, "thermal storm (heatwave + cooling failure):")?;
        writeln!(
            out,
            "  goodput defended/ablated {:.3} / {:.3}",
            t.defended_goodput(),
            t.undefended_goodput()
        )?;
        writeln!(
            out,
            "  p99 latency def/abl (us) {:.1} / {:.1}",
            t.defended_p99_latency_micros, t.undefended_p99_latency_micros
        )?;
        writeln!(
            out,
            "  throttle latches def/abl {} / {}",
            t.defended_throttle_engages, t.undefended_throttle_engages
        )?;
        writeln!(
            out,
            "  power rung transitions   {} (final rung {})",
            t.power_rung_transitions, t.power_final_rung
        )?;
        writeln!(
            out,
            "  joules defended/ablated  {:.2} / {:.2}",
            t.defended_joules, t.undefended_joules
        )?;
        writeln!(
            out,
            "  health ladder            final rung {}, recovered {}",
            t.final_rung,
            if t.recovered { "yes" } else { "NO" }
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic_and_accounts_for_every_request() {
        let a = run_matrix(AppId::WebServer, 7, true).expect("matrix runs");
        let b = run_matrix(AppId::WebServer, 7, true).expect("matrix runs");
        assert_eq!(a, b);
        assert_eq!(a.overload.offered, a.overload.completed + a.overload.failed);
        assert!(a.degradation.completed > 0);
        assert!(a.degradation.samples_lost > 0);
        assert!(a.degradation.low_confidence > 0);
        assert!(a.anomaly.injected > 0);
    }

    #[test]
    fn governor_storm_holds_do_no_harm_and_invariants() {
        let g = governor_storm(AppId::WebServer, 7, 60).expect("governed storm runs");
        assert_eq!(g.completed, 60);
        assert!(g.windows > 0, "governor closed no accounting window");
        assert!(
            g.max_breach_streak <= 1,
            "overhead exceeded budget beyond the one-window AIMD lag: streak {}",
            g.max_breach_streak
        );
        assert_eq!(g.invariant_violations, 0, "engine invariant violated");
        assert!(g.invariant_checks > 0);
        // The governed report serializes under the `governor` member.
        let json = g.to_json().to_string_compact();
        let parsed = Json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.get("windows").and_then(Json::as_f64),
            Some(g.windows as f64)
        );
    }

    #[test]
    fn retry_storm_defenses_preserve_goodput_and_recover() {
        // The acceptance criteria of the retry-storm scenario, at the
        // exact seed the CI smoke step uses: the armed defenses keep
        // goodput strictly above the no-defense ablation, the ablation
        // actually storms, and the guard ladder does not stay on an
        // overload rung after the storm drains.
        let s = scenario_retry_storm(AppId::WebServer, 42).expect("storm runs");
        assert!(
            s.undefended_timeouts > 100 && s.undefended_retries > 100,
            "ablated run did not storm: {} timeouts, {} retries",
            s.undefended_timeouts,
            s.undefended_retries
        );
        assert!(
            s.defended_goodput() > s.undefended_goodput(),
            "defenses lost goodput: {:.3} <= {:.3}",
            s.defended_goodput(),
            s.undefended_goodput()
        );
        assert!(
            s.defended_wasted_cycles < s.undefended_wasted_cycles,
            "defenses wasted more cycles than the storm"
        );
        assert!(s.recovered, "ladder stuck on {}", s.final_rung);
        // Deterministic: the scenario is a pure function of (app, seed).
        let again = scenario_retry_storm(AppId::WebServer, 42).expect("storm runs");
        assert_eq!(s, again);
    }

    #[test]
    fn thermal_storm_defense_beats_ablation_on_goodput_and_p99() {
        // The acceptance criteria of the thermal scenario, at the exact
        // seed the CI smoke step uses: the proactive power cap beats the
        // firmware-latch ablation on goodput AND p99 latency, the
        // ablation actually latches, and the health ladder ends back at
        // a normal operating rung.
        let t = scenario_thermal(AppId::WebServer, 42).expect("thermal storm runs");
        assert!(
            t.undefended_throttle_engages > 0,
            "ablated run never hit the firmware throttle"
        );
        assert!(
            t.defended_goodput() > t.undefended_goodput(),
            "power cap lost goodput: {:.3} <= {:.3}",
            t.defended_goodput(),
            t.undefended_goodput()
        );
        assert!(
            t.defended_p99_latency_micros < t.undefended_p99_latency_micros,
            "power cap lost p99: {:.1} >= {:.1}",
            t.defended_p99_latency_micros,
            t.undefended_p99_latency_micros
        );
        assert!(t.recovered, "health ladder stuck on {}", t.final_rung);
        assert!(
            t.power_rung_transitions > 0,
            "defended guard never engaged a power rung"
        );
        // Deterministic: the scenario is a pure function of (app, seed).
        let again = scenario_thermal(AppId::WebServer, 42).expect("thermal storm runs");
        assert_eq!(t, again);
    }

    #[test]
    fn report_renders() {
        let report = run_matrix(AppId::WebServer, 3, true).expect("matrix runs");
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("precision"));
        assert!(s.contains("recall"));
        assert!(s.contains("gated easing p99 CPI"));

        // The JSON view carries the same numbers and parses back.
        let text = report.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("valid json");
        assert_eq!(
            parsed.get("app").and_then(Json::as_str),
            Some(report.app.to_string().as_str())
        );
        assert_eq!(
            parsed
                .get("anomaly")
                .and_then(|a| a.get("recall"))
                .and_then(Json::as_f64),
            Some(report.anomaly.score.recall())
        );
        assert_eq!(
            parsed
                .get("easing")
                .and_then(|e| e.get("stock_p99_cpi"))
                .and_then(Json::as_f64),
            Some(report.easing.stock_p99_cpi)
        );
    }
}
