//! Campaign-level behavior-drift injection.
//!
//! Single-run fault plans ([`crate::FaultPlan`]) decide *which requests*
//! inside one run misbehave. A [`DriftScenario`] sits one level above: it
//! decides *which campaign cells* — `(application, epoch)` pairs of a
//! long-horizon campaign grid — run with a sustained workload shift, and
//! keeps that assignment as scorable ground truth. The warehouse drift
//! detector (rbv-warehouse) is evaluated precision/recall against exactly
//! this assignment, the same way the §4.3 anomaly detector is scored
//! against [`crate::FaultyFactory::injected`].
//!
//! Assignment is stateless and deterministic: whether cell `(app, epoch)`
//! drifts is a hash of `(scenario seed, app, epoch)`, so shards can be
//! planned in any order (or in parallel) and always agree. Epochs 0 and 1
//! never drift — they are the campaign's day and night reference epochs,
//! the baselines every later epoch is compared against.

use rbv_os::RbvError;

use crate::plan::{mix, splitmix64, unit, FaultPlan, WorkloadFaults};

/// First epoch eligible for drift (epochs 0/1 are the day/night
/// reference baselines and stay clean by construction).
pub const FIRST_DRIFT_EPOCH: u32 = 2;

/// A deterministic assignment of sustained workload drift to campaign
/// cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScenario {
    /// Seed of the cell assignment (independent of engine seeds).
    pub seed: u64,
    /// Per-cell probability that an eligible `(app, epoch)` cell drifts.
    pub cell_prob: f64,
    /// The workload shift applied to every request-emission slot of a
    /// drifted cell, at [`WorkloadFaults::anomaly_prob`] density.
    pub faults: WorkloadFaults,
}

impl DriftScenario {
    /// The standard drift scenario: roughly half of the eligible cells
    /// drift under the sustained [`WorkloadFaults::drift`] profile.
    pub fn standard(seed: u64) -> DriftScenario {
        DriftScenario {
            seed,
            cell_prob: 0.5,
            faults: WorkloadFaults::drift(),
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if !(self.cell_prob.is_finite() && (0.0..=1.0).contains(&self.cell_prob)) {
            return Err(RbvError::Config(format!(
                "cell_prob {} must be in [0, 1]",
                self.cell_prob
            )));
        }
        self.faults.validate()
    }

    /// Whether campaign cell `(app_index, epoch)` runs drifted. Stateless:
    /// any caller asking about any cell gets the same answer in any order.
    pub fn is_drifted(&self, app_index: usize, epoch: u32) -> bool {
        if epoch < FIRST_DRIFT_EPOCH || self.cell_prob <= 0.0 {
            return false;
        }
        let cell = (app_index as u64) << 32 | u64::from(epoch);
        unit(mix(splitmix64(self.seed ^ 0xD51F_7D51), cell)) < self.cell_prob
    }

    /// The fault plan for one shard of cell `(app_index, epoch)`: the
    /// drift workload channel when the cell is drifted, or the empty plan
    /// (bit-identical to an unwrapped run) when it is clean. `shard_seed`
    /// scopes the per-request assignment hash so distinct shards of the
    /// same cell drift different request slots.
    pub fn plan_for(&self, shard_seed: u64, app_index: usize, epoch: u32) -> FaultPlan {
        let mut plan = FaultPlan::none(splitmix64(shard_seed ^ self.seed));
        if self.is_drifted(app_index, epoch) {
            plan.workload = Some(self.faults);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_epochs_never_drift() {
        let s = DriftScenario::standard(42);
        for app in 0..8 {
            assert!(!s.is_drifted(app, 0));
            assert!(!s.is_drifted(app, 1));
        }
    }

    #[test]
    fn assignment_is_deterministic_and_seed_sensitive() {
        let a = DriftScenario::standard(1);
        let b = DriftScenario::standard(2);
        let cells_a: Vec<bool> = (0..5)
            .flat_map(|app| (2..20).map(move |e| (app, e)))
            .map(|(app, e)| a.is_drifted(app, e))
            .collect();
        let again: Vec<bool> = (0..5)
            .flat_map(|app| (2..20).map(move |e| (app, e)))
            .map(|(app, e)| a.is_drifted(app, e))
            .collect();
        let cells_b: Vec<bool> = (0..5)
            .flat_map(|app| (2..20).map(move |e| (app, e)))
            .map(|(app, e)| b.is_drifted(app, e))
            .collect();
        assert_eq!(cells_a, again);
        assert_ne!(cells_a, cells_b);
    }

    #[test]
    fn cell_rate_tracks_probability() {
        let s = DriftScenario::standard(7);
        let hits = (0..20)
            .flat_map(|app| (2..102).map(move |e| (app, e)))
            .filter(|&(app, e)| s.is_drifted(app, e))
            .count();
        // 50% of 2000 eligible cells ± generous sampling slack.
        assert!((800..1_200).contains(&hits), "{hits}");
    }

    #[test]
    fn clean_cells_get_the_empty_workload_channel() {
        let s = DriftScenario::standard(42);
        let clean = s.plan_for(9, 0, 0);
        assert!(clean.workload.is_none());
        assert!(clean.validate().is_ok());
        let drifted_cell = (0..5)
            .flat_map(|app| (2..20).map(move |e| (app, e)))
            .find(|&(app, e)| s.is_drifted(app, e))
            .expect("standard scenario drifts some cell");
        let plan = s.plan_for(9, drifted_cell.0, drifted_cell.1);
        assert_eq!(plan.workload, Some(WorkloadFaults::drift()));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn distinct_shard_seeds_scope_request_assignment() {
        let s = DriftScenario::standard(42);
        let cell = (0..5)
            .flat_map(|app| (2..20).map(move |e| (app, e)))
            .find(|&(app, e)| s.is_drifted(app, e))
            .expect("some drifted cell");
        let p1 = s.plan_for(1, cell.0, cell.1);
        let p2 = s.plan_for(2, cell.0, cell.1);
        let a: Vec<_> = (0..200).map(|i| p1.workload_fault_for(i)).collect();
        let b: Vec<_> = (0..200).map(|i| p2.workload_fault_for(i)).collect();
        assert_ne!(a, b, "shard seeds must decorrelate request slots");
    }

    #[test]
    fn bad_probability_is_rejected() {
        let mut s = DriftScenario::standard(0);
        s.cell_prob = 1.5;
        assert!(s.validate().is_err());
        assert!(DriftScenario::standard(0).validate().is_ok());
    }
}
