//! Workload-level fault injection: a [`RequestFactory`] wrapper that
//! mutates the requests a [`FaultPlan`] marks anomalous and keeps the
//! ground-truth log the detector is scored against.
//!
//! The wrapper counts emissions; the execution engine assigns request
//! ids in spawn order, which is exactly factory emission order, so the
//! recorded indices are directly comparable to
//! [`rbv_os::CompletedRequest::id`].

use rbv_mem::SegmentProfile;
use rbv_sim::Instructions;
use rbv_workloads::{AppId, Phase, Request, RequestFactory, SyscallEvent, SyscallName};

use crate::plan::{FaultPlan, WorkloadFaultKind, WorkloadFaults};

/// Ground truth: one fault the injector actually applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Emission index of the mutated request (== engine request id).
    pub index: usize,
    /// What was done to it.
    pub kind: WorkloadFaultKind,
}

/// A request factory that passes its inner factory's stream through the
/// plan's workload-fault channel.
pub struct FaultyFactory {
    inner: Box<dyn RequestFactory + Send>,
    plan: FaultPlan,
    emitted: usize,
    injected: Vec<InjectedFault>,
}

impl FaultyFactory {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Box<dyn RequestFactory + Send>, plan: FaultPlan) -> FaultyFactory {
        FaultyFactory {
            inner,
            plan,
            emitted: 0,
            injected: Vec::new(),
        }
    }

    /// Faults applied so far, in emission order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    /// Emission indices of the faults applied so far.
    pub fn injected_ids(&self) -> Vec<usize> {
        self.injected.iter().map(|f| f.index).collect()
    }

    /// Requests emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl RequestFactory for FaultyFactory {
    fn app(&self) -> AppId {
        self.inner.app()
    }

    fn next_request(&mut self) -> Request {
        let index = self.emitted;
        self.emitted += 1;
        let mut request = self.inner.next_request();
        if let Some(kind) = self.plan.workload_fault_for(index) {
            let Some(wf) = self.plan.workload else {
                unreachable!("workload_fault_for fired, so the channel is set");
            };
            apply_fault(&mut request, kind, &wf);
            self.injected.push(InjectedFault { index, kind });
        }
        request
    }
}

/// Mutates `request` in place according to `kind`. Every mutation
/// preserves the structural invariants `Request::validate` checks.
fn apply_fault(request: &mut Request, kind: WorkloadFaultKind, wf: &WorkloadFaults) {
    match kind {
        WorkloadFaultKind::InflatedWorkingSet => {
            // A leaked/cold data structure: the same instruction stream
            // drags a far larger working set through the cache (×m),
            // re-references it heavily (×4), and loses half its reuse
            // locality — cache behavior degrades while the instruction
            // total stays exactly in-class.
            for stage in &mut request.stages {
                for phase in &mut stage.phases {
                    phase.profile.working_set_bytes *= wf.working_set_multiplier;
                    phase.profile.l2_refs_per_ins *= 4.0;
                    phase.profile.reuse_locality *= 0.5;
                }
            }
        }
        WorkloadFaultKind::RunawaySegmentLoop => {
            // The final stage's segments re-execute `loop_factor` times
            // (the Figure 8 runaway-loop shape): every phase stretches
            // proportionally, so pre-drawn syscall offsets stay valid
            // and the instruction total balloons.
            let Some(stage) = request.stages.last_mut() else {
                unreachable!("requests have stages");
            };
            for phase in &mut stage.phases {
                phase.end_ins =
                    Instructions::new(phase.end_ins.get().saturating_mul(wf.loop_factor.into()));
            }
        }
        WorkloadFaultKind::StuckSyscall => {
            let Some(stage) = request.stages.last_mut() else {
                unreachable!("requests have stages");
            };
            let total = stage.total_instructions();
            let spin = ((total.get() as f64 * wf.stuck_ins_fraction) as u64).max(1);
            // The wedged call itself, then the in-kernel spin burning
            // cycles with no data access at all.
            stage.syscalls.push(SyscallEvent {
                at_ins: total,
                name: SyscallName::Futex,
            });
            stage.phases.push(Phase {
                profile: SegmentProfile {
                    base_cpi: wf.stuck_cpi,
                    l2_refs_per_ins: 0.0,
                    working_set_bytes: 0.0,
                    reuse_locality: 0.0,
                },
                end_ins: Instructions::new(total.get() + spin),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use rbv_workloads::{factory_for, WebServer};

    use super::*;
    use crate::plan::WorkloadFaults;

    fn storm_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(seed)
        }
    }

    #[test]
    fn clean_plan_is_a_passthrough() {
        let mut plain = WebServer::new(5, 1.0);
        let mut wrapped = FaultyFactory::new(Box::new(WebServer::new(5, 1.0)), FaultPlan::none(9));
        for _ in 0..20 {
            assert_eq!(plain.next_request(), wrapped.next_request());
        }
        assert!(wrapped.injected().is_empty());
        assert_eq!(wrapped.emitted(), 20);
    }

    #[test]
    fn injected_requests_stay_valid_and_match_the_plan() {
        let plan = storm_plan(42);
        for app in AppId::SERVER_APPS {
            let mut f = FaultyFactory::new(factory_for(app, 1, 0.05), plan.clone());
            for i in 0..60 {
                let r = f.next_request();
                assert!(
                    r.validate().is_ok(),
                    "{app} request {i}: {:?}",
                    r.validate()
                );
            }
            let expected: Vec<InjectedFault> = (0..60)
                .filter_map(|i| {
                    plan.workload_fault_for(i)
                        .map(|kind| InjectedFault { index: i, kind })
                })
                .collect();
            assert_eq!(f.injected(), expected.as_slice(), "{app}");
            assert!(!expected.is_empty(), "{app}: storm plan injected nothing");
        }
    }

    #[test]
    fn mutations_change_what_they_claim() {
        let wf = WorkloadFaults::storm();
        let mut base = WebServer::new(3, 1.0);
        let clean = base.next_request();

        let mut inflated = clean.clone();
        apply_fault(&mut inflated, WorkloadFaultKind::InflatedWorkingSet, &wf);
        assert_eq!(inflated.total_instructions(), clean.total_instructions());
        let (c, i) = (
            clean.stages[0].phases[0].profile,
            inflated.stages[0].phases[0].profile,
        );
        assert!(i.working_set_bytes > c.working_set_bytes * 15.0);
        assert!(i.l2_refs_per_ins > c.l2_refs_per_ins * 3.9);
        assert!(i.reuse_locality < c.reuse_locality);

        let mut runaway = clean.clone();
        apply_fault(&mut runaway, WorkloadFaultKind::RunawaySegmentLoop, &wf);
        assert_eq!(
            runaway.total_instructions().get(),
            clean.total_instructions().get() * u64::from(wf.loop_factor)
        );
        assert!(runaway.validate().is_ok());

        let mut stuck = clean.clone();
        apply_fault(&mut stuck, WorkloadFaultKind::StuckSyscall, &wf);
        assert!(stuck.total_instructions() > clean.total_instructions());
        assert_eq!(stuck.syscall_names().len(), clean.syscall_names().len() + 1);
        assert!(stuck.validate().is_ok());
        let spin = stuck.stages.last().unwrap().phases.last().unwrap();
        assert_eq!(spin.profile.base_cpi, wf.stuck_cpi);
    }

    #[test]
    fn same_plan_reproduces_the_same_stream() {
        let make = || {
            let mut f = FaultyFactory::new(factory_for(AppId::Tpcc, 7, 0.05), storm_plan(13));
            let reqs: Vec<Request> = (0..40).map(|_| f.next_request()).collect();
            (reqs, f.injected().to_vec())
        };
        let (a, fa) = make();
        let (b, fb) = make();
        assert_eq!(a, b);
        assert_eq!(fa, fb);
    }
}
