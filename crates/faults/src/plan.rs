//! Seedable deterministic fault plans.
//!
//! A [`FaultPlan`] fixes, before a run starts, everything that will go
//! wrong during it: which requests of the workload stream arrive
//! anomalous (and how), which measurement-level faults the sampling
//! apparatus suffers, and which overload-protection policy the kernel
//! runs with. The plan is pure data — the same seed always produces the
//! same fault schedule, independent of execution order, so fault runs
//! are exactly as reproducible as clean ones.
//!
//! Workload-fault assignment is *stateless*: whether request `i` is
//! anomalous is a hash of `(seed, i)`, not a draw from a shared stream.
//! Consumers can therefore ask about any request index in any order
//! (the injector asks in emission order; tests and the scorer ask again
//! afterwards) and always get the same answer.

use rbv_os::{MeasurementFaults, OverloadPolicy, RbvError, SimConfig};

/// The ways an injected request deviates from its class (§4.3's
/// "anomalous requests" made concrete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFaultKind {
    /// The request touches a working set many times its class's normal
    /// size (a leaked cache, an unexpectedly cold data structure): same
    /// instruction stream, much worse cache behavior.
    InflatedWorkingSet,
    /// A segment loops far past its normal trip count (the paper's
    /// Figure 8 WeBWorK anomaly): the instruction total balloons.
    RunawaySegmentLoop,
    /// A system call wedges and the request spins in kernel context at
    /// high CPI before continuing (stuck/slow syscall).
    StuckSyscall,
}

impl WorkloadFaultKind {
    /// All kinds, in the order the plan's hash selects them.
    pub const ALL: [WorkloadFaultKind; 3] = [
        WorkloadFaultKind::InflatedWorkingSet,
        WorkloadFaultKind::RunawaySegmentLoop,
        WorkloadFaultKind::StuckSyscall,
    ];

    /// Stable lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadFaultKind::InflatedWorkingSet => "inflated-working-set",
            WorkloadFaultKind::RunawaySegmentLoop => "runaway-segment-loop",
            WorkloadFaultKind::StuckSyscall => "stuck-syscall",
        }
    }
}

/// Parameters of the workload-level fault channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadFaults {
    /// Per-request probability of arriving anomalous.
    pub anomaly_prob: f64,
    /// Working-set multiplier for [`WorkloadFaultKind::InflatedWorkingSet`]
    /// (the L2 reference rate also quadruples and reuse locality halves:
    /// thrashing code re-touches what it leaked).
    pub working_set_multiplier: f64,
    /// Trip-count multiplier applied to the final stage's segments for
    /// [`WorkloadFaultKind::RunawaySegmentLoop`].
    pub loop_factor: u32,
    /// CPI of the in-kernel spin for [`WorkloadFaultKind::StuckSyscall`].
    pub stuck_cpi: f64,
    /// Length of the stuck-syscall spin as a fraction of the request's
    /// normal instruction total.
    pub stuck_ins_fraction: f64,
}

impl WorkloadFaults {
    /// The standard anomaly storm: ~12% of requests anomalous, each
    /// deviation strong enough that a sound detector should find it.
    pub fn storm() -> WorkloadFaults {
        WorkloadFaults {
            anomaly_prob: 0.12,
            working_set_multiplier: 16.0,
            loop_factor: 8,
            stuck_cpi: 12.0,
            stuck_ins_fraction: 3.0,
        }
    }

    /// The sustained behavior-drift profile: not a rare acute anomaly but
    /// a pervasive mild shift — most requests in a drifted campaign epoch
    /// carry moderately inflated working sets, extra loop trips, or slow
    /// syscalls. Individually each request looks ordinary; collectively
    /// the epoch's CPI *distribution* moves (the prevalence is kept above
    /// one half precisely so the median shifts with it), which is exactly
    /// the signal the warehouse drift detector watches for (and the
    /// single-run §4.3 anomaly detector does not).
    pub fn drift() -> WorkloadFaults {
        WorkloadFaults {
            anomaly_prob: 0.65,
            working_set_multiplier: 8.0,
            loop_factor: 3,
            stuck_cpi: 8.0,
            stuck_ins_fraction: 1.5,
        }
    }

    /// Checks field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), RbvError> {
        if !(self.anomaly_prob.is_finite() && (0.0..=1.0).contains(&self.anomaly_prob)) {
            return Err(RbvError::Config(format!(
                "anomaly_prob {} must be in [0, 1]",
                self.anomaly_prob
            )));
        }
        if !(self.working_set_multiplier.is_finite() && self.working_set_multiplier >= 1.0) {
            return Err(RbvError::Config(format!(
                "working_set_multiplier {} must be at least 1",
                self.working_set_multiplier
            )));
        }
        if self.loop_factor < 2 {
            return Err(RbvError::Config(format!(
                "loop_factor {} must be at least 2 to change behavior",
                self.loop_factor
            )));
        }
        if !(self.stuck_cpi.is_finite() && self.stuck_cpi > 0.0) {
            return Err(RbvError::Config(format!(
                "stuck_cpi {} must be positive",
                self.stuck_cpi
            )));
        }
        if !(self.stuck_ins_fraction.is_finite() && self.stuck_ins_fraction > 0.0) {
            return Err(RbvError::Config(format!(
                "stuck_ins_fraction {} must be positive",
                self.stuck_ins_fraction
            )));
        }
        Ok(())
    }
}

/// A complete, deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault schedule (independent of the engine seed).
    pub seed: u64,
    /// Workload-level faults; `None` leaves the request stream untouched.
    pub workload: Option<WorkloadFaults>,
    /// Measurement-level faults (applied to [`SimConfig::faults`]).
    pub measurement: MeasurementFaults,
    /// Overload protection (applied to [`SimConfig::overload`]).
    pub overload: Option<OverloadPolicy>,
    /// Thermal faults — heatwave, cooling failure, hot loop (applied to
    /// [`SimConfig::thermal_faults`]; requires [`SimConfig::power`]).
    pub thermal: Option<rbv_os::ThermalFaults>,
}

impl FaultPlan {
    /// The empty plan: nothing injected, no overload policy. Runs under
    /// this plan are bit-identical to runs without any plan at all.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            workload: None,
            measurement: MeasurementFaults::none(),
            overload: None,
            thermal: None,
        }
    }

    /// Checks every configured channel.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] from the first invalid channel.
    pub fn validate(&self) -> Result<(), RbvError> {
        if let Some(wf) = &self.workload {
            wf.validate()?;
        }
        self.measurement.validate()?;
        if let Some(overload) = &self.overload {
            overload.validate()?;
        }
        if let Some(thermal) = &self.thermal {
            thermal.validate().map_err(RbvError::Config)?;
        }
        Ok(())
    }

    /// Writes the measurement, overload, and thermal channels into `cfg`.
    /// The workload channel is applied separately by wrapping the request
    /// factory in a [`crate::FaultyFactory`].
    pub fn apply_to(&self, cfg: &mut SimConfig) {
        cfg.faults = self.measurement;
        cfg.overload = self.overload;
        cfg.thermal_faults = self.thermal;
    }

    /// The workload fault assigned to the `index`-th emitted request, if
    /// any. Stateless: any caller asking about any index gets the same
    /// answer in any order.
    pub fn workload_fault_for(&self, index: usize) -> Option<WorkloadFaultKind> {
        let wf = self.workload.as_ref()?;
        if wf.anomaly_prob <= 0.0 {
            return None;
        }
        let h = mix(self.seed, index as u64);
        if unit(h) >= wf.anomaly_prob {
            return None;
        }
        let kind = WorkloadFaultKind::ALL[(splitmix64(h) % 3) as usize];
        Some(kind)
    }
}

/// SplitMix64: the standard 64-bit finalizing mixer (Steele et al.),
/// strong enough to decorrelate consecutive indices and seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of one `(seed, index)` cell of the schedule.
pub(crate) fn mix(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0x5151_5151)))
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_assigns_faults() {
        let plan = FaultPlan::none(7);
        assert!(plan.validate().is_ok());
        assert!((0..10_000).all(|i| plan.workload_fault_for(i).is_none()));
    }

    #[test]
    fn assignment_is_stateless_and_deterministic() {
        let plan = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(42)
        };
        let forward: Vec<_> = (0..500).map(|i| plan.workload_fault_for(i)).collect();
        let mut backward: Vec<_> = (0..500).rev().map(|i| plan.workload_fault_for(i)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn rate_tracks_anomaly_prob() {
        let plan = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(3)
        };
        let hits = (0..10_000)
            .filter(|&i| plan.workload_fault_for(i).is_some())
            .count();
        // 12% ± generous sampling slack.
        assert!((800..1_600).contains(&hits), "{hits}");
    }

    #[test]
    fn all_kinds_occur() {
        let plan = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(11)
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..2_000 {
            if let Some(k) = plan.workload_fault_for(i) {
                seen.insert(k);
            }
        }
        assert_eq!(seen.len(), WorkloadFaultKind::ALL.len());
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        let a = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(1)
        };
        let b = FaultPlan {
            workload: Some(WorkloadFaults::storm()),
            ..FaultPlan::none(2)
        };
        let sa: Vec<_> = (0..200).map(|i| a.workload_fault_for(i)).collect();
        let sb: Vec<_> = (0..200).map(|i| b.workload_fault_for(i)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn bad_channels_are_rejected() {
        let mut wf = WorkloadFaults::storm();
        wf.anomaly_prob = 1.5;
        assert!(wf.validate().is_err());

        let mut wf = WorkloadFaults::storm();
        wf.loop_factor = 1;
        assert!(wf.validate().is_err());

        let mut wf = WorkloadFaults::storm();
        wf.working_set_multiplier = 0.5;
        assert!(wf.validate().is_err());

        let mut plan = FaultPlan::none(0);
        plan.measurement.lost_interrupt_prob = 2.0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn apply_to_writes_both_engine_channels() {
        let mut plan = FaultPlan::none(0);
        plan.measurement.lost_interrupt_prob = 0.1;
        plan.overload = Some(OverloadPolicy::bounded_queues());
        let mut cfg = SimConfig::paper_default();
        plan.apply_to(&mut cfg);
        assert_eq!(cfg.faults, plan.measurement);
        assert_eq!(cfg.overload, plan.overload);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            WorkloadFaultKind::InflatedWorkingSet.label(),
            "inflated-working-set"
        );
        assert_eq!(
            WorkloadFaultKind::RunawaySegmentLoop.label(),
            "runaway-segment-loop"
        );
        assert_eq!(WorkloadFaultKind::StuckSyscall.label(), "stuck-syscall");
    }
}
