//! Property tests of the fault layer's determinism contract, plus the
//! easing-under-fault-storm acceptance test.
//!
//! The contract: a run is a pure function of `(config seed, factory
//! seed, FaultPlan)`. Identical inputs must reproduce bit-identical
//! `RunStats` and the identical injected-fault sequence; distinct plan
//! seeds must produce distinct fault schedules.

use proptest::prelude::*;

use rbv_faults::{FaultPlan, FaultyFactory, WorkloadFaults};
use rbv_os::{run_simulation, MeasurementFaults, OverloadPolicy, RunResult, SimConfig};
use rbv_sim::Cycles;
use rbv_workloads::{factory_for, AppId};

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        workload: Some(WorkloadFaults::storm()),
        measurement: MeasurementFaults {
            lost_interrupt_prob: 0.2,
            counter_overflow_prob: 0.05,
            counter_skid_sigma: 0.05,
            syscall_starvation_prob: 0.0,
            syscall_starvation_window: Cycles::ZERO,
        },
        overload: Some(OverloadPolicy {
            max_runqueue: 6,
            deadline: None,
            max_retries: 2,
            retry_backoff: Cycles::from_micros(50),
        }),
        thermal: None,
        seed,
    }
}

fn faulty_run(app: AppId, engine_seed: u64, plan: &FaultPlan, n: usize) -> (RunResult, Vec<usize>) {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = engine_seed;
    plan.apply_to(&mut cfg);
    let mut factory = FaultyFactory::new(factory_for(app, engine_seed, 1.0), plan.clone());
    let result = run_simulation(cfg, &mut factory, n).expect("valid chaos config");
    (result, factory.injected_ids())
}

proptest! {
    // Each case runs two full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn identical_seed_and_plan_are_bit_identical(
        app in prop::sample::select(vec![AppId::WebServer, AppId::Tpcc]),
        engine_seed in 0u64..500,
        plan_seed in 0u64..500,
    ) {
        let plan = storm_plan(plan_seed);
        let (a, fa) = faulty_run(app, engine_seed, &plan, 25);
        let (b, fb) = faulty_run(app, engine_seed, &plan, 25);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.failed, b.failed);
        prop_assert_eq!(fa, fb);
    }

    #[test]
    fn distinct_plan_seeds_give_distinct_schedules(
        seed_a in 0u64..10_000,
        offset in 1u64..10_000,
    ) {
        let a = storm_plan(seed_a);
        let b = storm_plan(seed_a + offset);
        let sa: Vec<_> = (0..400).map(|i| a.workload_fault_for(i)).collect();
        let sb: Vec<_> = (0..400).map(|i| b.workload_fault_for(i)).collect();
        // 400 cells at 12% each: the chance two independent schedules
        // coincide everywhere is (0.88^2 + 0.12^2/3)^400 ~ 1e-40.
        prop_assert_ne!(sa, sb);
    }
}

#[test]
fn empty_plan_matches_unwrapped_run_exactly() {
    let app = AppId::Tpcc;
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = 11;
    let mut plain = factory_for(app, 11, 1.0);
    let baseline = run_simulation(cfg.clone(), plain.as_mut(), 20).expect("valid");

    let plan = FaultPlan::none(999); // plan seed must not matter when empty
    let mut cfg2 = cfg;
    plan.apply_to(&mut cfg2);
    let mut wrapped = FaultyFactory::new(factory_for(app, 11, 1.0), plan);
    let faulted = run_simulation(cfg2, &mut wrapped, 20).expect("valid");

    assert_eq!(baseline, faulted);
    assert!(wrapped.injected().is_empty());
}

#[test]
fn easing_fault_storm_is_no_worse_than_stock_at_p99_cpi() {
    // The tentpole acceptance criterion: under a measurement-fault storm
    // the gated easing scheduler must not lose to stock at p99 request
    // CPI (the confidence gate falls back to stock when vaEWMA error is
    // high, so it can only trade like-for-like or better).
    let outcome = rbv_faults::chaos::easing_storm(AppId::WebServer, 42, 80).expect("storm runs");
    assert!(
        outcome.stock_p99_cpi.is_finite() && outcome.eased_p99_cpi.is_finite(),
        "{outcome:?}"
    );
    assert!(
        outcome.eased_p99_cpi <= outcome.stock_p99_cpi * 1.05,
        "gated easing p99 CPI {:.3} worse than stock {:.3}",
        outcome.eased_p99_cpi,
        outcome.stock_p99_cpi
    );
}

/// The pooled chaos matrix collects its scenarios in submission order, so
/// the report is identical (PartialEq over every outcome, including exact
/// floats) at any thread count — this is what lets `repro chaos --threads N`
/// reproduce the serial report byte for byte.
#[test]
fn chaos_matrix_is_identical_across_thread_counts() {
    let app = AppId::WebServer;
    let serial = rbv_faults::run_matrix(app, 42, true).expect("serial matrix");
    for threads in [2, 5] {
        let pooled = rbv_faults::run_matrix_pooled(
            app,
            42,
            true,
            false,
            false,
            false,
            &rbv_par::Pool::new(threads),
        )
        .expect("pooled matrix");
        assert_eq!(serial, pooled, "chaos report diverged at {threads} threads");
    }
}
