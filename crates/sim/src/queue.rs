//! A stable discrete-event queue keyed by simulated time.
//!
//! The simulated kernel in `rbv-os` is driven by events (quantum expiry,
//! sampling interrupts, request arrivals, IPC deliveries). [`EventQueue`]
//! orders them by [`Cycles`] timestamp with FIFO tie-breaking, so two events
//! scheduled for the same cycle fire in the order they were scheduled —
//! essential for deterministic replays.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// An entry in the heap: ordered by time, then by insertion sequence.
#[derive(Debug)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and lowest
        // sequence number among ties) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with stable ordering.
///
/// # Example
///
/// ```
/// use rbv_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(20), "later");
/// q.schedule(Cycles::new(10), "first");
/// q.schedule(Cycles::new(10), "second"); // same time: FIFO
///
/// assert_eq!(q.pop(), Some((Cycles::new(10), "first")));
/// assert_eq!(q.pop(), Some((Cycles::new(10), "second")));
/// assert_eq!(q.pop(), Some((Cycles::new(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycles,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the simulation
    /// "now"). Zero before any pop.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now`: the event fires
    /// immediately on the next pop. This mirrors how a real kernel treats an
    /// already-expired timer.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Cycles, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let times = [50u64, 10, 30, 20, 40];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Cycles::new(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t.get());
        }
        assert_eq!(popped, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycles::new(100), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(5), ());
        q.schedule(Cycles::new(15), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles::new(5));
        q.pop();
        assert_eq!(q.now(), Cycles::new(15));
    }

    #[test]
    fn past_schedule_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), "a");
        q.pop();
        q.schedule(Cycles::new(10), "late");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Cycles::new(100));
        assert_eq!(e, "late");
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(100), 0);
        q.pop();
        q.schedule_after(Cycles::new(50), 1);
        assert_eq!(q.peek_time(), Some(Cycles::new(150)));
    }

    #[test]
    fn len_is_empty_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles::new(1), ());
        q.schedule(Cycles::new(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(30), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Cycles::new(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
