//! Deterministic random number generation for reproducible experiments.
//!
//! Every stochastic component of the workspace (workload generators, arrival
//! processes, contention jitter) draws from a [`SimRng`], a xoshiro256\*\*
//! generator seeded through SplitMix64. The implementation is self-contained
//! (no dependency on `rand`'s unspecified `StdRng` algorithm), so a given
//! seed produces the same experiment on every platform and toolchain — a
//! property the integration tests and EXPERIMENTS.md rely on.
//!
//! `SimRng` implements [`rand::RngCore`], so all of `rand` / `rand_distr`
//! (Zipf, Pareto, LogNormal, ...) works on top of it.

use rand::{Error, RngCore};

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state.
///
/// This is the seeding procedure recommended by the xoshiro authors: it
/// guarantees the expanded state is not all-zero and decorrelates nearby
/// seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* random number generator.
///
/// # Example
///
/// ```
/// use rbv_sim::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator from this one's stream.
    ///
    /// Used to give each request / core / component its own stream so that
    /// adding draws in one component does not perturb another (a common
    /// source of accidental nondeterminism in simulators).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Derives a child generator from this seed and a stream label, without
    /// consuming randomness. Two distinct labels give decorrelated streams.
    pub fn fork_labeled(&self, label: u64) -> SimRng {
        // Mix the current state with the label through SplitMix64.
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_xoshiro_reference_values() {
        // Reference: xoshiro256** seeded with SplitMix64 from seed 0, as in
        // the authors' C code. Pins the algorithm so refactors can't silently
        // change every experiment in the repo.
        let mut sm = 0u64;
        let s0 = splitmix64(&mut sm);
        assert_eq!(s0, 0xE220_A839_7B1D_CDAF); // published SplitMix64(0) output
        let mut rng = SimRng::seed_from(0);
        // First output of xoshiro256** is rotl(s[1] * 5, 7) * 9 on the
        // expanded state; recompute independently.
        let mut sm2 = 0u64;
        let state: Vec<u64> = (0..4).map(|_| splitmix64(&mut sm2)).collect();
        let expect = state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        assert_eq!(rng.next_u64(), expect);
    }

    #[test]
    fn fork_decorrelates() {
        let mut root = SimRng::seed_from(9);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_labeled_is_pure() {
        let root = SimRng::seed_from(9);
        let mut a = root.fork_labeled(5);
        let mut b = root.fork_labeled(5);
        let mut c = root.fork_labeled(6);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = SimRng::seed_from(4);
        for len in [0usize, 1, 3, 7, 8, 9, 16, 17] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // All-zero output of length >= 8 is astronomically unlikely.
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn works_with_rand_distr() {
        let mut rng = SimRng::seed_from(11);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n: u32 = rng.gen_range(1..10);
        assert!((1..10).contains(&n));
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 10k uniform draws should be near 0.5.
        let mut rng = SimRng::seed_from(99);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
