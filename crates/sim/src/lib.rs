//! Discrete-event simulation substrate for the Request Behavior Variations
//! reproduction.
//!
//! This crate provides the foundations every other crate in the workspace
//! builds on:
//!
//! * [`time`] — strongly-typed simulated time ([`Cycles`], [`Nanos`]) and
//!   instruction counts ([`Instructions`]), with conversions pinned to the
//!   paper's 3.0 GHz Xeon 5160 clock.
//! * [`rng`] — a small, fully deterministic random number generator
//!   ([`SimRng`], xoshiro256\*\* seeded via SplitMix64) that implements
//!   [`rand::RngCore`] so the whole `rand`/`rand_distr` ecosystem can be
//!   used while keeping experiments bit-reproducible across platforms.
//! * [`queue`] — a generic, stable discrete-event queue ([`EventQueue`])
//!   ordered by simulated time with FIFO tie-breaking.
//!
//! # Example
//!
//! ```
//! use rbv_sim::{Cycles, EventQueue, SimRng};
//! use rand::Rng;
//!
//! let mut rng = SimRng::seed_from(42);
//! let mut q = EventQueue::new();
//! for i in 0..3 {
//!     let at = Cycles::new(rng.gen_range(0..1_000));
//!     q.schedule(at, i);
//! }
//! let mut order = Vec::new();
//! while let Some((at, ev)) = q.pop() {
//!     order.push((at, ev));
//! }
//! assert!(order.windows(2).all(|w| w[0].0 <= w[1].0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{Cycles, Instructions, Nanos, CLOCK_GHZ};
