//! Strongly-typed simulated time and instruction counts.
//!
//! The experimental platform of the paper is a 3.0 GHz Intel Xeon 5160
//! ("Woodcrest"). All conversions between wall-clock time and CPU cycles in
//! this workspace go through the [`CLOCK_GHZ`] constant so that, e.g., the
//! "once per 10 microseconds" sampling period of the web server experiments
//! translates to exactly 30,000 cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Simulated processor clock frequency in GHz (cycles per nanosecond).
///
/// Matches the paper's 3.0 GHz Xeon 5160.
pub const CLOCK_GHZ: u64 = 3;

macro_rules! counter_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0);

            /// Wraps a raw count.
            ///
            /// ```
            /// # use rbv_sim::time::*;
            #[doc = concat!("let c = ", stringify!($name), "::new(10);")]
            /// assert_eq!(c.get(), 10);
            /// ```
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw count.
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Returns the raw count as `f64`, for statistics.
            pub const fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Saturating subtraction; clamps at zero instead of wrapping.
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// Checked subtraction.
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some($name(v)),
                    None => None,
                }
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// True when the count is zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            /// # Panics
            ///
            /// Panics on underflow in debug builds, like integer subtraction.
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<u64> for $name {
            type Output = $name;
            fn mul(self, rhs: u64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<u64> for $name {
            type Output = $name;
            /// # Panics
            ///
            /// Panics when `rhs` is zero.
            fn div(self, rhs: u64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> $name {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

counter_newtype! {
    /// A count of CPU cycles on the simulated 3.0 GHz processor.
    ///
    /// `Cycles` is the native unit of simulated time: every event in the
    /// discrete-event kernel is stamped in cycles. Use [`Cycles::from_nanos`]
    /// / [`Cycles::to_nanos`] to convert to wall-clock units.
    Cycles
}

counter_newtype! {
    /// A count of retired instructions.
    Instructions
}

counter_newtype! {
    /// A count of wall-clock nanoseconds of simulated time.
    Nanos
}

impl Cycles {
    /// Converts wall-clock nanoseconds to cycles at [`CLOCK_GHZ`].
    ///
    /// ```
    /// # use rbv_sim::time::*;
    /// assert_eq!(Cycles::from_nanos(Nanos::new(10)), Cycles::new(30));
    /// ```
    pub const fn from_nanos(nanos: Nanos) -> Cycles {
        Cycles(nanos.get() * CLOCK_GHZ)
    }

    /// Converts microseconds of wall-clock time to cycles.
    ///
    /// ```
    /// # use rbv_sim::time::*;
    /// // the web server sampling period of the paper: 10 us
    /// assert_eq!(Cycles::from_micros(10), Cycles::new(30_000));
    /// ```
    pub const fn from_micros(micros: u64) -> Cycles {
        Cycles(micros * 1_000 * CLOCK_GHZ)
    }

    /// Converts milliseconds of wall-clock time to cycles.
    pub const fn from_millis(millis: u64) -> Cycles {
        Cycles(millis * 1_000_000 * CLOCK_GHZ)
    }

    /// Converts back to wall-clock nanoseconds (rounding down).
    pub const fn to_nanos(self) -> Nanos {
        Nanos::new(self.0 / CLOCK_GHZ)
    }

    /// Cycles expressed as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / (CLOCK_GHZ as f64 * 1_000.0)
    }

    /// Cycles expressed as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / (CLOCK_GHZ as f64 * 1e9)
    }
}

impl Nanos {
    /// Builds from microseconds.
    pub const fn from_micros(micros: u64) -> Nanos {
        Nanos(micros * 1_000)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(millis: u64) -> Nanos {
        Nanos(millis * 1_000_000)
    }

    /// Nanoseconds as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Instructions {
    /// Builds from a count of millions of instructions, the unit used by the
    /// paper's intra-request figures ("progress in millions of instructions").
    pub const fn from_millions(m: u64) -> Instructions {
        Instructions(m * 1_000_000)
    }

    /// Instructions as fractional millions.
    pub fn as_millions_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

/// Computes cycles-per-instruction from raw counter deltas.
///
/// Returns `None` when no instructions retired (CPI undefined), which the
/// sampling machinery treats as a skipped sample.
///
/// ```
/// # use rbv_sim::time::*;
/// assert_eq!(cpi(Cycles::new(30), Instructions::new(10)), Some(3.0));
/// assert_eq!(cpi(Cycles::new(30), Instructions::ZERO), None);
/// ```
pub fn cpi(cycles: Cycles, instructions: Instructions) -> Option<f64> {
    if instructions.is_zero() {
        None
    } else {
        Some(cycles.as_f64() / instructions.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_cycles_roundtrip() {
        for n in [0u64, 1, 7, 1_000, 123_456_789] {
            let nanos = Nanos::new(n);
            assert_eq!(Cycles::from_nanos(nanos).to_nanos(), nanos);
        }
    }

    #[test]
    fn micros_matches_paper_sampling_periods() {
        // 10 us, 100 us, 1 ms sampling periods from Section 3.1.
        assert_eq!(Cycles::from_micros(10).get(), 30_000);
        assert_eq!(Cycles::from_micros(100).get(), 300_000);
        assert_eq!(Cycles::from_millis(1).get(), 3_000_000);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 3, Cycles::new(33));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.checked_sub(b), Some(Cycles::new(60)));
        assert_eq!(b.checked_sub(a), None);
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(140));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn min_max_and_zero() {
        let a = Instructions::new(5);
        let b = Instructions::new(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Instructions::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn cpi_computation() {
        assert_eq!(cpi(Cycles::new(200), Instructions::new(100)), Some(2.0));
        assert_eq!(cpi(Cycles::new(200), Instructions::ZERO), None);
    }

    #[test]
    fn display_is_raw_value() {
        assert_eq!(Cycles::new(42).to_string(), "42");
        assert_eq!(Instructions::from_millions(2).to_string(), "2000000");
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(Nanos::from_micros(2), Nanos::new(2_000));
        assert_eq!(Nanos::from_millis(2), Nanos::new(2_000_000));
        assert!((Cycles::from_micros(10).as_micros_f64() - 10.0).abs() < 1e-12);
        assert!((Instructions::from_millions(3).as_millions_f64() - 3.0).abs() < 1e-12);
        assert!((Cycles::from_millis(1_000).as_secs_f64() - 1.0).abs() < 1e-12);
    }
}
