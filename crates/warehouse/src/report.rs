//! The campaign report: the three warehouse analyses plus the merge
//! auditor's verdict, with a stable JSON form and a human rendering.

use rbv_telemetry::Json;

use crate::detector::{detect_drift, DriftReport, DRIFT_THRESHOLD};
use crate::mine::{mine_regressions, Regression, TREND_BAND_SCALE};
use crate::store::Warehouse;
use crate::variance::{decompose_variance, VarianceDecomposition};

/// Everything `repro campaign --report` computes from a warehouse.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Behavior-drift verdicts and their precision/recall score.
    pub drift: DriftReport,
    /// Per-app variance attribution across the grid axes.
    pub variance: Vec<VarianceDecomposition>,
    /// Mined epoch-over-epoch trend breaches.
    pub regressions: Vec<Regression>,
    /// Merge-invariant violations recorded in the warehouse.
    pub invariant_violations: u64,
    /// Whether the warehouse was built with drift injection (controls how
    /// the drift score is interpreted).
    pub drift_injected: bool,
}

/// Runs all three analyses over `warehouse`.
pub fn analyze(warehouse: &Warehouse) -> CampaignReport {
    CampaignReport {
        drift: detect_drift(warehouse, DRIFT_THRESHOLD),
        variance: decompose_variance(warehouse),
        regressions: mine_regressions(warehouse, TREND_BAND_SCALE),
        invariant_violations: warehouse.invariant_violations(),
        drift_injected: warehouse.drift_injected,
    }
}

impl CampaignReport {
    /// Whether the campaign is clean: no mined regression and no merge
    /// invariant violation. (Drift flags on a drift-injected campaign are
    /// the expected outcome, not a failure.)
    pub fn clean(&self) -> bool {
        self.regressions.is_empty() && self.invariant_violations == 0
    }

    /// Serializes the full report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("drift".into(), self.drift.to_json()),
            (
                "variance".into(),
                Json::Arr(self.variance.iter().map(|v| v.to_json()).collect()),
            ),
            (
                "regressions".into(),
                Json::Arr(self.regressions.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "invariant_violations".into(),
                Json::Num(self.invariant_violations as f64),
            ),
            ("drift_injected".into(), Json::Bool(self.drift_injected)),
            ("clean".into(), Json::Bool(self.clean())),
        ])
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("campaign report\n===============\n\n");

        out.push_str(&format!(
            "drift (threshold {:.3}): {} of {} cells flagged",
            self.drift.threshold,
            self.drift.flagged(),
            self.drift.verdicts.len()
        ));
        if self.drift_injected {
            out.push_str(&format!(
                "  precision {:.3}  recall {:.3}",
                self.drift.score.precision(),
                self.drift.score.recall()
            ));
        }
        out.push('\n');
        for v in self.drift.verdicts.iter().filter(|v| v.flagged || v.truth) {
            out.push_str(&format!(
                "  {}/e{} vs e{}: distance {:.3} flagged={} truth={}\n",
                v.app, v.epoch, v.reference_epoch, v.distance, v.flagged, v.truth
            ));
        }

        out.push_str("\nvariance decomposition (fraction of group-mean CPI spread)\n");
        for v in &self.variance {
            out.push_str(&format!(
                "  {:<10} seed {:.3}  mix {:.3}  sched {:.3}  residual {:.3}  (n={})\n",
                v.app, v.seed_frac, v.mix_frac, v.sched_frac, v.residual_frac, v.observations
            ));
        }

        out.push_str(&format!(
            "\nmined regressions: {}\n",
            self.regressions.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!(
                "  {} e{} vs e{}: {} -> {} (deviation {:.4} > tolerance {:.4})\n",
                r.metric,
                r.epoch,
                r.baseline_epoch,
                r.baseline,
                r.candidate,
                r.deviation,
                r.tolerance
            ));
        }

        out.push_str(&format!(
            "\nmerge invariants: {} violation(s)\n",
            self.invariant_violations
        ));
        out.push_str(if self.clean() {
            "\ncampaign OK\n"
        } else {
            "\ncampaign FAILED\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_faults::PrecisionRecall;

    fn empty_report(clean: bool) -> CampaignReport {
        CampaignReport {
            drift: DriftReport {
                threshold: DRIFT_THRESHOLD,
                verdicts: Vec::new(),
                score: PrecisionRecall::default(),
            },
            variance: Vec::new(),
            regressions: Vec::new(),
            invariant_violations: u64::from(!clean),
            drift_injected: false,
        }
    }

    #[test]
    fn clean_report_renders_ok_and_serializes() {
        let report = empty_report(true);
        assert!(report.clean());
        assert!(report.render().contains("campaign OK"));
        let json = report.to_json();
        assert_eq!(json.get("clean"), Some(&Json::Bool(true)));
    }

    #[test]
    fn invariant_violations_fail_the_report() {
        let report = empty_report(false);
        assert!(!report.clean());
        assert!(report.render().contains("campaign FAILED"));
    }
}
