//! Variance decomposition: how much of the campaign's CPI spread each
//! grid axis explains.
//!
//! The observation unit is the warehouse group — one `(seed, mix, sched)`
//! grid line per application, summarized by its mean CPI over all epochs.
//! For each axis the decomposition computes the classical between-level
//! sum of squares (`Σ nₗ (x̄ₗ − x̄)²`) as a fraction of the total sum of
//! squares. One-way fractions over a crossed grid do not sum to one —
//! the remainder is interaction plus residual, reported as such rather
//! than hidden.

use rbv_telemetry::Json;

use crate::store::Warehouse;

/// One application's variance attribution.
#[derive(Debug, Clone)]
pub struct VarianceDecomposition {
    /// Application short label.
    pub app: String,
    /// Observations (grid lines) the decomposition saw.
    pub observations: usize,
    /// Total sum of squares of group mean CPI.
    pub total_ss: f64,
    /// Fraction explained by the seed axis.
    pub seed_frac: f64,
    /// Fraction explained by the workload-mix axis.
    pub mix_frac: f64,
    /// Fraction explained by the scheduler-config axis.
    pub sched_frac: f64,
    /// Interaction + residual remainder (clamped at 0).
    pub residual_frac: f64,
}

/// Between-level sum of squares for one axis, with observations grouped
/// by `level_of`.
fn axis_ss(values: &[(usize, f64)], levels: usize, grand_mean: f64) -> f64 {
    let mut sums = vec![(0usize, 0.0f64); levels];
    for &(level, x) in values {
        if let Some(slot) = sums.get_mut(level) {
            slot.0 += 1;
            slot.1 += x;
        }
    }
    sums.iter()
        .filter(|(n, _)| *n > 0)
        .map(|&(n, sum)| {
            let level_mean = sum / n as f64;
            n as f64 * (level_mean - grand_mean) * (level_mean - grand_mean)
        })
        .sum()
}

/// Decomposes per-app CPI variance across the seed, mix, and scheduler
/// axes of `warehouse`.
pub fn decompose_variance(warehouse: &Warehouse) -> Vec<VarianceDecomposition> {
    let mut out = Vec::with_capacity(warehouse.apps.len());
    for app in &warehouse.apps {
        let groups: Vec<_> = warehouse
            .groups
            .iter()
            .filter(|g| g.app == *app && g.mean_cpi.is_finite())
            .collect();
        let n = groups.len();
        if n < 2 {
            out.push(VarianceDecomposition {
                app: app.clone(),
                observations: n,
                total_ss: 0.0,
                seed_frac: 0.0,
                mix_frac: 0.0,
                sched_frac: 0.0,
                residual_frac: 0.0,
            });
            continue;
        }
        let grand_mean = groups.iter().map(|g| g.mean_cpi).sum::<f64>() / n as f64;
        let total_ss: f64 = groups
            .iter()
            .map(|g| (g.mean_cpi - grand_mean) * (g.mean_cpi - grand_mean))
            .sum();

        let level_of = |labels: &[String], label: &str| -> usize {
            labels.iter().position(|l| l == label).unwrap_or(0)
        };
        let seed_obs: Vec<(usize, f64)> = groups
            .iter()
            .map(|g| (g.seed_index as usize, g.mean_cpi))
            .collect();
        let mix_obs: Vec<(usize, f64)> = groups
            .iter()
            .map(|g| (level_of(&warehouse.mixes, &g.mix), g.mean_cpi))
            .collect();
        let sched_obs: Vec<(usize, f64)> = groups
            .iter()
            .map(|g| (level_of(&warehouse.scheds, &g.sched), g.mean_cpi))
            .collect();

        let frac = |ss: f64| if total_ss > 0.0 { ss / total_ss } else { 0.0 };
        let seed_frac = frac(axis_ss(&seed_obs, warehouse.seeds as usize, grand_mean));
        let mix_frac = frac(axis_ss(&mix_obs, warehouse.mixes.len(), grand_mean));
        let sched_frac = frac(axis_ss(&sched_obs, warehouse.scheds.len(), grand_mean));
        out.push(VarianceDecomposition {
            app: app.clone(),
            observations: n,
            total_ss,
            seed_frac,
            mix_frac,
            sched_frac,
            residual_frac: (1.0 - seed_frac - mix_frac - sched_frac).max(0.0),
        });
    }
    out
}

impl VarianceDecomposition {
    /// Serializes for the campaign report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("app".into(), Json::str(self.app.clone())),
            ("observations".into(), Json::Num(self.observations as f64)),
            ("total_ss".into(), Json::Num(self.total_ss)),
            ("seed_frac".into(), Json::Num(self.seed_frac)),
            ("mix_frac".into(), Json::Num(self.mix_frac)),
            ("sched_frac".into(), Json::Num(self.sched_frac)),
            ("residual_frac".into(), Json::Num(self.residual_frac)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GroupStat;

    fn synthetic_warehouse(groups: Vec<GroupStat>) -> Warehouse {
        Warehouse {
            label: "test".into(),
            seed: 0,
            apps: vec!["web".into()],
            seeds: 2,
            mixes: vec!["nominal".into(), "heavy".into()],
            scheds: vec!["stock".into(), "easing".into()],
            epochs: 2,
            day_requests: 10,
            drift_injected: false,
            cells: Vec::new(),
            groups,
            invariants: Json::Obj(vec![]),
            profile: None,
        }
    }

    fn group(seed: u64, mix: &str, sched: &str, cpi: f64) -> GroupStat {
        GroupStat {
            app: "web".into(),
            seed_index: seed,
            mix: mix.into(),
            sched: sched.into(),
            mean_cpi: cpi,
            requests: 10,
        }
    }

    #[test]
    fn a_pure_mix_effect_lands_on_the_mix_axis() {
        // CPI depends only on mix: heavy = 2.0, nominal = 1.0.
        let mut groups = Vec::new();
        for seed in 0..2 {
            for mix in ["nominal", "heavy"] {
                for sched in ["stock", "easing"] {
                    let cpi = if mix == "heavy" { 2.0 } else { 1.0 };
                    groups.push(group(seed, mix, sched, cpi));
                }
            }
        }
        let v = decompose_variance(&synthetic_warehouse(groups));
        assert_eq!(v.len(), 1);
        assert!(v[0].mix_frac > 0.99, "mix_frac = {}", v[0].mix_frac);
        assert!(v[0].seed_frac < 0.01);
        assert!(v[0].sched_frac < 0.01);
        assert!(v[0].residual_frac < 0.01);
        assert_eq!(v[0].observations, 8);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let v = decompose_variance(&synthetic_warehouse(vec![group(
            0, "nominal", "stock", 1.0,
        )]));
        assert_eq!(v[0].total_ss, 0.0);
        let empty = decompose_variance(&synthetic_warehouse(Vec::new()));
        assert_eq!(empty[0].observations, 0);
    }
}
