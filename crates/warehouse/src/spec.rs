//! The campaign grid: which shards a long-horizon campaign runs.
//!
//! A campaign is a Cartesian grid of **applications × seeds × workload
//! mixes × scheduler variants × epochs**, where consecutive epochs follow
//! a day/night load curve (even epochs run at full daytime load and
//! concurrency, odd epochs at reduced nighttime load). Every cell of the
//! grid is one *shard*: an independent deterministic simulation that
//! digests its requests into mergeable sketches. The grid enumeration
//! order defined here is the **canonical shard order** — the warehouse
//! folds shard digests in exactly this order no matter which worker
//! finished first, which is what makes the merged document byte-identical
//! at any `--threads` value and any shard arrival order.

use rbv_faults::DriftScenario;
use rbv_os::RbvError;
use rbv_workloads::AppId;

/// A workload-mix variant: a deterministic scale applied on top of the
/// application's base instruction scale, modeling fleets where the same
/// application serves lighter or heavier request populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixId {
    /// The paper-calibrated baseline mix.
    Nominal,
    /// A heavier mix: requests carry 30% more work.
    Heavy,
    /// A lighter mix: requests carry 30% less work.
    Light,
}

impl MixId {
    /// All mixes, in canonical grid order.
    pub const ALL: [MixId; 3] = [MixId::Nominal, MixId::Heavy, MixId::Light];

    /// Stable lower-case label used in documents and shard keys.
    pub fn label(self) -> &'static str {
        match self {
            MixId::Nominal => "nominal",
            MixId::Heavy => "heavy",
            MixId::Light => "light",
        }
    }

    /// The instruction-scale multiplier this mix applies.
    pub fn scale(self) -> f64 {
        match self {
            MixId::Nominal => 1.0,
            MixId::Heavy => 1.3,
            MixId::Light => 0.7,
        }
    }

    /// Parses a label written by [`MixId::label`].
    pub fn parse(label: &str) -> Option<MixId> {
        MixId::ALL.into_iter().find(|m| m.label() == label)
    }
}

/// A scheduler-configuration variant (the third axis the variance
/// decomposition attributes to).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedVariant {
    /// The stock scheduler.
    Stock,
    /// Gated contention easing, thresholded on the shard's own stock run
    /// (each easing shard runs stock first to derive its 80th-percentile
    /// L2 threshold, exactly like the ledger's easing stage).
    Easing,
}

impl SchedVariant {
    /// All variants, in canonical grid order.
    pub const ALL: [SchedVariant; 2] = [SchedVariant::Stock, SchedVariant::Easing];

    /// Stable lower-case label used in documents and shard keys.
    pub fn label(self) -> &'static str {
        match self {
            SchedVariant::Stock => "stock",
            SchedVariant::Easing => "easing",
        }
    }

    /// Parses a label written by [`SchedVariant::label`].
    pub fn parse(label: &str) -> Option<SchedVariant> {
        SchedVariant::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// The day/night phase of an epoch (even epochs are day, odd are night).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPhase {
    /// Full daytime load: full request count at full concurrency.
    Day,
    /// Nighttime trough: half the requests at half the concurrency.
    Night,
}

impl LoadPhase {
    /// The phase of `epoch` under the alternating day/night curve.
    pub fn of_epoch(epoch: u32) -> LoadPhase {
        if epoch.is_multiple_of(2) {
            LoadPhase::Day
        } else {
            LoadPhase::Night
        }
    }

    /// Stable lower-case label used in documents.
    pub fn label(self) -> &'static str {
        match self {
            LoadPhase::Day => "day",
            LoadPhase::Night => "night",
        }
    }

    /// The reference epoch every later epoch of this phase is compared
    /// against (epoch 0 for day, epoch 1 for night — never drifted by
    /// construction).
    pub fn reference_epoch(self) -> u32 {
        match self {
            LoadPhase::Day => 0,
            LoadPhase::Night => 1,
        }
    }
}

/// One cell of the campaign grid: the identity of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKey {
    /// The application under test.
    pub app: AppId,
    /// Position of `app` in the spec's app list (stable across runs).
    pub app_index: usize,
    /// Seed-axis level (`0..spec.seeds`).
    pub seed_index: usize,
    /// Workload-mix axis level.
    pub mix: MixId,
    /// Scheduler-configuration axis level.
    pub sched: SchedVariant,
    /// Campaign epoch (`0..spec.epochs`).
    pub epoch: u32,
}

impl ShardKey {
    /// The canonical shard label, e.g. `web/s0/nominal/stock/e3`.
    pub fn label(&self, app_label: &str) -> String {
        format!(
            "{app_label}/s{}/{}/{}/e{}",
            self.seed_index,
            self.mix.label(),
            self.sched.label(),
            self.epoch
        )
    }

    /// The epoch's day/night phase.
    pub fn phase(&self) -> LoadPhase {
        LoadPhase::of_epoch(self.epoch)
    }
}

/// The full description of a campaign grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Free-form campaign label.
    pub label: String,
    /// Base seed; seed-axis level `i` simulates at a seed derived from
    /// `seed` and `i`.
    pub seed: u64,
    /// Applications, in canonical order.
    pub apps: Vec<AppId>,
    /// Number of seed-axis levels.
    pub seeds: usize,
    /// Workload mixes, in canonical order.
    pub mixes: Vec<MixId>,
    /// Scheduler variants, in canonical order.
    pub scheds: Vec<SchedVariant>,
    /// Total epochs (≥ 2; epochs 0/1 are the day/night references).
    pub epochs: u32,
    /// Requests per daytime shard (night shards run half, floor 10).
    pub day_requests: usize,
    /// The drift-injection scenario, when this campaign is faulted.
    pub drift: Option<DriftScenario>,
}

impl CampaignSpec {
    /// The small fast grid CI smokes: 2 apps × 2 seeds × 2 mixes ×
    /// 2 scheduler variants × 4 epochs = 64 shards of 20–40 requests.
    pub fn fast(seed: u64) -> CampaignSpec {
        CampaignSpec {
            label: "fast".into(),
            seed,
            apps: vec![AppId::WebServer, AppId::Tpcc],
            seeds: 2,
            mixes: vec![MixId::Nominal, MixId::Heavy],
            scheds: vec![SchedVariant::Stock, SchedVariant::Easing],
            epochs: 4,
            day_requests: 40,
            drift: None,
        }
    }

    /// The full grid: all five server applications × 3 seeds × 3 mixes ×
    /// 2 scheduler variants × 6 epochs = 540 shards.
    pub fn full(seed: u64) -> CampaignSpec {
        CampaignSpec {
            label: "full".into(),
            seed,
            apps: AppId::SERVER_APPS.to_vec(),
            seeds: 3,
            mixes: MixId::ALL.to_vec(),
            scheds: SchedVariant::ALL.to_vec(),
            epochs: 6,
            day_requests: 120,
            drift: None,
        }
    }

    /// Enables the standard drift-injection scenario, seeded from the
    /// campaign seed.
    pub fn with_drift(mut self) -> CampaignSpec {
        self.drift = Some(DriftScenario::standard(self.seed ^ 0xD81F));
        self
    }

    /// Checks grid sanity.
    ///
    /// # Errors
    ///
    /// Returns [`RbvError::Config`] naming the first inconsistent field.
    pub fn validate(&self) -> Result<(), RbvError> {
        let config = |msg: String| Err(RbvError::Config(msg));
        if self.apps.is_empty() || self.mixes.is_empty() || self.scheds.is_empty() {
            return config("campaign grid needs at least one app, mix, and sched".into());
        }
        if self.seeds == 0 {
            return config("campaign needs at least one seed-axis level".into());
        }
        if self.epochs < 2 {
            return config(format!(
                "campaign needs >= 2 epochs (day + night references), got {}",
                self.epochs
            ));
        }
        if self.day_requests < 10 {
            return config(format!(
                "day_requests {} too small to fill a sketch",
                self.day_requests
            ));
        }
        if let Some(ds) = &self.drift {
            ds.validate()?;
        }
        Ok(())
    }

    /// Requests a shard of `epoch` runs (day/night load curve).
    pub fn requests_of(&self, epoch: u32) -> usize {
        match LoadPhase::of_epoch(epoch) {
            LoadPhase::Day => self.day_requests,
            LoadPhase::Night => (self.day_requests / 2).max(10),
        }
    }

    /// The grid, in canonical shard order (apps → seeds → mixes → scheds
    /// → epochs). This order is the merge order of the warehouse.
    pub fn shards(&self) -> Vec<ShardKey> {
        let mut out =
            Vec::with_capacity(self.apps.len() * self.seeds * self.mixes.len() * self.scheds.len());
        for (app_index, &app) in self.apps.iter().enumerate() {
            for seed_index in 0..self.seeds {
                for &mix in &self.mixes {
                    for &sched in &self.scheds {
                        for epoch in 0..self.epochs {
                            out.push(ShardKey {
                                app,
                                app_index,
                                seed_index,
                                mix,
                                sched,
                                epoch,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Shards per `(app, epoch)` warehouse cell.
    pub fn shards_per_cell(&self) -> usize {
        self.seeds * self.mixes.len() * self.scheds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_stable_and_covers_the_grid() {
        let spec = CampaignSpec::fast(42);
        let shards = spec.shards();
        assert_eq!(shards.len(), 2 * 2 * 2 * 2 * 4);
        assert_eq!(shards, spec.shards(), "enumeration must be deterministic");
        // First block iterates epochs fastest.
        assert_eq!(shards[0].epoch, 0);
        assert_eq!(shards[1].epoch, 1);
        assert_eq!(shards[0].app, AppId::WebServer);
        assert_eq!(shards.last().unwrap().app, AppId::Tpcc);
        assert_eq!(spec.shards_per_cell(), 8);
    }

    #[test]
    fn day_night_curve_halves_night_load() {
        let spec = CampaignSpec::fast(1);
        assert_eq!(spec.requests_of(0), 40);
        assert_eq!(spec.requests_of(1), 20);
        assert_eq!(spec.requests_of(2), 40);
        assert_eq!(LoadPhase::of_epoch(5), LoadPhase::Night);
        assert_eq!(LoadPhase::Day.reference_epoch(), 0);
        assert_eq!(LoadPhase::Night.reference_epoch(), 1);
    }

    #[test]
    fn labels_round_trip() {
        for m in MixId::ALL {
            assert_eq!(MixId::parse(m.label()), Some(m));
        }
        for s in SchedVariant::ALL {
            assert_eq!(SchedVariant::parse(s.label()), Some(s));
        }
        assert_eq!(MixId::parse("bogus"), None);
        let key = ShardKey {
            app: AppId::WebServer,
            app_index: 0,
            seed_index: 1,
            mix: MixId::Heavy,
            sched: SchedVariant::Easing,
            epoch: 3,
        };
        assert_eq!(key.label("web"), "web/s1/heavy/easing/e3");
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let mut spec = CampaignSpec::fast(0);
        spec.epochs = 1;
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::fast(0);
        spec.apps.clear();
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::fast(0);
        spec.seeds = 0;
        assert!(spec.validate().is_err());
        let mut spec = CampaignSpec::fast(0);
        spec.day_requests = 4;
        assert!(spec.validate().is_err());
        assert!(CampaignSpec::fast(0).with_drift().validate().is_ok());
        assert!(CampaignSpec::full(0).validate().is_ok());
    }
}
