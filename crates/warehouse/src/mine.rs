//! Regression mining: epoch-over-epoch trend breaches against the
//! ledger's per-metric tolerance bands.
//!
//! Each `(app, epoch ≥ 2)` cell is compared against the previous epoch of
//! the **same phase** (`epoch − 2`), so the day/night load curve never
//! reads as a regression. Per-metric tolerances come from
//! [`rbv_ledger::tolerance_band`] — the same classification the CI ledger
//! gate uses — scaled by [`TREND_BAND_SCALE`]: the ledger differ compares
//! two runs of the *same* seed (zero legitimate noise), while consecutive
//! campaign epochs are disjoint seed populations, so the trend band must
//! admit sampling noise that the diff band rightly rejects.

use rbv_ledger::tolerance_band;
use rbv_telemetry::Json;

use crate::store::{Warehouse, WarehouseCell};

/// Trend tolerance multiplier over the ledger diff bands.
pub const TREND_BAND_SCALE: f64 = 5.0;

/// One mined trend breach.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Dotted metric path, e.g. `campaign.web.cpi.p50`.
    pub metric: String,
    /// The epoch that broke the trend.
    pub epoch: u32,
    /// The same-phase epoch it was compared against.
    pub baseline_epoch: u32,
    /// Metric value at the baseline epoch.
    pub baseline: f64,
    /// Metric value at the breaching epoch.
    pub candidate: f64,
    /// Deviation in the band's own units (relative or absolute).
    pub deviation: f64,
    /// The scaled tolerance that was exceeded.
    pub tolerance: f64,
}

/// The metrics mined per cell: the *behavior* body (CPI, cache
/// intensity) plus request counts. Two deliberate exclusions, both
/// because their sampling noise across disjoint-seed epochs exceeds any
/// honest trend band at campaign cell sizes: tail quantiles (p99+, owned
/// by the drift detector's distribution-shift distance) and latency
/// (a queueing outcome of the arrival process, not a request-behavior
/// signature — its median legitimately swings tens of percent between
/// seed populations).
fn cell_metrics(cell: &WarehouseCell) -> Vec<(&'static str, Option<f64>)> {
    vec![
        ("cpi.p50", cell.cpi.p50()),
        ("cpi.mean", cell.cpi.mean()),
        ("l2_mpki.p50", cell.l2_mpki.p50()),
        ("requests", Some(cell.requests as f64)),
    ]
}

/// Mines every same-phase epoch pair of `warehouse` for trend breaches,
/// with tolerances scaled by `band_scale` (pass [`TREND_BAND_SCALE`]).
pub fn mine_regressions(warehouse: &Warehouse, band_scale: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for app in &warehouse.apps {
        for epoch in 2..warehouse.epochs {
            let baseline_epoch = epoch - 2;
            let (Some(cell), Some(base)) = (
                warehouse.cell(app, epoch),
                warehouse.cell(app, baseline_epoch),
            ) else {
                continue;
            };
            for ((name, candidate), (_, baseline)) in
                cell_metrics(cell).into_iter().zip(cell_metrics(base))
            {
                let (Some(candidate), Some(baseline)) = (candidate, baseline) else {
                    continue;
                };
                let metric = format!("campaign.{app}.{name}");
                let band = tolerance_band(&metric);
                let (deviation, tolerance) = band.deviation(baseline, candidate);
                let tolerance = tolerance * band_scale;
                if deviation > tolerance && (candidate - baseline).abs() > 1e-12 {
                    out.push(Regression {
                        metric,
                        epoch,
                        baseline_epoch,
                        baseline,
                        candidate,
                        deviation,
                        tolerance,
                    });
                }
            }
        }
    }
    out
}

impl Regression {
    /// Serializes for the campaign report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("metric".into(), Json::str(self.metric.clone())),
            ("epoch".into(), Json::Num(f64::from(self.epoch))),
            (
                "baseline_epoch".into(),
                Json::Num(f64::from(self.baseline_epoch)),
            ),
            ("baseline".into(), Json::Num(self.baseline)),
            ("candidate".into(), Json::Num(self.candidate)),
            ("deviation".into(), Json::Num(self.deviation)),
            ("tolerance".into(), Json::Num(self.tolerance)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_telemetry::QuantileSketch;

    fn cell(app: &str, epoch: u32, center: f64, requests: u64) -> WarehouseCell {
        let values: Vec<f64> = (0..requests)
            .map(|i| center + (i % 7) as f64 * 0.01)
            .collect();
        WarehouseCell {
            app: app.into(),
            epoch,
            phase: if epoch.is_multiple_of(2) {
                "day"
            } else {
                "night"
            }
            .into(),
            shards: 1,
            requests,
            injected: 0,
            drift_truth: false,
            latency_us: QuantileSketch::of(values.iter().map(|v| v * 100.0)),
            cpi: QuantileSketch::of(values.iter().copied()),
            l2_mpki: QuantileSketch::of(values.iter().map(|v| v * 2.0)),
        }
    }

    fn warehouse(cells: Vec<WarehouseCell>, epochs: u32) -> Warehouse {
        Warehouse {
            label: "test".into(),
            seed: 0,
            apps: vec!["web".into()],
            seeds: 1,
            mixes: vec!["nominal".into()],
            scheds: vec!["stock".into()],
            epochs,
            day_requests: 64,
            drift_injected: false,
            cells,
            groups: Vec::new(),
            invariants: Json::Obj(vec![]),
            profile: None,
        }
    }

    #[test]
    fn steady_epochs_mine_nothing() {
        let wh = warehouse(
            vec![
                cell("web", 0, 1.0, 64),
                cell("web", 1, 0.9, 32),
                cell("web", 2, 1.0, 64),
                cell("web", 3, 0.9, 32),
            ],
            4,
        );
        assert!(mine_regressions(&wh, TREND_BAND_SCALE).is_empty());
    }

    #[test]
    fn a_shifted_epoch_is_mined_and_attributed() {
        let wh = warehouse(
            vec![
                cell("web", 0, 1.0, 64),
                cell("web", 1, 0.9, 32),
                cell("web", 2, 2.0, 64), // CPI doubles epoch-over-epoch
                cell("web", 3, 0.9, 32),
            ],
            4,
        );
        let mined = mine_regressions(&wh, TREND_BAND_SCALE);
        assert!(!mined.is_empty());
        assert!(mined.iter().all(|r| r.epoch == 2 && r.baseline_epoch == 0));
        assert!(mined.iter().any(|r| r.metric == "campaign.web.cpi.p50"));
        for r in &mined {
            assert!(r.deviation > r.tolerance);
        }
    }

    #[test]
    fn day_night_load_difference_is_not_a_regression() {
        // Night cells (epochs 1, 3) run at a very different level than day
        // cells; only same-phase pairs are compared, so nothing fires.
        let wh = warehouse(
            vec![
                cell("web", 0, 1.0, 64),
                cell("web", 1, 5.0, 32),
                cell("web", 2, 1.0, 64),
                cell("web", 3, 5.0, 32),
            ],
            4,
        );
        assert!(mine_regressions(&wh, TREND_BAND_SCALE).is_empty());
    }

    #[test]
    fn request_count_loss_is_mined_exactly() {
        let wh = warehouse(
            vec![
                cell("web", 0, 1.0, 64),
                cell("web", 1, 1.0, 32),
                cell("web", 2, 1.0, 32), // half the requests vanished
                cell("web", 3, 1.0, 32),
            ],
            4,
        );
        let mined = mine_regressions(&wh, TREND_BAND_SCALE);
        assert!(mined.iter().any(|r| r.metric == "campaign.web.requests"));
    }
}
