//! The warehouse document: shard digests folded into one mergeable,
//! byte-stable `rbv-warehouse/v1` JSON artifact.
//!
//! The fold is where the determinism contract is enforced. Sketch merge
//! is associative and commutative in every integer field, but the running
//! `sum` is an f64 — so the warehouse *always* folds shards in canonical
//! grid order (the order [`CampaignSpec::shards`] enumerates), no matter
//! which worker finished first or what order digests arrived in. Given
//! the same spec, the serialized document is byte-identical at any
//! `--threads` value and any shard permutation.
//!
//! A [`CampaignInvariants`] checker audits the fold itself: grid
//! coverage (every cell exactly once), request-count conservation
//! (merged digest count == sum of shard counts), and merged-extrema
//! consistency (merged min/max == extrema of shard min/max). Violations
//! are recorded in the document and fail the campaign command.

use rbv_guard::CampaignInvariants;
use rbv_os::RbvError;
use rbv_telemetry::{Json, QuantileSketch};

use crate::shard::ShardOutput;
use crate::spec::{CampaignSpec, LoadPhase, ShardKey};

/// The document schema tag.
pub const SCHEMA: &str = "rbv-warehouse/v1";

/// One `(app, epoch)` cell: every shard of every seed/mix/sched level of
/// that app-epoch, merged.
#[derive(Debug, Clone)]
pub struct WarehouseCell {
    /// Application short label.
    pub app: String,
    /// Campaign epoch.
    pub epoch: u32,
    /// Day/night phase label.
    pub phase: String,
    /// Shards merged into this cell.
    pub shards: u64,
    /// Completed requests across those shards.
    pub requests: u64,
    /// Requests the drift injector mutated (ground truth).
    pub injected: u64,
    /// Ground truth: whether the drift scenario faulted this cell.
    pub drift_truth: bool,
    /// Merged request-latency digest (microseconds).
    pub latency_us: QuantileSketch,
    /// Merged request-CPI digest.
    pub cpi: QuantileSketch,
    /// Merged L2 misses-per-kilo-instruction digest.
    pub l2_mpki: QuantileSketch,
}

/// One `(app, seed, mix, sched)` group: the mean CPI of that grid line
/// across all its epochs — the observation unit of the variance
/// decomposition.
#[derive(Debug, Clone)]
pub struct GroupStat {
    /// Application short label.
    pub app: String,
    /// Seed-axis level.
    pub seed_index: u64,
    /// Workload-mix label.
    pub mix: String,
    /// Scheduler-variant label.
    pub sched: String,
    /// Mean request CPI over the group's epochs.
    pub mean_cpi: f64,
    /// Completed requests in the group.
    pub requests: u64,
}

/// The merged campaign artifact.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// Campaign label.
    pub label: String,
    /// Campaign base seed.
    pub seed: u64,
    /// Application short labels, in canonical order.
    pub apps: Vec<String>,
    /// Seed-axis levels.
    pub seeds: u64,
    /// Mix labels, in canonical order.
    pub mixes: Vec<String>,
    /// Scheduler-variant labels, in canonical order.
    pub scheds: Vec<String>,
    /// Total epochs.
    pub epochs: u32,
    /// Daytime requests per shard.
    pub day_requests: u64,
    /// Whether a drift scenario was injected.
    pub drift_injected: bool,
    /// Per-`(app, epoch)` merged cells, canonical order.
    pub cells: Vec<WarehouseCell>,
    /// Per-`(app, seed, mix, sched)` groups, canonical order.
    pub groups: Vec<GroupStat>,
    /// The merge auditor's verdict ([`CampaignInvariants::to_json`]).
    pub invariants: Json,
    /// Optional wall-clock stage timings (`--wallclock`); never diffed,
    /// never part of the byte-identity contract.
    pub profile: Option<Json>,
}

/// Canonical ordinal of a shard key within `spec` (its position in
/// [`CampaignSpec::shards`]); `None` for a key outside the grid.
fn ordinal(spec: &CampaignSpec, key: &ShardKey) -> Option<usize> {
    let mix = spec.mixes.iter().position(|m| *m == key.mix)?;
    let sched = spec.scheds.iter().position(|s| *s == key.sched)?;
    if key.app_index >= spec.apps.len()
        || spec.apps.get(key.app_index) != Some(&key.app)
        || key.seed_index >= spec.seeds
        || key.epoch >= spec.epochs
    {
        return None;
    }
    Some(
        ((key.app_index * spec.seeds + key.seed_index) * spec.mixes.len() + mix)
            * spec.scheds.len()
            * spec.epochs as usize
            + sched * spec.epochs as usize
            + key.epoch as usize,
    )
}

/// Folds shard digests into the warehouse document.
///
/// Shards may arrive in **any order**: they are re-sorted into canonical
/// grid order before any floating-point fold happens, which is what makes
/// the output independent of scheduling. The campaign invariant auditor
/// runs over the fold; its verdict lands in `invariants`.
///
/// # Errors
///
/// [`RbvError::Config`] when the shard set does not cover the grid
/// exactly once or contains a key outside the grid.
pub fn build_warehouse(
    spec: &CampaignSpec,
    mut shards: Vec<ShardOutput>,
    profile: Option<Json>,
) -> Result<(Warehouse, CampaignInvariants), RbvError> {
    spec.validate()?;
    let expected = spec.shards().len() as u64;
    let mut ordinals = Vec::with_capacity(shards.len());
    for s in &shards {
        let Some(ord) = ordinal(spec, &s.key) else {
            return Err(RbvError::Config(format!(
                "shard {} is not a cell of this campaign grid",
                s.label
            )));
        };
        ordinals.push(ord);
    }
    let mut seen = vec![false; expected as usize];
    for &ord in &ordinals {
        if seen[ord] {
            return Err(RbvError::Config(format!(
                "duplicate shard for grid cell {}",
                shards[ordinals.iter().position(|&o| o == ord).unwrap_or(0)].label
            )));
        }
        seen[ord] = true;
    }
    let mut auditor = CampaignInvariants::new();
    auditor.check_grid_coverage(expected, seen.iter().filter(|&&s| s).count() as u64);
    if shards.len() as u64 != expected {
        return Err(RbvError::Config(format!(
            "campaign grid has {expected} cells but {} shards arrived",
            shards.len()
        )));
    }

    // Canonical fold order — the heart of the byte-identity guarantee.
    shards.sort_by_key(|s| ordinal(spec, &s.key).unwrap_or(usize::MAX));

    let apps: Vec<String> = spec
        .apps
        .iter()
        .map(|&a| rbv_ledger::short_label(a).to_string())
        .collect();

    let mut cells = Vec::with_capacity(spec.apps.len() * spec.epochs as usize);
    for (app_index, app) in apps.iter().enumerate() {
        for epoch in 0..spec.epochs {
            let members: Vec<&ShardOutput> = shards
                .iter()
                .filter(|s| s.key.app_index == app_index && s.key.epoch == epoch)
                .collect();
            let latency_us = QuantileSketch::merge_all(members.iter().map(|s| &s.latency_us));
            let cpi = QuantileSketch::merge_all(members.iter().map(|s| &s.cpi));
            let l2_mpki = QuantileSketch::merge_all(members.iter().map(|s| &s.l2_mpki));
            let requests: u64 = members.iter().map(|s| s.requests).sum();
            let injected: u64 = members.iter().map(|s| s.injected).sum();
            let cell_label = format!("{app}/e{epoch}");
            auditor.check_count_conservation(
                &cell_label,
                members.iter().map(|s| s.latency_us.count()).sum(),
                latency_us.count(),
            );
            auditor.check_merged_extrema(
                &cell_label,
                members
                    .iter()
                    .filter_map(|s| s.cpi.min())
                    .fold(None, min_fold),
                members
                    .iter()
                    .filter_map(|s| s.cpi.max())
                    .fold(None, max_fold),
                cpi.min(),
                cpi.max(),
            );
            cells.push(WarehouseCell {
                app: app.clone(),
                epoch,
                phase: LoadPhase::of_epoch(epoch).label().to_string(),
                shards: members.len() as u64,
                requests,
                injected,
                drift_truth: spec
                    .drift
                    .as_ref()
                    .is_some_and(|ds| ds.is_drifted(app_index, epoch)),
                latency_us,
                cpi,
                l2_mpki,
            });
        }
    }

    let mut groups = Vec::new();
    for (app_index, app) in apps.iter().enumerate() {
        for seed_index in 0..spec.seeds {
            for &mix in &spec.mixes {
                for &sched in &spec.scheds {
                    let members: Vec<&ShardOutput> = shards
                        .iter()
                        .filter(|s| {
                            s.key.app_index == app_index
                                && s.key.seed_index == seed_index
                                && s.key.mix == mix
                                && s.key.sched == sched
                        })
                        .collect();
                    let cpi = QuantileSketch::merge_all(members.iter().map(|s| &s.cpi));
                    groups.push(GroupStat {
                        app: app.clone(),
                        seed_index: seed_index as u64,
                        mix: mix.label().to_string(),
                        sched: sched.label().to_string(),
                        mean_cpi: cpi.mean().unwrap_or(f64::NAN),
                        requests: members.iter().map(|s| s.requests).sum(),
                    });
                }
            }
        }
    }

    let warehouse = Warehouse {
        label: spec.label.clone(),
        seed: spec.seed,
        apps,
        seeds: spec.seeds as u64,
        mixes: spec.mixes.iter().map(|m| m.label().to_string()).collect(),
        scheds: spec.scheds.iter().map(|s| s.label().to_string()).collect(),
        epochs: spec.epochs,
        day_requests: spec.day_requests as u64,
        drift_injected: spec.drift.is_some(),
        cells,
        groups,
        invariants: auditor.to_json(),
        profile,
    };
    Ok((warehouse, auditor))
}

fn min_fold(acc: Option<f64>, v: f64) -> Option<f64> {
    Some(acc.map_or(v, |a| a.min(v)))
}

fn max_fold(acc: Option<f64>, v: f64) -> Option<f64> {
    Some(acc.map_or(v, |a| a.max(v)))
}

impl Warehouse {
    /// The cell of `(app, epoch)`, when present.
    pub fn cell(&self, app: &str, epoch: u32) -> Option<&WarehouseCell> {
        self.cells.iter().find(|c| c.app == app && c.epoch == epoch)
    }

    /// Invariant violations recorded by the merge auditor.
    pub fn invariant_violations(&self) -> u64 {
        self.invariants
            .get("violations")
            .and_then(Json::as_f64)
            .map_or(0, |v| v as u64)
    }

    /// Serializes to the `rbv-warehouse/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("label".to_string(), Json::str(self.label.clone())),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "apps".to_string(),
                Json::Arr(self.apps.iter().map(|a| Json::str(a.clone())).collect()),
            ),
            ("seeds".to_string(), Json::Num(self.seeds as f64)),
            (
                "mixes".to_string(),
                Json::Arr(self.mixes.iter().map(|m| Json::str(m.clone())).collect()),
            ),
            (
                "scheds".to_string(),
                Json::Arr(self.scheds.iter().map(|s| Json::str(s.clone())).collect()),
            ),
            ("epochs".to_string(), Json::Num(f64::from(self.epochs))),
            (
                "day_requests".to_string(),
                Json::Num(self.day_requests as f64),
            ),
            (
                "drift_injected".to_string(),
                Json::Bool(self.drift_injected),
            ),
            (
                "cells".to_string(),
                Json::Arr(self.cells.iter().map(cell_to_json).collect()),
            ),
            (
                "groups".to_string(),
                Json::Arr(self.groups.iter().map(group_to_json).collect()),
            ),
            ("invariants".to_string(), self.invariants.clone()),
        ];
        if let Some(profile) = &self.profile {
            obj.push(("profile".to_string(), profile.clone()));
        }
        Json::Obj(obj)
    }

    /// Parses a document serialized by [`Warehouse::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<Warehouse, String> {
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?}, expected {SCHEMA}"));
        }
        let str_field = |key: &str| -> Result<String, String> {
            Ok(json
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("missing {key}"))?
                .to_string())
        };
        let num_field = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let str_list = |key: &str| -> Result<Vec<String>, String> {
            json.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing {key}"))?
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in {key}"))
                })
                .collect()
        };
        let cells = json
            .get("cells")
            .and_then(Json::as_array)
            .ok_or("missing cells")?
            .iter()
            .map(cell_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let groups = json
            .get("groups")
            .and_then(Json::as_array)
            .ok_or("missing groups")?
            .iter()
            .map(group_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Warehouse {
            label: str_field("label")?,
            seed: num_field("seed")? as u64,
            apps: str_list("apps")?,
            seeds: num_field("seeds")? as u64,
            mixes: str_list("mixes")?,
            scheds: str_list("scheds")?,
            epochs: num_field("epochs")? as u32,
            day_requests: num_field("day_requests")? as u64,
            drift_injected: matches!(json.get("drift_injected"), Some(Json::Bool(true))),
            cells,
            groups,
            invariants: json
                .get("invariants")
                .cloned()
                .ok_or("missing invariants")?,
            profile: json.get("profile").cloned(),
        })
    }
}

fn cell_to_json(c: &WarehouseCell) -> Json {
    Json::Obj(vec![
        ("app".to_string(), Json::str(c.app.clone())),
        ("epoch".to_string(), Json::Num(f64::from(c.epoch))),
        ("phase".to_string(), Json::str(c.phase.clone())),
        ("shards".to_string(), Json::Num(c.shards as f64)),
        ("requests".to_string(), Json::Num(c.requests as f64)),
        ("injected".to_string(), Json::Num(c.injected as f64)),
        ("drift_truth".to_string(), Json::Bool(c.drift_truth)),
        ("latency_us".to_string(), c.latency_us.to_json()),
        ("cpi".to_string(), c.cpi.to_json()),
        ("l2_mpki".to_string(), c.l2_mpki.to_json()),
    ])
}

fn cell_from_json(json: &Json) -> Result<WarehouseCell, String> {
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell missing {key}"))
    };
    let sketch = |key: &str| -> Result<QuantileSketch, String> {
        QuantileSketch::from_json(json.get(key).ok_or_else(|| format!("cell missing {key}"))?)
    };
    Ok(WarehouseCell {
        app: json
            .get("app")
            .and_then(Json::as_str)
            .ok_or("cell missing app")?
            .to_string(),
        epoch: num("epoch")? as u32,
        phase: json
            .get("phase")
            .and_then(Json::as_str)
            .ok_or("cell missing phase")?
            .to_string(),
        shards: num("shards")? as u64,
        requests: num("requests")? as u64,
        injected: num("injected")? as u64,
        drift_truth: matches!(json.get("drift_truth"), Some(Json::Bool(true))),
        latency_us: sketch("latency_us")?,
        cpi: sketch("cpi")?,
        l2_mpki: sketch("l2_mpki")?,
    })
}

fn group_to_json(g: &GroupStat) -> Json {
    Json::Obj(vec![
        ("app".to_string(), Json::str(g.app.clone())),
        ("seed_index".to_string(), Json::Num(g.seed_index as f64)),
        ("mix".to_string(), Json::str(g.mix.clone())),
        ("sched".to_string(), Json::str(g.sched.clone())),
        ("mean_cpi".to_string(), Json::Num(g.mean_cpi)),
        ("requests".to_string(), Json::Num(g.requests as f64)),
    ])
}

fn group_from_json(json: &Json) -> Result<GroupStat, String> {
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("group missing {key}"))
    };
    let text = |key: &str| -> Result<String, String> {
        Ok(json
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("group missing {key}"))?
            .to_string())
    };
    Ok(GroupStat {
        app: text("app")?,
        seed_index: num("seed_index")? as u64,
        mix: text("mix")?,
        sched: text("sched")?,
        mean_cpi: num("mean_cpi")?,
        requests: num("requests")? as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_workloads::AppId;

    fn synthetic_shards(spec: &CampaignSpec) -> Vec<ShardOutput> {
        spec.shards()
            .into_iter()
            .map(|key| {
                let seed = crate::shard::shard_seed(spec.seed, &key);
                let n = spec.requests_of(key.epoch);
                let values: Vec<f64> = (0..n)
                    .map(|i| 1.0 + ((seed.wrapping_add(i as u64) % 97) as f64) / 97.0)
                    .collect();
                ShardOutput {
                    key,
                    label: key.label(rbv_ledger::short_label(key.app)),
                    requests: n as u64,
                    latency_us: QuantileSketch::of(values.iter().map(|v| v * 100.0)),
                    cpi: QuantileSketch::of(values.iter().copied()),
                    l2_mpki: QuantileSketch::of(values.iter().map(|v| v * 3.0)),
                    drifted: false,
                    injected: 0,
                    sim_end: rbv_sim::Cycles::new(1),
                }
            })
            .collect()
    }

    #[test]
    fn fold_is_arrival_order_independent() {
        let spec = CampaignSpec::fast(7);
        let shards = synthetic_shards(&spec);
        let mut reversed = shards.clone();
        reversed.reverse();
        let (a, _) = build_warehouse(&spec, shards, None).expect("canonical");
        let (b, _) = build_warehouse(&spec, reversed, None).expect("reversed");
        assert_eq!(
            a.to_json().to_string_compact(),
            b.to_json().to_string_compact(),
            "warehouse must be byte-identical across shard arrival orders"
        );
        assert_eq!(a.invariant_violations(), 0);
    }

    #[test]
    fn json_round_trips() {
        let spec = CampaignSpec::fast(3);
        let (wh, _) = build_warehouse(&spec, synthetic_shards(&spec), None).expect("build");
        let json = wh.to_json();
        let back = Warehouse::from_json(&json).expect("parse");
        assert_eq!(
            back.to_json().to_string_compact(),
            json.to_string_compact(),
            "to_json . from_json must be the identity on documents"
        );
        assert_eq!(back.cells.len(), 2 * 4);
        assert_eq!(back.groups.len(), 2 * 2 * 2 * 2);
        assert!(back.cell("web", 0).is_some());
        assert!(back.cell("web", 99).is_none());
    }

    #[test]
    fn missing_and_duplicate_shards_are_rejected() {
        let spec = CampaignSpec::fast(5);
        let mut shards = synthetic_shards(&spec);
        let dup = shards[0].clone();
        let short = shards[1..].to_vec();
        assert!(build_warehouse(&spec, short, None).is_err(), "missing cell");
        shards.push(dup);
        assert!(
            build_warehouse(&spec, shards, None).is_err(),
            "duplicate cell"
        );
    }

    #[test]
    fn foreign_keys_are_rejected() {
        let spec = CampaignSpec::fast(5);
        let mut shards = synthetic_shards(&spec);
        shards[0].key.app = AppId::Rubis; // not app_index 0's app
        assert!(build_warehouse(&spec, shards, None).is_err());
    }

    #[test]
    fn profile_is_carried_but_optional() {
        let spec = CampaignSpec::fast(2);
        let profile = Json::Obj(vec![("wall_s.x".to_string(), Json::Num(0.5))]);
        let (wh, _) =
            build_warehouse(&spec, synthetic_shards(&spec), Some(profile)).expect("build");
        let parsed = Warehouse::from_json(&wh.to_json()).expect("parse");
        assert!(parsed.profile.is_some());
        let (bare, _) = build_warehouse(&spec, synthetic_shards(&spec), None).expect("build");
        assert!(Warehouse::from_json(&bare.to_json())
            .expect("parse")
            .profile
            .is_none());
    }
}
