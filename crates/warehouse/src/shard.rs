//! Running one campaign shard: a single deterministic simulation whose
//! request population is digested into mergeable sketches.
//!
//! A shard is a pure function of `(spec.seed, key)` — the engine seed,
//! factory seed, workload scale, concurrency, scheduler configuration and
//! (when the campaign is faulted) the drift plan all derive from the
//! shard key, never from the host, the thread that ran it, or the order
//! the pool scheduled it in.

use rbv_core::series::Metric;
use rbv_core::stats::percentile;
use rbv_faults::FaultyFactory;
use rbv_os::{run_simulation, RbvError, RunResult, SchedulerPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_telemetry::{QuantileSketch, SelfProfiler};
use rbv_workloads::{factory_for, AppId};

use crate::spec::{CampaignSpec, LoadPhase, SchedVariant, ShardKey};

/// One shard's digest: everything the warehouse merge needs, nothing
/// request-granular.
#[derive(Debug, Clone)]
pub struct ShardOutput {
    /// The grid cell this shard ran.
    pub key: ShardKey,
    /// Canonical shard label (`web/s0/nominal/stock/e3`).
    pub label: String,
    /// Completed requests.
    pub requests: u64,
    /// Request latency digest (microseconds).
    pub latency_us: QuantileSketch,
    /// Request CPI digest.
    pub cpi: QuantileSketch,
    /// Request L2 misses-per-kilo-instruction digest.
    pub l2_mpki: QuantileSketch,
    /// Whether the drift scenario faulted this shard's cell.
    pub drifted: bool,
    /// Requests the injector actually mutated (0 when clean).
    pub injected: u64,
    /// Total simulated time (for campaign trace events).
    pub sim_end: Cycles,
}

/// Per-application instruction scale (mirrors the ledger collector,
/// keeping the two long-request applications affordable).
fn base_scale(app: AppId) -> f64 {
    match app {
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        _ => 1.0,
    }
}

/// The engine/factory seed of a shard: a SplitMix64 finalization of the
/// campaign seed and every grid coordinate, so no two shards share an
/// RNG stream and the same cell reproduces bit-identically across runs.
pub fn shard_seed(campaign_seed: u64, key: &ShardKey) -> u64 {
    let coord = (key.app_index as u64) << 48
        | (key.seed_index as u64) << 32
        | (mix_ordinal(key) as u64) << 24
        | (sched_ordinal(key) as u64) << 16
        | u64::from(key.epoch);
    splitmix64(
        campaign_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            ^ coord,
    )
}

fn mix_ordinal(key: &ShardKey) -> u8 {
    match key.mix {
        crate::spec::MixId::Nominal => 0,
        crate::spec::MixId::Heavy => 1,
        crate::spec::MixId::Light => 2,
    }
}

fn sched_ordinal(key: &ShardKey) -> u8 {
    match key.sched {
        SchedVariant::Stock => 0,
        SchedVariant::Easing => 1,
    }
}

/// SplitMix64 finalizer (same constants as `rbv-faults`' plan hashing).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The shard's simulator configuration before any scheduler variant is
/// applied: paper-default machine, interrupt sampling at the app's
/// calibrated period, day/night concurrency curve.
fn shard_config(key: &ShardKey, seed: u64) -> SimConfig {
    let mut cfg =
        SimConfig::paper_default().with_interrupt_sampling(key.app.sampling_period_micros());
    cfg.seed = seed;
    if key.phase() == LoadPhase::Night {
        // Nighttime trough: half the offered concurrency.
        cfg.concurrency = (cfg.concurrency / 2).max(1);
    }
    cfg
}

/// Runs one simulation for the shard, wrapping the factory in the drift
/// injector when the campaign's scenario faults this cell. Returns the
/// run and the number of requests actually mutated.
fn run_once(
    spec: &CampaignSpec,
    key: &ShardKey,
    cfg: SimConfig,
    seed: u64,
    n: usize,
) -> Result<(RunResult, u64), RbvError> {
    let scale = base_scale(key.app) * key.mix.scale();
    let inner = factory_for(key.app, seed, scale);
    match &spec.drift {
        Some(ds) if ds.is_drifted(key.app_index, key.epoch) => {
            let mut faulty = FaultyFactory::new(inner, ds.plan_for(seed, key.app_index, key.epoch));
            let result = run_simulation(cfg, &mut faulty, n)?;
            let injected = faulty.injected().len() as u64;
            Ok((result, injected))
        }
        _ => {
            let mut factory = inner;
            let result = run_simulation(cfg, factory.as_mut(), n)?;
            Ok((result, 0))
        }
    }
}

/// The easing scheduler's high-usage threshold: the 80th percentile of
/// the stock run's per-period L2 miss rates (an exact percentile — it is
/// a scheduler input, not a reported statistic; same derivation as the
/// ledger's easing stage).
fn easing_threshold(stock: &RunResult) -> f64 {
    let mut mpi = Vec::new();
    for r in &stock.completed {
        let (_, mut v) = r.timeline.weighted_values(Metric::L2MissesPerIns);
        mpi.append(&mut v);
    }
    percentile(&mpi, 0.8).unwrap_or(0.0)
}

/// Runs one shard to its digest.
///
/// Easing shards run twice: a stock pass derives the shard's own
/// contention threshold (keeping the shard self-contained — no cross-
/// shard data dependency survives into the fan-out), then the eased pass
/// produces the digest.
///
/// # Errors
///
/// Propagates [`RbvError`] from configuration validation.
pub fn run_shard(
    spec: &CampaignSpec,
    key: &ShardKey,
    profiler: &mut SelfProfiler,
) -> Result<ShardOutput, RbvError> {
    let label = key.label(rbv_ledger::short_label(key.app));
    let timer = profiler.stage(format!("campaign.{label}"));
    let seed = shard_seed(spec.seed, key);
    let n = spec.requests_of(key.epoch);

    let (result, injected) = match key.sched {
        SchedVariant::Stock => run_once(spec, key, shard_config(key, seed), seed, n)?,
        SchedVariant::Easing => {
            let (stock, _) = run_once(spec, key, shard_config(key, seed), seed, n)?;
            let mut cfg = shard_config(key, seed);
            cfg.scheduler = SchedulerPolicy::ContentionEasing {
                resched_interval: Cycles::from_millis(5),
                high_usage_threshold: easing_threshold(&stock),
                alpha: 0.6,
            };
            cfg.easing_error_gate = Some(0.35);
            run_once(spec, key, cfg, seed, n)?
        }
    };

    let drifted = spec
        .drift
        .as_ref()
        .is_some_and(|ds| ds.is_drifted(key.app_index, key.epoch));
    let out = ShardOutput {
        key: *key,
        label,
        requests: result.completed.len() as u64,
        latency_us: result.latency_sketch(),
        cpi: result.cpi_sketch(),
        l2_mpki: result.l2_mpki_sketch(),
        drifted,
        injected,
        sim_end: result.total_time,
    };
    profiler.stop(timer);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MixId;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::fast(42);
        spec.day_requests = 16;
        spec
    }

    fn key(epoch: u32, sched: SchedVariant) -> ShardKey {
        ShardKey {
            app: AppId::WebServer,
            app_index: 0,
            seed_index: 0,
            mix: MixId::Nominal,
            sched,
            epoch,
        }
    }

    #[test]
    fn shards_are_deterministic() {
        let spec = tiny_spec();
        let run = |k: &ShardKey| {
            let mut p = SelfProfiler::new();
            run_shard(&spec, k, &mut p).expect("valid shard")
        };
        let a = run(&key(0, SchedVariant::Stock));
        let b = run(&key(0, SchedVariant::Stock));
        assert_eq!(a.requests, b.requests);
        assert_eq!(
            a.cpi.to_json().to_string_compact(),
            b.cpi.to_json().to_string_compact()
        );
        assert_eq!(a.sim_end, b.sim_end);
        assert!(!a.drifted);
        assert_eq!(a.label, "web/s0/nominal/stock/e0");
    }

    #[test]
    fn day_and_night_epochs_differ_in_load() {
        let spec = tiny_spec();
        let mut p = SelfProfiler::new();
        let day = run_shard(&spec, &key(0, SchedVariant::Stock), &mut p).expect("day");
        let night = run_shard(&spec, &key(1, SchedVariant::Stock), &mut p).expect("night");
        assert_eq!(day.requests, 16);
        assert_eq!(night.requests, 10);
    }

    #[test]
    fn drifted_cells_inject_and_shift_cpi() {
        let mut spec = tiny_spec();
        spec.day_requests = 40;
        // Force every eligible cell to drift so the test is not hostage
        // to the cell hash.
        spec = spec.with_drift();
        if let Some(ds) = &mut spec.drift {
            ds.cell_prob = 1.0;
        }
        let mut p = SelfProfiler::new();
        let clean_ref = run_shard(&spec, &key(0, SchedVariant::Stock), &mut p).expect("ref");
        let drifted = run_shard(&spec, &key(2, SchedVariant::Stock), &mut p).expect("drifted");
        assert!(!clean_ref.drifted, "epoch 0 is a reference epoch");
        assert_eq!(clean_ref.injected, 0);
        assert!(drifted.drifted);
        assert!(drifted.injected > 0, "drift preset must mutate requests");
        // The shift shows in the body of the distribution (upper
        // quartile, p90, mean) — exactly what the detector's distance
        // ranges over.
        let distance = crate::detector::drift_distance(&clean_ref.cpi, &drifted.cpi);
        assert!(
            distance > 0.2,
            "drift should visibly shift the CPI body: distance {distance}"
        );
    }

    #[test]
    fn easing_shard_runs_the_easing_scheduler() {
        let spec = tiny_spec();
        let mut p = SelfProfiler::new();
        let eased = run_shard(&spec, &key(0, SchedVariant::Easing), &mut p).expect("eased");
        assert_eq!(eased.requests, 16);
        assert!(p
            .stages()
            .iter()
            .any(|(name, _)| name == "campaign.web/s0/nominal/easing/e0"));
    }

    #[test]
    fn shard_seeds_decorrelate_cells() {
        let spec = tiny_spec();
        let mut seen = std::collections::HashSet::new();
        for k in spec.shards() {
            assert!(seen.insert(shard_seed(spec.seed, &k)), "seed collision");
        }
        assert_ne!(
            shard_seed(1, &key(0, SchedVariant::Stock)),
            shard_seed(2, &key(0, SchedVariant::Stock))
        );
    }
}
