//! Behavior-drift detection over a warehouse: per-app CPI distribution
//! shift between an epoch and its same-phase reference epoch.
//!
//! Epochs 0 (day) and 1 (night) are reference baselines — the drift
//! scenario never faults them ([`rbv_faults::FIRST_DRIFT_EPOCH`]) — so
//! every later epoch is compared against the reference of its own
//! day/night phase. Comparing within a phase keeps the load curve out of
//! the signal: a night epoch's lower concurrency legitimately shifts CPI
//! relative to a day epoch, but not relative to the night reference.
//!
//! The distance is the worst relative shift across the body of the CPI
//! distribution (quartiles, p90, mean). Tails beyond p90 are left to the
//! regression miner: at campaign cell sizes they carry more sampling
//! noise than signal. When the warehouse records injected ground truth,
//! verdicts are scored with the same [`PrecisionRecall`] type the anomaly
//! detector uses.

use rbv_faults::PrecisionRecall;
use rbv_telemetry::{Json, QuantileSketch};

use crate::spec::LoadPhase;
use crate::store::Warehouse;

/// Default flag threshold: worst relative CPI shift above 12% is drift.
/// Clean same-phase epochs differ only by engine seeds; at campaign cell
/// sizes their body quantiles stay within a few percent, while the drift
/// preset shifts the median by tens of percent.
pub const DRIFT_THRESHOLD: f64 = 0.12;

/// The detector's verdict on one `(app, epoch)` cell.
#[derive(Debug, Clone)]
pub struct DriftVerdict {
    /// Application short label.
    pub app: String,
    /// The epoch under test (≥ 2).
    pub epoch: u32,
    /// The same-phase reference epoch it was compared against.
    pub reference_epoch: u32,
    /// Worst relative shift across the CPI body statistics.
    pub distance: f64,
    /// Whether `distance` exceeds the threshold.
    pub flagged: bool,
    /// Ground truth recorded at injection time.
    pub truth: bool,
}

/// The full drift report.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// The flag threshold used.
    pub threshold: f64,
    /// One verdict per eligible `(app, epoch ≥ 2)` cell, canonical order.
    pub verdicts: Vec<DriftVerdict>,
    /// Detection quality versus injected ground truth (trivially perfect
    /// when the campaign was unfaulted and nothing is flagged).
    pub score: PrecisionRecall,
}

/// The body statistics the distance ranges over.
fn body_stats(sketch: &QuantileSketch) -> Vec<f64> {
    [
        sketch.quantile(0.25),
        sketch.quantile(0.5),
        sketch.quantile(0.75),
        sketch.quantile(0.9),
        sketch.mean(),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// Worst relative shift between two CPI digests' body statistics.
pub fn drift_distance(reference: &QuantileSketch, candidate: &QuantileSketch) -> f64 {
    let r = body_stats(reference);
    let c = body_stats(candidate);
    if r.len() != c.len() || r.is_empty() {
        return f64::INFINITY; // Incomparable digests are loud, not silent.
    }
    r.iter()
        .zip(&c)
        .map(|(a, b)| (b - a).abs() / a.abs().max(1e-9))
        .fold(0.0, f64::max)
}

/// Runs the detector over every eligible cell of `warehouse`.
pub fn detect_drift(warehouse: &Warehouse, threshold: f64) -> DriftReport {
    let mut verdicts = Vec::new();
    let mut score = PrecisionRecall::default();
    for app in &warehouse.apps {
        for epoch in rbv_faults::FIRST_DRIFT_EPOCH..warehouse.epochs {
            let reference_epoch = LoadPhase::of_epoch(epoch).reference_epoch();
            let (Some(cell), Some(reference)) = (
                warehouse.cell(app, epoch),
                warehouse.cell(app, reference_epoch),
            ) else {
                continue;
            };
            let distance = drift_distance(&reference.cpi, &cell.cpi);
            let flagged = distance > threshold;
            match (flagged, cell.drift_truth) {
                (true, true) => score.true_positives += 1,
                (true, false) => score.false_positives += 1,
                (false, true) => score.false_negatives += 1,
                (false, false) => {}
            }
            verdicts.push(DriftVerdict {
                app: app.clone(),
                epoch,
                reference_epoch,
                distance,
                flagged,
                truth: cell.drift_truth,
            });
        }
    }
    DriftReport {
        threshold,
        verdicts,
        score,
    }
}

impl DriftReport {
    /// Cells the detector flagged.
    pub fn flagged(&self) -> usize {
        self.verdicts.iter().filter(|v| v.flagged).count()
    }

    /// Serializes for the campaign report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("threshold".into(), Json::Num(self.threshold)),
            (
                "verdicts".into(),
                Json::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("app".into(), Json::str(v.app.clone())),
                                ("epoch".into(), Json::Num(f64::from(v.epoch))),
                                (
                                    "reference_epoch".into(),
                                    Json::Num(f64::from(v.reference_epoch)),
                                ),
                                ("distance".into(), Json::Num(v.distance)),
                                ("flagged".into(), Json::Bool(v.flagged)),
                                ("truth".into(), Json::Bool(v.truth)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("precision".into(), Json::Num(self.score.precision())),
            ("recall".into(), Json::Num(self.score.recall())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_zero_for_identical_and_large_for_shifted() {
        let a = QuantileSketch::of((0..200).map(|i| 1.0 + (i % 10) as f64 * 0.01));
        let shifted = QuantileSketch::of((0..200).map(|i| 1.5 + (i % 10) as f64 * 0.01));
        assert_eq!(drift_distance(&a, &a), 0.0);
        assert!(drift_distance(&a, &shifted) > 0.3);
        assert!(drift_distance(&a, &QuantileSketch::new()).is_infinite());
    }
}
