//! Long-horizon campaign runner and cross-run ledger warehouse for the
//! Request Behavior Variations reproduction.
//!
//! A single `repro bench` run answers "what does this build do at this
//! seed?". The paper's behavior-variation story, though, is longitudinal:
//! request behavior drifts across software epochs, load follows day/night
//! curves, and the interesting questions — *did behavior shift? which
//! knob explains the spread? did a trend quietly break?* — only fall out
//! of many runs analyzed together. This crate is that layer:
//!
//! * [`spec`] — the campaign grid (apps × seeds × workload mixes ×
//!   scheduler variants × day/night epochs) and its **canonical shard
//!   order**;
//! * [`shard`] — one grid cell as one deterministic simulation digested
//!   into mergeable [`rbv_telemetry::QuantileSketch`]es;
//! * [`campaign`] — the grid fanned over [`rbv_par::Pool`] with ordered
//!   collection, so the run is byte-identical at any `--threads`;
//! * [`store`] — the `rbv-warehouse/v1` document: shard digests folded
//!   in canonical order under a [`rbv_guard::CampaignInvariants`] audit;
//! * [`detector`] — behavior-drift detection (per-app CPI distribution
//!   shift versus the same-phase reference epoch), scored against the
//!   fault injector's ground truth;
//! * [`variance`] — variance decomposition of group-mean CPI across the
//!   seed / mix / scheduler axes;
//! * [`mine`] — regression mining: epoch-over-epoch trend breaches
//!   against scaled [`rbv_ledger`] tolerance bands;
//! * [`report`] — the combined campaign report behind
//!   `repro campaign --report`.
//!
//! The whole pipeline honors the repo's determinism contract: every
//! artifact is a pure function of the spec, and the serialized warehouse
//! is byte-identical across thread counts, shard arrival orders, and
//! repeated runs. Wall-clock timings exist only as opt-in, non-diffed
//! metadata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod campaign;
pub mod detector;
pub mod mine;
pub mod report;
pub mod shard;
pub mod spec;
pub mod store;
pub mod variance;

pub use campaign::run_campaign;
pub use detector::{detect_drift, drift_distance, DriftReport, DriftVerdict, DRIFT_THRESHOLD};
pub use mine::{mine_regressions, Regression, TREND_BAND_SCALE};
pub use report::{analyze, CampaignReport};
pub use shard::{run_shard, shard_seed, ShardOutput};
pub use spec::{CampaignSpec, LoadPhase, MixId, SchedVariant, ShardKey};
pub use store::{build_warehouse, GroupStat, Warehouse, WarehouseCell, SCHEMA};
pub use variance::{decompose_variance, VarianceDecomposition};
