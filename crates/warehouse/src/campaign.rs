//! Running a whole campaign: the grid fanned over [`rbv_par::Pool`],
//! digests folded into a [`Warehouse`].
//!
//! The fan-out obeys the determinism contract end to end: shards are
//! submitted in canonical grid order, `rbv-par` collects results back in
//! submission order regardless of which worker finished first, and the
//! fold itself re-sorts defensively — so the serialized warehouse is
//! byte-identical at any `--threads` value. Wall-clock stage timings are
//! the only schedule-dependent output; they are absorbed into the
//! caller's profiler in canonical order and embedded only behind
//! `--wallclock` (as non-diffed metadata).

use rbv_os::RbvError;
use rbv_par::Pool;
use rbv_telemetry::{Json, SelfProfiler, TraceEvent, TraceSink};

use crate::shard::{run_shard, ShardOutput};
use crate::spec::CampaignSpec;
use crate::store::{build_warehouse, Warehouse};

/// Runs the full campaign grid of `spec` over `pool`.
///
/// When `sink` is given, one `campaign_shard` instant event is emitted
/// per shard (in canonical order) and one `campaign_merge` event per
/// `(app, epoch)` cell after the fold.
///
/// # Errors
///
/// Propagates the first [`RbvError`] in canonical shard order
/// (deterministic regardless of which worker hit it first).
pub fn run_campaign(
    spec: &CampaignSpec,
    pool: &Pool,
    include_wallclock: bool,
    profiler: &mut SelfProfiler,
    mut sink: Option<&mut dyn TraceSink>,
) -> Result<Warehouse, RbvError> {
    spec.validate()?;
    let keys = spec.shards();
    let results = pool.ordered_map(&keys, |key| {
        let mut worker = SelfProfiler::new();
        let shard = run_shard(spec, key, &mut worker);
        (worker, shard)
    });

    let mut shards: Vec<ShardOutput> = Vec::with_capacity(keys.len());
    for (worker, shard) in results {
        profiler.absorb(worker);
        shards.push(shard?);
    }

    if let Some(sink) = sink.as_deref_mut() {
        for s in &shards {
            sink.record(TraceEvent::CampaignShard {
                ts: s.sim_end,
                shard: s.label.clone(),
                epoch: s.key.epoch,
                requests: s.requests,
                drifted: s.drifted,
            });
        }
    }

    let profile = include_wallclock.then(|| {
        Json::Obj(
            profiler
                .stages()
                .iter()
                .filter(|(name, _)| name.starts_with("campaign."))
                .map(|(name, secs)| (format!("wall_s.{name}"), Json::Num(*secs)))
                .collect(),
        )
    });

    // Cell-level merge timestamps (latest simulated time in the cell)
    // must be captured before the fold consumes the shards.
    let cell_ends: Vec<(usize, u32, rbv_sim::Cycles)> = (0..spec.apps.len())
        .flat_map(|app_index| (0..spec.epochs).map(move |epoch| (app_index, epoch)))
        .map(|(app_index, epoch)| {
            let end = shards
                .iter()
                .filter(|s| s.key.app_index == app_index && s.key.epoch == epoch)
                .map(|s| s.sim_end)
                .max()
                .unwrap_or(rbv_sim::Cycles::new(0));
            (app_index, epoch, end)
        })
        .collect();

    let (warehouse, _auditor) = build_warehouse(spec, shards, profile)?;

    if let Some(sink) = sink {
        for (app_index, epoch, ts) in cell_ends {
            sink.record(TraceEvent::CampaignMerge {
                ts,
                app: warehouse.apps[app_index].clone(),
                epoch,
                shards: spec.shards_per_cell() as u64,
            });
        }
    }
    Ok(warehouse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_telemetry::MemorySink;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::fast(42);
        spec.apps.truncate(1);
        spec.seeds = 1;
        spec.mixes.truncate(1);
        spec.scheds.truncate(1);
        spec.day_requests = 12;
        spec
    }

    #[test]
    fn campaign_emits_shard_and_merge_events() {
        let spec = tiny_spec();
        let mut profiler = SelfProfiler::new();
        let mut sink = MemorySink::new();
        let wh = run_campaign(
            &spec,
            &Pool::serial(),
            false,
            &mut profiler,
            Some(&mut sink),
        )
        .expect("campaign runs");
        let events = sink.into_events();
        let shard_events = events
            .iter()
            .filter(|e| e.kind() == "campaign_shard")
            .count();
        let merge_events = events
            .iter()
            .filter(|e| e.kind() == "campaign_merge")
            .count();
        assert_eq!(shard_events, 4, "one per shard (1x1x1x1x4 grid)");
        assert_eq!(merge_events, 4, "one per (app, epoch) cell");
        assert_eq!(wh.cells.len(), 4);
        assert!(wh.profile.is_none());
    }

    #[test]
    fn wallclock_profile_is_embedded_only_on_request() {
        let spec = tiny_spec();
        let mut profiler = SelfProfiler::new();
        let wh =
            run_campaign(&spec, &Pool::serial(), true, &mut profiler, None).expect("campaign runs");
        let profile = wh.profile.as_ref().expect("wallclock profile requested");
        let stages = profile.as_object().expect("profile is an object");
        assert_eq!(stages.len(), 4, "one wall_s entry per shard");
        assert!(stages
            .iter()
            .all(|(k, _)| k.starts_with("wall_s.campaign.")));
    }
}
