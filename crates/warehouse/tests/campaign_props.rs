//! End-to-end campaign properties: byte-identity of the warehouse across
//! thread counts, clean-grid cleanliness, and drift-detector quality
//! against injected ground truth (the acceptance gates of the campaign
//! subsystem).

use rbv_par::Pool;
use rbv_telemetry::SelfProfiler;
use rbv_warehouse::{
    analyze, detect_drift, run_campaign, CampaignSpec, MixId, SchedVariant, Warehouse,
    DRIFT_THRESHOLD,
};
use rbv_workloads::AppId;

/// A grid small enough for debug-build CI but wide enough that every
/// warehouse cell merges several shards.
fn test_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        label: "test".into(),
        seed,
        apps: vec![AppId::WebServer, AppId::Tpcc],
        seeds: 2,
        mixes: vec![MixId::Nominal, MixId::Heavy],
        scheds: vec![SchedVariant::Stock],
        epochs: 6,
        day_requests: 40,
        drift: None,
    }
}

fn run(spec: &CampaignSpec, threads: usize) -> Warehouse {
    let mut profiler = SelfProfiler::new();
    run_campaign(spec, &Pool::new(threads), false, &mut profiler, None).expect("campaign runs")
}

#[test]
fn clean_campaign_is_byte_identical_and_clean() {
    let spec = test_spec(42);
    let serial = run(&spec, 1);
    let wide = run(&spec, 4);
    let serial_bytes = serial.to_json().to_string_compact();
    assert_eq!(
        serial_bytes,
        wide.to_json().to_string_compact(),
        "warehouse must be byte-identical across --threads"
    );
    // Repeat run: byte-identical again (pure function of the spec).
    assert_eq!(serial_bytes, run(&spec, 2).to_json().to_string_compact());

    // JSON round trip is the identity on documents.
    let parsed = Warehouse::from_json(&serial.to_json()).expect("parse");
    assert_eq!(parsed.to_json().to_string_compact(), serial_bytes);

    // An unfaulted grid is clean: no drift flags, no mined regressions,
    // no invariant violations.
    let report = analyze(&serial);
    assert_eq!(
        report.drift.flagged(),
        0,
        "clean grid must not flag drift: {:?}",
        report
            .drift
            .verdicts
            .iter()
            .map(|v| (v.app.clone(), v.epoch, v.distance))
            .collect::<Vec<_>>()
    );
    assert!(
        report.regressions.is_empty(),
        "clean grid must not mine regressions: {:?}",
        report
            .regressions
            .iter()
            .map(|r| (r.metric.clone(), r.deviation, r.tolerance))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.invariant_violations, 0);
    assert!(report.clean());
}

#[test]
fn drift_detector_scores_well_on_injected_ground_truth() {
    let spec = test_spec(42).with_drift();
    let warehouse = run(&spec, 4);
    assert!(warehouse.drift_injected);
    // At least one eligible cell must actually be drifted at this seed,
    // or the scenario seed needs changing — surface that loudly.
    let drifted_cells = warehouse.cells.iter().filter(|c| c.drift_truth).count();
    assert!(drifted_cells > 0, "scenario drifted no cell at seed 42");
    assert!(
        warehouse
            .cells
            .iter()
            .all(|c| c.epoch >= 2 || !c.drift_truth),
        "reference epochs must never be drifted"
    );

    let report = detect_drift(&warehouse, DRIFT_THRESHOLD);
    let detail: Vec<_> = report
        .verdicts
        .iter()
        .map(|v| {
            (
                v.app.clone(),
                v.epoch,
                format!("{:.3}", v.distance),
                v.flagged,
                v.truth,
            )
        })
        .collect();
    assert!(
        report.score.precision() >= 0.9,
        "precision {:.3} < 0.9: {detail:?}",
        report.score.precision()
    );
    assert!(
        report.score.recall() >= 0.9,
        "recall {:.3} < 0.9: {detail:?}",
        report.score.recall()
    );

    // Sustained drift breaks epoch-over-epoch trends: the miner must
    // find at least one breach, and the full report must not be clean.
    let full = analyze(&warehouse);
    assert!(
        !full.regressions.is_empty(),
        "drifted grid should mine at least one trend breach"
    );
    assert!(!full.clean());
}
