//! Criterion microbenchmarks of the compute kernels the modeling layer
//! leans on: request differencing (the O(m·n) DTW against the O(n) L1 —
//! the cost tradeoff §4.2 discusses), k-medoids clustering, the analytical
//! contention model, and the trace-driven cache simulator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

use rbv_core::cluster::{k_medoids, DistanceMatrix};
use rbv_core::distance::{
    dtw_banded, dtw_distance_with_penalty, l1_distance, levenshtein, nearest_series,
};
use rbv_core::predict::{Predictor, VaEwma};
use rbv_mem::cache::CacheConfig;
use rbv_mem::{MachineSpec, MemoryHierarchy, SegmentProfile};
use rbv_sim::SimRng;

fn random_series(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::seed_from(seed);
    (0..len).map(|_| rng.gen_range(0.5..5.0)).collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for len in [32usize, 128, 512] {
        let x = random_series(len, 1);
        let y = random_series(len, 2);
        group.bench_with_input(BenchmarkId::new("l1", len), &len, |b, _| {
            b.iter(|| l1_distance(black_box(&x), black_box(&y), 2.0))
        });
        group.bench_with_input(BenchmarkId::new("dtw_penalty", len), &len, |b, _| {
            b.iter(|| dtw_distance_with_penalty(black_box(&x), black_box(&y), 2.0))
        });
        group.bench_with_input(BenchmarkId::new("dtw_banded8", len), &len, |b, _| {
            b.iter(|| dtw_banded(black_box(&x), black_box(&y), 2.0, 8))
        });
    }
    group.finish();
}

fn bench_levenshtein(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(3);
    let a: Vec<u16> = (0..150).map(|_| rng.gen_range(0..20)).collect();
    let b: Vec<u16> = (0..150).map(|_| rng.gen_range(0..20)).collect();
    c.bench_function("levenshtein_150", |bench| {
        bench.iter(|| levenshtein(black_box(&a), black_box(&b)))
    });
}

fn bench_kmedoids(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(4);
    let points: Vec<f64> = (0..200).map(|_| rng.gen_range(0.0..100.0)).collect();
    let dm = DistanceMatrix::compute(points.len(), |i, j| (points[i] - points[j]).abs());
    c.bench_function("k_medoids_200x10", |b| {
        b.iter(|| k_medoids(black_box(&dm), 10, 40))
    });
}

/// The DTW distance matrix Figure 7 builds, serial vs pooled at several
/// thread counts (outputs are bit-identical; only wall-clock differs).
fn bench_distance_matrix_par(c: &mut Criterion) {
    let series: Vec<Vec<f64>> = (0..48).map(|i| random_series(64, 10 + i)).collect();
    let mut group = c.benchmark_group("distance_matrix_dtw_48x64");
    group.bench_function("serial", |b| {
        b.iter(|| {
            DistanceMatrix::compute(series.len(), |i, j| {
                dtw_distance_with_penalty(black_box(&series[i]), black_box(&series[j]), 2.0)
            })
        })
    });
    for threads in [2usize, 4, 8] {
        let pool = rbv_par::Pool::new(threads);
        group.bench_with_input(BenchmarkId::new("pooled", threads), &threads, |b, _| {
            b.iter(|| {
                DistanceMatrix::compute_par(series.len(), &pool, |i, j| {
                    dtw_distance_with_penalty(black_box(&series[i]), black_box(&series[j]), 2.0)
                })
            })
        });
    }
    group.finish();
}

/// Running-best nearest-neighbor scan: naive full DTW per candidate vs
/// the lower-bound + early-abandon fast path.
fn bench_nearest_series(c: &mut Criterion) {
    let query = random_series(96, 20);
    let candidates: Vec<Vec<f64>> = (0..64).map(|i| random_series(96, 30 + i)).collect();
    let mut group = c.benchmark_group("nearest_series_64x96");
    group.bench_function("naive_full_dtw", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|cand| dtw_distance_with_penalty(black_box(&query), cand, 2.0))
                .enumerate()
                .fold(None::<(usize, f64)>, |acc, (i, d)| match acc {
                    Some((_, best)) if d >= best => acc,
                    _ => Some((i, d)),
                })
        })
    });
    group.bench_function("pruned", |b| {
        b.iter(|| nearest_series(black_box(&query), black_box(&candidates), 2.0))
    });
    group.finish();
}

fn bench_contention_model(c: &mut Criterion) {
    let machine = MachineSpec::xeon_5160();
    let scan = SegmentProfile {
        base_cpi: 0.8,
        l2_refs_per_ins: 0.006,
        working_set_bytes: 200e6,
        reuse_locality: 0.35,
    };
    let join = SegmentProfile {
        base_cpi: 0.9,
        l2_refs_per_ins: 0.007,
        working_set_bytes: 12e6,
        reuse_locality: 0.65,
    };
    let running = vec![Some(scan), Some(join), Some(scan), Some(join)];
    c.bench_function("contention_model_4core", |b| {
        b.iter(|| machine.evaluate(black_box(&running)))
    });
}

fn bench_cache_simulator(c: &mut Criterion) {
    c.bench_function("trace_cache_100k_accesses", |b| {
        b.iter(|| {
            let mut m = MemoryHierarchy::new(
                rbv_mem::Topology::XEON_5160_2X2,
                CacheConfig::XEON_5160_L1D,
                CacheConfig {
                    size_bytes: 256 << 10,
                    associativity: 16,
                    line_bytes: 64,
                },
            );
            let mut rng = SimRng::seed_from(5);
            for i in 0..100_000u64 {
                let core = (i % 4) as usize;
                let addr = rng.gen_range(0..4u64 << 20);
                m.access(core, addr, i % 7 == 0);
            }
            black_box(m.counters(0))
        })
    });
}

fn bench_vaewma(c: &mut Criterion) {
    let values = random_series(10_000, 6);
    c.bench_function("vaewma_10k_observations", |b| {
        b.iter(|| {
            let mut f = VaEwma::new(0.6, 1.0);
            for &v in &values {
                f.observe(v, 1.5);
            }
            black_box(f.predict())
        })
    });
}

criterion_group!(
    benches,
    bench_distances,
    bench_levenshtein,
    bench_kmedoids,
    bench_distance_matrix_par,
    bench_nearest_series,
    bench_contention_model,
    bench_cache_simulator,
    bench_vaewma,
);
criterion_main!(benches);
