//! Criterion benchmarks of the end-to-end simulation pipeline: how fast
//! the event-driven kernel pushes whole requests through each application
//! model, and the relative cost of the two sampling approaches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rbv_bench::harness::standard_factory;
use rbv_os::{run_simulation, SimConfig};
use rbv_workloads::AppId;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for app in AppId::SERVER_APPS {
        let n = match app {
            AppId::Webwork => 4,
            AppId::Tpch => 8,
            _ => 30,
        };
        group.bench_with_input(
            BenchmarkId::new(app.to_string().replace(' ', "-"), n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut factory = standard_factory(app, 1);
                    let cfg = SimConfig::paper_default()
                        .with_interrupt_sampling(app.sampling_period_micros());
                    black_box(run_simulation(cfg, factory.as_mut(), n).expect("valid"))
                })
            },
        );
    }
    group.finish();
}

fn bench_sampling_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_policy");
    group.sample_size(10);
    for (label, syscall) in [("interrupt", false), ("syscall_triggered", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut factory = standard_factory(AppId::WebServer, 2);
                let cfg = if syscall {
                    SimConfig::paper_default().with_syscall_sampling(6, 40)
                } else {
                    SimConfig::paper_default().with_interrupt_sampling(10)
                };
                black_box(run_simulation(cfg, factory.as_mut(), 40).expect("valid"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_sampling_policies);
criterion_main!(benches);
