//! End-to-end check of the `--threads` reproducibility guarantee: the
//! ledger `repro bench` emits must be byte-identical at every thread
//! count. CI additionally runs the release binary with `--all --threads 4`
//! and `cmp`s it against the single-threaded ledger; this test keeps the
//! guarantee enforced by `cargo test` alone, on a two-application subset
//! that still exercises the multi-app fan-out.

use rbv_workloads::AppId;

#[test]
fn bench_ledger_bytes_do_not_depend_on_thread_count() {
    let apps = [AppId::Tpcc, AppId::Webwork];
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        rbv_par::set_threads(threads);
        let ledger = rbv_bench::benchcmd::run(&apps, "threads-test", 42, true, false, None)
            .expect("bench runs");
        outputs.push(ledger.to_string_compact());
    }
    rbv_par::set_threads(rbv_par::available_parallelism());
    assert_eq!(
        outputs[0], outputs[1],
        "ledger bytes diverged between --threads 1 and --threads 4"
    );
}
