//! `repro explain <serve-ledger>` — critical-path report over a traced
//! serve ledger: where client-visible latency comes from at the median
//! and at the tail, plus the top-k slowest requests by stage breakdown.
//!
//! The input is a `rbv-serve/v1` ledger written by
//! `repro serve --trace-spans` (or any traced serve run with `--out`);
//! the embedded `trace` member carries the merged per-shard span
//! summary.

use std::path::Path;

use rbv_os::RbvError;
use rbv_telemetry::Json;
use rbv_trace::{render_explain, SpanSummary, TOP_K};

/// Loads `path`, extracts the `trace` member, and prints the
/// critical-path report.
///
/// # Errors
///
/// Returns [`RbvError::Config`] when the file is unreadable, is not a
/// serve ledger, or carries no `trace` member (the serve run was not
/// traced).
pub fn run(path: &Path) -> Result<SpanSummary, RbvError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RbvError::Config(format!("cannot read {}: {e}", path.display())))?;
    let summary =
        parse_ledger(&text).map_err(|e| RbvError::Config(format!("{}: {e}", path.display())))?;
    print!("{}", render_explain(&summary, TOP_K));
    Ok(summary)
}

/// Parses a serve-ledger JSON text into its embedded span summary.
fn parse_ledger(text: &str) -> Result<SpanSummary, String> {
    let doc = Json::parse(text.trim()).map_err(|e| format!("not valid JSON ({e})"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema member")?;
    if schema != rbv_openloop::SCHEMA {
        return Err(format!(
            "schema `{schema}` is not `{}` — explain reads serve ledgers",
            rbv_openloop::SCHEMA
        ));
    }
    let trace = doc.get("trace").ok_or(
        "ledger has no trace member — rerun `repro serve` with --trace-spans to record one",
    )?;
    SpanSummary::from_json(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_openloop::{serve_with_shard_target, ServeSpec};
    use rbv_workloads::AppId;

    #[test]
    fn explain_round_trips_a_traced_serve_ledger() {
        let dir = std::env::temp_dir().join("rbv-explaincmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json");
        let mut spec = ServeSpec::new(AppId::WebServer, 80, 9);
        spec.overload = 2.0;
        spec.trace = true;
        let report = serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 40).unwrap();
        std::fs::write(&path, report.to_json().to_string_compact()).unwrap();
        let summary = run(&path).expect("explain");
        assert_eq!(Some(&summary), report.trace.as_ref());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_rejects_untraced_ledgers() {
        let dir = std::env::temp_dir().join("rbv-explaincmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("untraced.json");
        let spec = ServeSpec::new(AppId::WebServer, 40, 9);
        let report = serve_with_shard_target(&spec, &rbv_par::Pool::serial(), 40).unwrap();
        std::fs::write(&path, report.to_json().to_string_compact()).unwrap();
        let err = run(&path).expect_err("untraced ledger must fail");
        assert!(err.to_string().contains("--trace-spans"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_rejects_foreign_schemas() {
        assert!(parse_ledger("{\"schema\":\"rbv-ledger/v2\"}")
            .unwrap_err()
            .contains("serve ledgers"));
        assert!(parse_ledger("not json").unwrap_err().contains("JSON"));
        assert!(parse_ledger("{}").unwrap_err().contains("schema"));
    }
}
