//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * `ablate-dtw` — sweep the asynchrony penalty and the Sakoe–Chiba band
//!   width, measuring classification quality and cost;
//! * `ablate-ewma` — vaEWMA vs the fixed-aging EWMA on irregular-duration
//!   samples (the situation syscall-triggered sampling creates);
//! * `ablate-sampling` — sweep `t_syscall_min` / `t_backup_int`, trading
//!   sampling overhead against captured variation;
//! * `ablate-threshold` — sweep the contention-easing high-usage
//!   percentile, measuring worst-case CPI.

use rbv_core::cluster::{divergence_from_centroid, k_medoids_par, DistanceMatrix};
use rbv_core::distance::{dtw_banded, dtw_distance_with_penalty, l1_distance, length_penalty};
use rbv_core::predict::{evaluate_rmse, Ewma, VaEwma};
use rbv_core::series::Metric;
use rbv_core::stats::{coefficient_of_variation, percentile};
use rbv_os::{run_simulation, SimConfig};
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, section, standard_factory, standard_run};

/// One row of the DTW ablation.
#[derive(Debug, Clone)]
pub struct DtwAblationRow {
    /// Description of the variant.
    pub variant: String,
    /// CPU-time divergence from centroid (Fig. 7A metric), percent.
    pub divergence: f64,
    /// Wall time to build the distance matrix, milliseconds.
    pub wall_ms: f64,
}

/// Sweeps the asynchrony penalty (0, p/4, p, 4p) and band widths on TPCC.
pub fn ablate_dtw(fast: bool) -> Vec<DtwAblationRow> {
    section("Ablation: DTW asynchrony penalty and band width (TPCC)");
    let n = requests_of(AppId::Tpcc, fast).min(if fast { 80 } else { 200 });
    let result = standard_run(AppId::Tpcc, 0xAB1, n, false);
    let bucket = crate::harness::bucket_ins(AppId::Tpcc);
    let series: Vec<Vec<f64>> = result
        .completed
        .iter()
        .map(|r| r.series(Metric::Cpi, bucket).values().to_vec())
        .collect();
    let cpu: Vec<f64> = result.completed.iter().map(|r| r.cpu_cycles()).collect();
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let p = length_penalty(&refs, 100_000);

    let pool = rbv_par::Pool::global();
    let mut rows = Vec::new();
    let mut eval = |variant: String, dist: &(dyn Fn(usize, usize) -> f64 + Sync)| {
        let t = std::time::Instant::now();
        let dm = DistanceMatrix::compute_par(series.len(), &pool, dist);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let clustering = k_medoids_par(&dm, 10, 40, &pool);
        rows.push(DtwAblationRow {
            variant,
            divergence: divergence_from_centroid(&clustering, &cpu).unwrap_or(f64::NAN),
            wall_ms,
        });
    };

    for factor in [0.0, 0.25, 1.0, 4.0] {
        let pen = p * factor;
        eval(format!("DTW penalty {factor}p"), &|i, j| {
            dtw_distance_with_penalty(&series[i], &series[j], pen)
        });
    }
    for band in [2usize, 8, 32] {
        eval(format!("banded DTW (p, band {band})"), &|i, j| {
            dtw_banded(&series[i], &series[j], p, band)
        });
    }
    eval("L1".into(), &|i, j| l1_distance(&series[i], &series[j], p));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.1}%", r.divergence),
                format!("{:.0} ms", r.wall_ms),
            ]
        })
        .collect();
    print_table(&["variant", "CPU-time divergence", "matrix cost"], &table);
    rows
}

/// vaEWMA vs fixed-aging EWMA under irregular sample durations.
pub fn ablate_ewma(fast: bool) -> Vec<(String, f64)> {
    section("Ablation: vaEWMA vs fixed-aging EWMA on irregular samples (TPCH)");
    // Syscall-triggered sampling produces wildly varying period lengths —
    // exactly the situation Equation 5 corrects for.
    let n = requests_of(AppId::Tpch, fast);
    let mut f = standard_factory(AppId::Tpch, 0xAB2);
    let mut cfg = SimConfig::paper_default().with_syscall_sampling(50, 2_000);
    cfg.seed = 0xAB2;
    let result = run_simulation(cfg, f.as_mut(), n).expect("valid");

    let mut rows = Vec::new();
    for alpha in [0.4, 0.6, 0.8] {
        let mut basic = Ewma::new(alpha);
        let mut va = VaEwma::new(alpha, 1.0);
        let score = |p: &mut dyn rbv_core::predict::Predictor| {
            let mut total = 0.0;
            let mut weight = 0.0;
            for r in &result.completed {
                let periods = r.timeline.periods();
                let d: Vec<f64> = periods.iter().map(|q| q.cycles / 3.0e6).collect();
                let v: Vec<f64> = periods
                    .iter()
                    .map(|q| q.value(Metric::L2MissesPerIns).unwrap_or(0.0))
                    .collect();
                if let Some(rmse) = evaluate_rmse(p, &d, &v) {
                    total += rmse * r.cpu_cycles();
                    weight += r.cpu_cycles();
                }
            }
            total / weight.max(1.0)
        };
        rows.push((format!("EWMA a={alpha}"), score(&mut basic)));
        rows.push((format!("vaEWMA a={alpha}"), score(&mut va)));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(l, v)| vec![l.clone(), format!("{v:.3e}")])
        .collect();
    print_table(&["filter", "RMSE"], &table);
    rows
}

/// Sweeps syscall-triggered sampling parameters on the web server.
pub fn ablate_sampling(fast: bool) -> Vec<(u64, u64, f64, f64)> {
    section("Ablation: t_syscall_min / t_backup_int sweep (web server)");
    let n = requests_of(AppId::WebServer, fast);
    let mut rows = Vec::new();
    for (t_min, t_backup) in [(2, 20), (5, 40), (10, 40), (20, 100), (50, 400)] {
        let mut f = standard_factory(AppId::WebServer, 0xAB3);
        let mut cfg = SimConfig::paper_default().with_syscall_sampling(t_min, t_backup);
        cfg.seed = 0xAB3;
        let r = run_simulation(cfg, f.as_mut(), n).expect("valid");
        let overhead = r.stats.sampling_overhead_cycles() / r.stats.busy_cycles.max(1.0);
        let mut lengths = Vec::new();
        let mut values = Vec::new();
        for c in &r.completed {
            let (mut l, mut v) = c.timeline.weighted_values(Metric::Cpi);
            lengths.append(&mut l);
            values.append(&mut v);
        }
        let cov = coefficient_of_variation(&lengths, &values).unwrap_or(0.0);
        rows.push((t_min, t_backup, overhead, cov));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(a, b, o, c)| {
            vec![
                format!("{a} us"),
                format!("{b} us"),
                format!("{:.3}%", o * 100.0),
                format!("{c:.3}"),
            ]
        })
        .collect();
    print_table(
        &["t_syscall_min", "t_backup_int", "overhead", "captured CoV"],
        &table,
    );
    rows
}

/// Sweeps the contention-easing high-usage percentile on TPCH.
pub fn ablate_threshold(fast: bool) -> Vec<(f64, f64, f64)> {
    section("Ablation: contention-easing threshold percentile (TPCH)");
    use rbv_os::SchedulerPolicy;
    use rbv_sim::Cycles;

    let profile = standard_run(AppId::Tpch, 0xAB4, requests_of(AppId::Tpch, true), false);
    let mut values = Vec::new();
    for r in &profile.completed {
        let (_, mut v) = r.timeline.weighted_values(Metric::L2MissesPerIns);
        values.append(&mut v);
    }

    let n = if fast { 40 } else { 200 };
    let mut rows = Vec::new();
    for pct in [0.6, 0.7, 0.8, 0.9] {
        let threshold = percentile(&values, pct).unwrap_or(0.0);
        let mut cfg = SimConfig::paper_default().with_interrupt_sampling(1_000);
        cfg.scheduler = SchedulerPolicy::ContentionEasing {
            resched_interval: Cycles::from_millis(5),
            high_usage_threshold: threshold,
            alpha: 0.6,
        };
        cfg.measure_threshold = Some(threshold);
        cfg.seed = 0xAB4;
        let mut f = standard_factory(AppId::Tpch, 0xAB4);
        let r = run_simulation(cfg, f.as_mut(), n).expect("valid");
        let cpis = r.request_cpis();
        rows.push((
            pct,
            percentile(&cpis, 0.99).unwrap_or(f64::NAN),
            r.stats.high_usage_fraction_at_least(4),
        ));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(p, cpi, frac)| {
            vec![
                format!("{:.0}th", p * 100.0),
                format!("{cpi:.2}"),
                format!("{:.3}%", frac * 100.0),
            ]
        })
        .collect();
    print_table(&["percentile", "p99 CPI", "4-core-high time"], &table);
    rows
}

/// Quality of one group of transition signals: the paper scores a signal
/// by the average metric change it precedes (significance) and the
/// standard deviation of that change (uniformity).
#[derive(Debug, Clone)]
pub struct SignalQuality {
    /// "name" or "bigram".
    pub kind: String,
    /// Mean |CPI change| across the top signals, occurrence-weighted.
    pub mean_abs_change: f64,
    /// Mean standard deviation across the top signals, occurrence-weighted.
    pub mean_std: f64,
    /// Consistency score: |change| per unit of standard deviation.
    pub consistency: f64,
}

/// Name-based vs bigram-based transition signals (the §3.2 suggested
/// improvement) on RUBiS, whose socket calls recur in several semantic
/// contexts (web→EJB, EJB→DB, DB→reply hand-offs).
pub fn ablate_signals(fast: bool) -> Vec<SignalQuality> {
    section("Ablation: transition signals — names vs (prev, current) bigrams (RUBiS)");
    let n = requests_of(AppId::Rubis, fast);

    // Online training pass: map names and bigrams to CPI changes across
    // every system call occurrence.
    let mut f = standard_factory(AppId::Rubis, 0xAB5);
    let mut cfg = SimConfig::paper_default().with_syscall_sampling(5, 200);
    cfg.seed = 0xAB5;
    let training = run_simulation(cfg, f.as_mut(), n).expect("valid");
    let min_count = if fast { 10 } else { 40 };

    // Score the top signals of each kind by the paper's two criteria:
    // significance (|mean change|) and uniformity (standard deviation).
    let summarize = |kind: &str, rows: Vec<(String, f64, f64, usize)>| {
        let top: Vec<_> = rows.into_iter().take(6).collect();
        let weight: f64 = top.iter().map(|r| r.3 as f64).sum();
        let mean_abs_change =
            top.iter().map(|r| r.1.abs() * r.3 as f64).sum::<f64>() / weight.max(1.0);
        let mean_std = top.iter().map(|r| r.2 * r.3 as f64).sum::<f64>() / weight.max(1.0);
        println!();
        println!("top {kind} signals (mean CPI change +- std, occurrences):");
        for (label, mean, std, count) in &top {
            println!("  {label:28} {mean:+.2} +- {std:.2}  ({count})");
        }
        SignalQuality {
            kind: kind.to_string(),
            mean_abs_change,
            mean_std,
            consistency: mean_abs_change / mean_std.max(1e-9),
        }
    };

    let names = summarize(
        "name",
        training
            .transition_table(min_count)
            .into_iter()
            .map(|(n, m, s, c)| (n.to_string(), m, s, c))
            .collect(),
    );
    let bigrams = summarize(
        "bigram",
        training
            .transition_table_bigrams(min_count)
            .into_iter()
            .map(|((p, n), m, s, c)| (format!("{p} -> {n}"), m, s, c))
            .collect(),
    );

    println!();
    print_table(
        &["kind", "mean |change|", "mean std", "consistency"],
        &[
            vec![
                names.kind.clone(),
                format!("{:.2}", names.mean_abs_change),
                format!("{:.2}", names.mean_std),
                format!("{:.2}", names.consistency),
            ],
            vec![
                bigrams.kind.clone(),
                format!("{:.2}", bigrams.mean_abs_change),
                format!("{:.2}", bigrams.mean_std),
                format!("{:.2}", bigrams.consistency),
            ],
        ],
    );
    println!("(the paper: a name recurring in many semantic contexts cannot consistently");
    println!(" signal transitions; bigrams recover per-context significance/uniformity)");
    vec![names, bigrams]
}

/// Open-loop load sweep (extension): offered utilization vs request
/// latency and contention under Poisson arrivals — the paper's saturated
/// closed-loop runs sit at the right edge of this curve.
pub fn ablate_load(fast: bool) -> Vec<(f64, f64, f64, f64)> {
    use rbv_os::config::ArrivalProcess;
    use rbv_sim::Cycles;

    section("Ablation: open-loop load sweep (TPCC, Poisson arrivals)");
    let n = if fast { 60 } else { 300 };

    // Calibrate the mean per-request CPU demand from a closed-loop run.
    let calib = standard_run(AppId::Tpcc, 0xAB6, 40, false);
    let mean_cpu: f64 =
        calib.completed.iter().map(|r| r.cpu_cycles()).sum::<f64>() / calib.completed.len() as f64;
    let cores = 4.0;

    let mut rows = Vec::new();
    for utilization in [0.3, 0.6, 0.85] {
        let interarrival = (mean_cpu / (cores * utilization)) as u64;
        let mut cfg = SimConfig::paper_default().with_interrupt_sampling(100);
        cfg.arrivals = ArrivalProcess::OpenPoisson {
            mean_interarrival: Cycles::new(interarrival.max(1)),
        };
        cfg.seed = 0xAB6;
        let mut f = standard_factory(AppId::Tpcc, 0xAB6);
        let r = run_simulation(cfg, f.as_mut(), n).expect("valid");
        let latencies_ms: Vec<f64> = r
            .completed
            .iter()
            .map(|c| c.latency().as_f64() / 3.0e6)
            .collect();
        let p50 = percentile(&latencies_ms, 0.5).unwrap_or(f64::NAN);
        let p99 = percentile(&latencies_ms, 0.99).unwrap_or(f64::NAN);
        let cpis = r.request_cpis();
        let mean_cpi = cpis.iter().sum::<f64>() / cpis.len().max(1) as f64;
        rows.push((utilization, p50, p99, mean_cpi));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(u, p50, p99, cpi)| {
            vec![
                format!("{:.0}%", u * 100.0),
                format!("{p50:.2} ms"),
                format!("{p99:.2} ms"),
                format!("{cpi:.2}"),
            ]
        })
        .collect();
    print_table(
        &["offered load", "p50 latency", "p99 latency", "mean CPI"],
        &table,
    );
    println!("(queueing delay and co-run contention both grow with offered load)");
    rows
}

/// Static L2 partitioning vs LRU sharing (extension): the related-work
/// alternative to contention-easing scheduling, end to end.
pub fn ablate_partition(fast: bool) -> Vec<(String, bool, f64, f64)> {
    section("Ablation: LRU cache sharing vs static equal partitioning");
    let mut rows = Vec::new();
    for app in [AppId::Tpcc, AppId::Tpch] {
        let n = requests_of(app, fast).min(if fast { 60 } else { 200 });
        for partition in [false, true] {
            let mut cfg =
                SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
            cfg.static_cache_partition = partition;
            cfg.seed = 0xAB7;
            let mut f = standard_factory(app, 0xAB7);
            let r = run_simulation(cfg, f.as_mut(), n).expect("valid");
            let cpis = r.request_cpis();
            let mean_cpi = cpis.iter().sum::<f64>() / cpis.len().max(1) as f64;
            let p90 = percentile(&cpis, 0.9).unwrap_or(f64::NAN);
            rows.push((app.to_string(), partition, mean_cpi, p90));
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(app, part, mean, p90)| {
            vec![
                app.clone(),
                if *part {
                    "partitioned".into()
                } else {
                    "LRU shared".into()
                },
                format!("{mean:.2}"),
                format!("{p90:.2}"),
            ]
        })
        .collect();
    print_table(&["application", "L2 policy", "mean CPI", "p90 CPI"], &table);
    println!("(partitioning isolates cache-fitting working sets; it cannot help");
    println!(" streaming scans, whose contention is bandwidth, not capacity)");
    rows
}

/// Work stealing (extension): the paper's §5.2 prototype does not migrate
/// requests between runqueues "for simplicity"; this ablation measures
/// what that simplification costs on a skewed workload (a mix of ~10x
/// longer delivery transactions among short order-status ones).
pub fn ablate_stealing(fast: bool) -> Vec<(bool, f64, f64)> {
    use rbv_core::stats::mean;
    use rbv_workloads::{Request, RequestFactory, Tpcc, TpccTxn};

    section("Ablation: request migration (work stealing) on skewed TPCC load");

    struct Skewed {
        inner: Tpcc,
        emitted: usize,
    }
    impl RequestFactory for Skewed {
        fn app(&self) -> AppId {
            AppId::Tpcc
        }
        fn next_request(&mut self) -> Request {
            self.emitted += 1;
            if self.emitted % 4 == 1 {
                self.inner.request_of_txn(TpccTxn::Delivery)
            } else {
                self.inner.request_of_txn(TpccTxn::OrderStatus)
            }
        }
    }

    let n = if fast { 60 } else { 240 };
    let mut rows = Vec::new();
    for stealing in [false, true] {
        let mut cfg = SimConfig::paper_default();
        cfg.work_stealing = stealing;
        // Light concurrency: cores can actually idle next to a backlogged
        // neighbor, which is when migration matters.
        cfg.concurrency = 5;
        cfg.seed = 0xAB8;
        let mut f = Skewed {
            inner: Tpcc::new(0xAB8, 1.0),
            emitted: 0,
        };
        let r = run_simulation(cfg, &mut f, n).expect("valid");
        let latencies_ms: Vec<f64> = r
            .completed
            .iter()
            .map(|c| c.latency().as_f64() / 3.0e6)
            .collect();
        rows.push((
            stealing,
            mean(&latencies_ms).unwrap_or(f64::NAN),
            percentile(&latencies_ms, 0.99).unwrap_or(f64::NAN),
        ));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(st, mean_ms, p99_ms)| {
            vec![
                if st {
                    "with stealing".into()
                } else {
                    "no migration (paper)".into()
                },
                format!("{mean_ms:.2} ms"),
                format!("{p99_ms:.2} ms"),
            ]
        })
        .collect();
    print_table(&["policy", "mean latency", "p99 latency"], &table);
    println!("(finding: with least-loaded admission at every arrival and stage hop,");
    println!(" queues only empty while the system drains, so migration has almost");
    println!(" nothing left to move — the paper's no-migration simplification is");
    println!(" nearly free under this admission policy)");
    rows
}
