//! Figure 9: multi-metric anomaly detection — a WeBWorK request pair with
//! very similar L2-references-per-instruction patterns (same instruction
//! stream) but divergent CPI: the signature of adverse dynamic contention.

use rbv_core::anomaly::multi_metric_pairs;
use rbv_core::cluster::DistanceMatrix;
use rbv_core::distance::{dtw_distance_with_penalty, length_penalty};
use rbv_core::series::Metric;
use rbv_core::stats::percentile;
use rbv_workloads::AppId;

use crate::experiments::fig8::{print_traces, AnomalyTraces};
use crate::harness::{bucket_ins, requests_of, section, standard_run};

/// Runs the Figure 9 experiment on WeBWorK.
pub fn compute(fast: bool) -> AnomalyTraces {
    let n = requests_of(AppId::Webwork, fast).max(30);
    let result = standard_run(AppId::Webwork, 0xF9, n, false);
    let bucket = bucket_ins(AppId::Webwork);

    // Usage patterns: L2 references per instruction (inherent behavior).
    let usage: Vec<Vec<f64>> = result
        .completed
        .iter()
        .map(|r| r.series(Metric::L2RefsPerIns, bucket).values().to_vec())
        .collect();
    let refs: Vec<&[f64]> = usage.iter().map(|s| s.as_slice()).collect();
    let penalty = length_penalty(&refs, 100_000);
    let dm = DistanceMatrix::compute_par(usage.len(), &rbv_par::Pool::global(), |i, j| {
        dtw_distance_with_penalty(&usage[i], &usage[j], penalty)
    });

    // Performance: whole-request CPI.
    let perf: Vec<f64> = result
        .completed
        .iter()
        .map(|r| r.request_cpi().unwrap_or(0.0))
        .collect();

    // Thresholds: usage distance in the most-similar quartile, CPI gap
    // above the median absolute deviation.
    let mut all_usage = Vec::new();
    for i in 0..usage.len() {
        for j in (i + 1)..usage.len() {
            all_usage.push(dm.get(i, j));
        }
    }
    let usage_threshold = percentile(&all_usage, 0.25).unwrap_or(f64::INFINITY);
    let spread = percentile(&perf, 0.9).unwrap_or(1.0) - percentile(&perf, 0.1).unwrap_or(0.0);
    let perf_threshold = (spread * 0.5).max(1e-6);

    let pairs = multi_metric_pairs(&dm, &perf, usage_threshold, perf_threshold);
    // Prefer pairs processing the same problem identifier — like the
    // paper's example pair, both handling problem 954 — since identical
    // application semantics make the reference maximally trustworthy.
    let same_class = |p: &rbv_core::anomaly::AnomalyPair| {
        result.completed[p.anomaly].class == result.completed[p.reference].class
    };
    let top = pairs
        .iter()
        .find(|p| same_class(p))
        .or_else(|| pairs.first())
        .copied()
        .unwrap_or_else(|| {
            // Fall back to the loosest qualifying pair.
            multi_metric_pairs(&dm, &perf, f64::INFINITY, 0.0)[0]
        });

    let traces = |idx: usize| {
        let r = &result.completed[idx];
        [
            r.series(Metric::Cpi, bucket).values().to_vec(),
            r.series(Metric::L2MissesPerIns, bucket).values().to_vec(),
            r.series(Metric::L2RefsPerIns, bucket).values().to_vec(),
        ]
    };
    AnomalyTraces {
        group: format!(
            "WeBWorK {} / {}",
            result.completed[top.anomaly].class, result.completed[top.reference].class
        ),
        anomaly: traces(top.anomaly),
        reference: traces(top.reference),
        distance: top.usage_distance,
        cpis: (perf[top.anomaly], perf[top.reference]),
    }
}

/// Runs and prints Figure 9.
pub fn run(fast: bool) -> AnomalyTraces {
    section("Figure 9: multi-metric anomaly pair (WeBWorK)");
    let t = compute(fast);
    print_traces(&t, bucket_ins(AppId::Webwork) / 1e6);
    println!();
    println!("(paper: near-identical L2 refs/ins patterns, divergent CPI in some regions,");
    println!(" with the CPI increases matching L2 misses/ins increases)");
    t
}
