//! Figures 12 & 13: contention-easing CPU scheduling (§5.2).
//!
//! Figure 12 reports the proportion of execution time during which ≥2, ≥3,
//! and all 4 cores simultaneously run requests in high-resource-usage
//! periods (L2 misses per instruction at or above the per-application 80th
//! percentile), under the stock and the contention-easing scheduler.
//! Figure 13 reports request CPI — average and worst-case (99 / 99.9
//! percentile) — under both schedulers.

use rbv_core::stats::{mean, percentile};
use rbv_os::{run_simulation, SchedulerPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, scale_of, section};
use rbv_workloads::factory_for;

/// Results for one (application, scheduler) pair, averaged over runs.
#[derive(Debug, Clone)]
pub struct SchedulerOutcome {
    /// Application.
    pub app: AppId,
    /// True for the contention-easing scheduler.
    pub contention_easing: bool,
    /// Fractions of busy time with at least 2 / at least 3 / all 4 cores
    /// simultaneously at high resource usage (Figure 12).
    pub high_ge2: f64,
    /// See [`SchedulerOutcome::high_ge2`].
    pub high_ge3: f64,
    /// See [`SchedulerOutcome::high_ge2`].
    pub high_eq4: f64,
    /// Mean request CPI (Figure 13).
    pub cpi_mean: f64,
    /// 99-percentile request CPI.
    pub cpi_p99: f64,
    /// 99.9-percentile request CPI.
    pub cpi_p999: f64,
}

/// Scheduling experiments run WeBWorK at a larger scale than the rest of
/// the harness: request-phase granularity relative to the 5 ms
/// re-scheduling interval is load-bearing for §5.2.
fn sched_scale(app: AppId) -> f64 {
    match app {
        // Full-scale WeBWorK: its high-usage periods must keep their real
        // multi-millisecond granularity relative to the 5 ms rescheduling
        // interval and the 1 ms prediction unit.
        AppId::Webwork => 1.0,
        _ => scale_of(app),
    }
}

/// The per-application 80th-percentile L2-misses-per-instruction threshold
/// from a stock profiling run (§5.2).
pub fn profile_threshold(app: AppId, fast: bool) -> f64 {
    let n = (requests_of(app, fast) / 2).max(20);
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = 0xB0;
    cfg.concurrency = 12;
    let mut factory = factory_for(app, 0xB0, sched_scale(app));
    let result = run_simulation(cfg, factory.as_mut(), n).expect("valid");
    let mut values = Vec::new();
    for r in &result.completed {
        let (_, mut v) = r
            .timeline
            .weighted_values(rbv_core::series::Metric::L2MissesPerIns);
        values.append(&mut v);
    }
    percentile(&values, 0.8).unwrap_or(0.0)
}

/// Runs both schedulers for one application over `seeds` runs.
pub fn compute_app(app: AppId, fast: bool, seeds: &[u64]) -> Vec<SchedulerOutcome> {
    let threshold = profile_threshold(app, fast);
    let n = if fast {
        requests_of(app, true)
    } else if app == AppId::Webwork {
        // Full-scale WeBWorK requests: fewer of them suffice.
        200
    } else {
        // The paper uses three 1000-request test runs.
        1_000
    };

    let mut out = Vec::new();
    for contention_easing in [false, true] {
        let mut ge2 = 0.0;
        let mut ge3 = 0.0;
        let mut eq4 = 0.0;
        let mut cpis = Vec::new();
        for &seed in seeds {
            let mut cfg =
                SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
            cfg.seed = seed;
            cfg.measure_threshold = Some(threshold);
            // Two runnable requests per core give the contention-easing
            // policy a real choice at each scheduling opportunity.
            cfg.concurrency = 12;
            if contention_easing {
                cfg.scheduler = SchedulerPolicy::ContentionEasing {
                    resched_interval: Cycles::from_millis(5),
                    high_usage_threshold: threshold,
                    alpha: 0.6,
                };
            }
            let mut factory = factory_for(app, seed ^ 0xCE, sched_scale(app));
            let r = run_simulation(cfg, factory.as_mut(), n).expect("valid");
            ge2 += r.stats.high_usage_fraction_at_least(2);
            ge3 += r.stats.high_usage_fraction_at_least(3);
            eq4 += r.stats.high_usage_fraction_at_least(4);
            cpis.extend(r.request_cpis());
        }
        let k = seeds.len() as f64;
        out.push(SchedulerOutcome {
            app,
            contention_easing,
            high_ge2: ge2 / k,
            high_ge3: ge3 / k,
            high_eq4: eq4 / k,
            cpi_mean: mean(&cpis).unwrap_or(f64::NAN),
            cpi_p99: percentile(&cpis, 0.99).unwrap_or(f64::NAN),
            cpi_p999: percentile(&cpis, 0.999).unwrap_or(f64::NAN),
        });
    }
    out
}

/// Runs the Figures 12/13 experiment on TPCH and WeBWorK.
pub fn compute(fast: bool) -> Vec<SchedulerOutcome> {
    let seeds: &[u64] = if fast { &[1] } else { &[1, 2, 3] };
    let mut out = Vec::new();
    for app in [AppId::Tpch, AppId::Webwork] {
        out.extend(compute_app(app, fast, seeds));
    }
    out
}

/// Runs and prints Figures 12 and 13.
pub fn run(fast: bool) -> Vec<SchedulerOutcome> {
    section("Figures 12 & 13: contention-easing CPU scheduling");
    let outcomes = compute(fast);

    println!();
    println!("Figure 12 — proportion of time with simultaneous high-resource-usage cores:");
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.app.to_string(),
                if o.contention_easing {
                    "contention-easing".into()
                } else {
                    "original".into()
                },
                format!("{:.1}%", o.high_ge2 * 100.0),
                format!("{:.2}%", o.high_ge3 * 100.0),
                format!("{:.3}%", o.high_eq4 * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "application",
            "scheduler",
            ">=2 cores",
            ">=3 cores",
            "4 cores",
        ],
        &rows,
    );
    println!("(paper: the 4-core simultaneous-high proportion drops ~25%)");

    println!();
    println!("Figure 13 — request CPI under both schedulers:");
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.app.to_string(),
                if o.contention_easing {
                    "contention-easing".into()
                } else {
                    "original".into()
                },
                format!("{:.2}", o.cpi_mean),
                format!("{:.2}", o.cpi_p99),
                format!("{:.2}", o.cpi_p999),
            ]
        })
        .collect();
    print_table(
        &["application", "scheduler", "average", "99 pct", "99.9 pct"],
        &rows,
    );
    println!("(paper: ~10% lower worst-case CPI, average essentially unchanged)");
    outcomes
}
