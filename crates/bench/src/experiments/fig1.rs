//! Figure 1: per-request CPI distributions, 1-core serial vs 4-core
//! concurrent, for all five applications — the multicore performance
//! obfuscation result.

use rbv_core::stats::{percentile, Histogram};
use rbv_workloads::AppId;

use crate::harness::{bar, print_table, requests_of, section, standard_run};

/// Distribution summary for one (application, mode) cell of Figure 1.
#[derive(Debug, Clone)]
pub struct CpiDistribution {
    /// Application.
    pub app: AppId,
    /// True for the 1-core serial execution row.
    pub serial: bool,
    /// Raw per-request CPI values.
    pub cpis: Vec<f64>,
    /// The 90-percentile marked on each paper plot.
    pub p90: f64,
    /// Count of clear histogram modes (TPCC is multimodal).
    pub modes: usize,
}

/// Paper histogram bin width per application (taken from the figure's
/// y-axis labels).
fn bin_width(app: AppId) -> f64 {
    match app {
        AppId::WebServer => 0.05,
        AppId::Tpcc => 0.1,
        AppId::Tpch => 0.1,
        AppId::Rubis => 0.2,
        AppId::Webwork => 0.02,
        _ => 0.1,
    }
}

fn histogram_of(app: AppId, cpis: &[f64]) -> Histogram {
    let lo = percentile(cpis, 0.0).unwrap_or(0.5).min(1.0);
    let hi = percentile(cpis, 1.0).unwrap_or(5.0).max(lo + 1.0) + 0.2;
    let bins = ((hi - lo) / bin_width(app)).ceil().max(4.0) as usize;
    let mut h = Histogram::new(lo, hi, bins.min(400));
    h.extend(cpis.iter().copied());
    h
}

/// Runs the Figure 1 experiment and returns both rows for every app.
pub fn compute(fast: bool) -> Vec<CpiDistribution> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let n = requests_of(app, fast);
        for serial in [true, false] {
            let result = standard_run(app, 0xF1, n, serial);
            let cpis = result.request_cpis();
            let p90 = percentile(&cpis, 0.9).unwrap_or(f64::NAN);
            let modes = histogram_of(app, &cpis).modes_above(0.025);
            out.push(CpiDistribution {
                app,
                serial,
                cpis,
                p90,
                modes,
            });
        }
    }
    out
}

/// Runs and prints Figure 1.
pub fn run(fast: bool) -> Vec<CpiDistribution> {
    section("Figure 1: request CPI distributions (1-core vs 4-core)");
    let rows = compute(fast);

    let mut table = Vec::new();
    for pair in rows.chunks(2) {
        let serial = &pair[0];
        let conc = &pair[1];
        let p = |v: &[f64], q| percentile(v, q).unwrap_or(f64::NAN);
        table.push(vec![
            serial.app.to_string(),
            format!("{:.2}", p(&serial.cpis, 0.5)),
            format!("{:.2}", serial.p90),
            format!("{:.2}", p(&conc.cpis, 0.5)),
            format!("{:.2}", conc.p90),
            format!("{:.2}x", conc.p90 / serial.p90),
            format!("{}", serial.modes),
        ]);
    }
    print_table(
        &[
            "application",
            "1-core p50",
            "1-core p90",
            "4-core p50",
            "4-core p90",
            "p90 ratio",
            "serial modes",
        ],
        &table,
    );

    for pair in rows.chunks(2) {
        for dist in pair {
            let mode = if dist.serial { "1-core" } else { "4-core" };
            println!();
            println!(
                "{} ({mode}), 90%tile = {:.2} CPI, bins of {:.2}:",
                dist.app,
                dist.p90,
                bin_width(dist.app)
            );
            let h = histogram_of(dist.app, &dist.cpis);
            let probs: Vec<(f64, f64)> = h.probabilities().collect();
            let max_p = probs.iter().map(|&(_, p)| p).fold(0.0, f64::max);
            for (center, p) in probs {
                if p > 0.002 {
                    println!("  CPI {center:5.2}  {p:5.3}  {}", bar(p, max_p));
                }
            }
        }
    }
    rows
}
