//! Raw data export: per-request sample-period timelines as CSV on stdout,
//! for external plotting or analysis of any figure.

use rbv_workloads::AppId;

use crate::harness::{requests_of, standard_run};

/// Parses an application name as accepted by `repro dump <app>`.
pub fn parse_app(name: &str) -> Option<AppId> {
    match name.to_ascii_lowercase().as_str() {
        "web" | "webserver" | "web-server" => Some(AppId::WebServer),
        "tpcc" | "tpc-c" => Some(AppId::Tpcc),
        "tpch" | "tpc-h" => Some(AppId::Tpch),
        "rubis" => Some(AppId::Rubis),
        "webwork" => Some(AppId::Webwork),
        _ => None,
    }
}

/// Runs `app` under the standard configuration and writes one CSV row per
/// sample period to `out`.
///
/// Columns: `request_id,class,arrived_cycles,finished_cycles,period_index,
/// cycles,instructions,l2_refs,l2_misses`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_csv(app: AppId, fast: bool, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    let result = standard_run(app, 0xD0, requests_of(app, fast), false);
    writeln!(
        out,
        "request_id,class,arrived_cycles,finished_cycles,period_index,cycles,instructions,l2_refs,l2_misses"
    )?;
    for r in &result.completed {
        for (i, p) in r.timeline.periods().iter().enumerate() {
            writeln!(
                out,
                "{},{},{},{},{},{:.0},{:.0},{:.3},{:.3}",
                r.id,
                r.class,
                r.arrived_at.get(),
                r.finished_at.get(),
                i,
                p.cycles,
                p.instructions,
                p.l2_refs,
                p.l2_misses,
            )?;
        }
    }
    Ok(())
}

/// Writes one CSV row per system call occurrence to `out`.
///
/// Columns: `request_id,class,at_cycles,request_cycles,request_ins,name`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_syscalls_csv(
    app: AppId,
    fast: bool,
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    let result = standard_run(app, 0xD0, requests_of(app, fast), false);
    writeln!(
        out,
        "request_id,class,at_cycles,request_cycles,request_ins,name"
    )?;
    for r in &result.completed {
        for sc in &r.syscalls {
            writeln!(
                out,
                "{},{},{},{:.0},{:.0},{}",
                r.id,
                r.class,
                sc.at.get(),
                sc.request_cycles,
                sc.request_ins,
                sc.name
            )?;
        }
    }
    Ok(())
}

/// Runs the dump to stdout; `syscalls` selects the syscall stream instead
/// of the counter timelines. Wall-clock goes to stderr so the CSV stream
/// stays clean.
pub fn run(app: AppId, fast: bool, syscalls: bool) {
    let mut profiler = rbv_telemetry::SelfProfiler::new();
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    profiler.time("dump", || {
        if syscalls {
            write_syscalls_csv(app, fast, &mut lock).expect("writing to stdout");
        } else {
            write_csv(app, fast, &mut lock).expect("writing to stdout");
        }
    });
    eprintln!(
        "[dump wall-clock {:.2}s]",
        profiler.seconds("dump").unwrap_or(0.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_parse() {
        assert_eq!(parse_app("web"), Some(AppId::WebServer));
        assert_eq!(parse_app("TPCC"), Some(AppId::Tpcc));
        assert_eq!(parse_app("tpc-h"), Some(AppId::Tpch));
        assert_eq!(parse_app("RUBiS"), Some(AppId::Rubis));
        assert_eq!(parse_app("webwork"), Some(AppId::Webwork));
        assert_eq!(parse_app("mbench"), None);
    }

    #[test]
    fn syscall_csv_is_well_formed() {
        let mut buf = Vec::new();
        write_syscalls_csv(AppId::WebServer, true, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        let cols = lines.next().expect("header").split(',').count();
        assert_eq!(cols, 6);
        assert!(lines.clone().count() > 100);
        for line in lines {
            assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn csv_has_header_and_consistent_columns() {
        let mut buf = Vec::new();
        write_csv(AppId::Tpcc, true, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        let mut lines = text.lines();
        let header = lines.next().expect("header");
        let cols = header.split(',').count();
        assert_eq!(cols, 9);
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
            rows += 1;
        }
        assert!(rows > 50, "expected many periods, got {rows}");
    }
}
