//! Figure 2: intra-request behavior variations — CPI, L2 references per
//! instruction, and L2 miss ratio over the course of one representative
//! request per application.

use rbv_core::series::Metric;
use rbv_os::CompletedRequest;
use rbv_workloads::{AppId, RequestClass, RubisInteraction, TpccTxn};

use crate::harness::{bucket_ins, requests_of, scale_of, section, standard_run};

/// One application's representative request trace.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Application.
    pub app: AppId,
    /// Class of the representative request (the paper names one per app).
    pub class: String,
    /// Progress bucket size in instructions.
    pub bucket_ins: f64,
    /// CPI per bucket.
    pub cpi: Vec<f64>,
    /// L2 references per instruction per bucket.
    pub refs_per_ins: Vec<f64>,
    /// L2 misses per reference per bucket.
    pub miss_ratio: Vec<f64>,
}

impl RequestTrace {
    /// Duration-weighted coefficient of variation of the CPI trace — the
    /// headline "significant metric variations" of §2.3.
    pub fn cpi_cov(&self) -> f64 {
        let lens = vec![1.0; self.cpi.len()];
        rbv_core::stats::coefficient_of_variation(&lens, &self.cpi).unwrap_or(0.0)
    }
}

/// Picks the paper's representative class per application.
fn wanted(app: AppId, class: &RequestClass) -> bool {
    match (app, class) {
        (AppId::WebServer, RequestClass::WebFile(c)) => *c == 2,
        (AppId::Tpcc, RequestClass::TpccTxn(t)) => *t == TpccTxn::NewOrder,
        (AppId::Tpch, RequestClass::TpchQuery(q)) => *q == 20,
        (AppId::Rubis, RequestClass::Rubis(i)) => *i == RubisInteraction::SearchItemsByCategory,
        (AppId::Webwork, RequestClass::WebworkProblem(_)) => true,
        _ => false,
    }
}

fn trace_of(app: AppId, request: &CompletedRequest) -> RequestTrace {
    let b = bucket_ins(app);
    RequestTrace {
        app,
        class: request.class.to_string(),
        bucket_ins: b,
        cpi: request.series(Metric::Cpi, b).values().to_vec(),
        refs_per_ins: request.series(Metric::L2RefsPerIns, b).values().to_vec(),
        miss_ratio: request.series(Metric::L2MissesPerRef, b).values().to_vec(),
    }
}

/// Runs the Figure 2 experiment: one representative trace per application.
pub fn compute(fast: bool) -> Vec<RequestTrace> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let n = requests_of(app, fast).min(120);
        let result = standard_run(app, 0xF2, n, false);
        // Median-length request among the wanted class.
        let mut candidates: Vec<&CompletedRequest> = result
            .completed
            .iter()
            .filter(|r| wanted(app, &r.class))
            .collect();
        if candidates.is_empty() {
            candidates = result.completed.iter().collect();
        }
        candidates.sort_by(|a, b| {
            a.timeline
                .total_instructions()
                .partial_cmp(&b.timeline.total_instructions())
                .expect("finite")
        });
        let representative = candidates[candidates.len() / 2];
        out.push(trace_of(app, representative));
    }
    out
}

/// Runs and prints Figure 2.
pub fn run(fast: bool) -> Vec<RequestTrace> {
    section("Figure 2: behavior variations within a single request");
    let traces = compute(fast);
    for t in &traces {
        let total_m = t.cpi.len() as f64 * t.bucket_ins / 1e6;
        println!();
        println!(
            "{} — {} ({} buckets of {:.2} M ins; {:.1} M ins total at scale {}; CPI CoV {:.2})",
            t.app,
            t.class,
            t.cpi.len(),
            t.bucket_ins / 1e6,
            total_m,
            scale_of(t.app),
            t.cpi_cov()
        );
        println!("  progress(Mins)    CPI   L2refs/ins  L2miss/ref");
        let step = (t.cpi.len() / 24).max(1);
        for i in (0..t.cpi.len()).step_by(step) {
            println!(
                "  {:>12.3}  {:>6.2}   {:>9.5}   {:>9.3}",
                (i as f64 + 0.5) * t.bucket_ins / 1e6,
                t.cpi[i],
                t.refs_per_ins[i],
                t.miss_ratio[i],
            );
        }
    }
    traces
}
