//! Figure 8: anomaly detection within a semantic group — the TPCH Q20
//! request farthest from its group centroid, compared against the centroid
//! as reference.

use rbv_core::anomaly::{centroid_outliers, divergent_regions};
use rbv_core::cluster::DistanceMatrix;
use rbv_core::distance::{dtw_distance_with_penalty, length_penalty};
use rbv_core::series::Metric;
use rbv_os::CompletedRequest;
use rbv_workloads::{AppId, RequestClass};

use crate::harness::{bucket_ins, requests_of, section, standard_run};

/// The anomaly/reference trace pair of Figure 8 (or 9).
#[derive(Debug, Clone)]
pub struct AnomalyTraces {
    /// Group label.
    pub group: String,
    /// Anomaly's CPI / misses-per-ins / refs-per-ins traces.
    pub anomaly: [Vec<f64>; 3],
    /// Reference's traces in the same order.
    pub reference: [Vec<f64>; 3],
    /// The anomaly's distance from the centroid.
    pub distance: f64,
    /// Whole-request CPI of the anomaly and reference.
    pub cpis: (f64, f64),
}

fn traces(r: &CompletedRequest, bucket: f64) -> [Vec<f64>; 3] {
    [
        r.series(Metric::Cpi, bucket).values().to_vec(),
        r.series(Metric::L2MissesPerIns, bucket).values().to_vec(),
        r.series(Metric::L2RefsPerIns, bucket).values().to_vec(),
    ]
}

/// Runs the Figure 8 experiment: Q20 group, DTW+penalty CPI distances.
pub fn compute(fast: bool) -> AnomalyTraces {
    let n = requests_of(AppId::Tpch, fast).max(60);
    let result = standard_run(AppId::Tpch, 0xF8, n, false);
    let group: Vec<&CompletedRequest> = result
        .completed
        .iter()
        .filter(|r| r.class == RequestClass::TpchQuery(20))
        .collect();
    assert!(group.len() >= 3, "need several Q20 requests");

    let bucket = bucket_ins(AppId::Tpch);
    let series: Vec<Vec<f64>> = group
        .iter()
        .map(|r| r.series(Metric::Cpi, bucket).values().to_vec())
        .collect();
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let penalty = length_penalty(&refs, 100_000);
    let dm = DistanceMatrix::compute_par(group.len(), &rbv_par::Pool::global(), |i, j| {
        dtw_distance_with_penalty(&series[i], &series[j], penalty)
    });
    let (centroid, outliers) = centroid_outliers(&dm).expect("group size >= 2");
    let worst = outliers[0];

    AnomalyTraces {
        group: "TPCH Q20".into(),
        anomaly: traces(group[worst.index], bucket),
        reference: traces(group[centroid], bucket),
        distance: worst.distance,
        cpis: (
            group[worst.index].request_cpi().unwrap_or(f64::NAN),
            group[centroid].request_cpi().unwrap_or(f64::NAN),
        ),
    }
}

/// Prints an anomaly/reference trace pair (shared with Figure 9).
pub fn print_traces(t: &AnomalyTraces, bucket_m: f64) {
    println!(
        "group {} — anomaly request CPI {:.2} vs reference {:.2} (centroid distance {:.1})",
        t.group, t.cpis.0, t.cpis.1, t.distance
    );
    println!();
    println!("  progress(Mins)   anomaly: CPI  mpi      rpi     | reference: CPI  mpi      rpi");
    let len = t.anomaly[0].len().max(t.reference[0].len());
    let step = (len / 20).max(1);
    let cell = |v: &[f64], i: usize, w: usize| {
        v.get(i)
            .map_or(" ".repeat(w), |x| format!("{x:>w$.4}", w = w))
    };
    for i in (0..len).step_by(step) {
        println!(
            "  {:>13.2}   {} {} {} | {} {} {}",
            (i as f64 + 0.5) * bucket_m,
            cell(&t.anomaly[0], i, 6),
            cell(&t.anomaly[1], i, 8),
            cell(&t.anomaly[2], i, 8),
            cell(&t.reference[0], i, 6),
            cell(&t.reference[1], i, 8),
            cell(&t.reference[2], i, 8),
        );
    }
}

/// Runs and prints Figure 8, localizing the divergent regions via DTW
/// alignment.
pub fn run(fast: bool) -> AnomalyTraces {
    section("Figure 8: anomalous TPCH request vs group centroid (Q20)");
    let t = compute(fast);
    let bucket_m = bucket_ins(AppId::Tpch) / 1e6;
    print_traces(&t, bucket_m);
    // Where exactly does the anomaly run slower? Align the CPI traces and
    // report the contiguous elevated regions.
    let spread = t.anomaly[0]
        .iter()
        .chain(&t.reference[0])
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - t.anomaly[0]
            .iter()
            .chain(&t.reference[0])
            .cloned()
            .fold(f64::INFINITY, f64::min);
    let regions = divergent_regions(&t.anomaly[0], &t.reference[0], spread, spread * 0.25);
    println!();
    if regions.is_empty() {
        println!("no CPI region diverges by more than {:.2}", spread * 0.25);
    } else {
        println!("divergent CPI regions (anomaly above reference):");
        for r in &regions {
            println!(
                "  {:.1}-{:.1} M ins: +{:.2} CPI",
                r.anomaly_range.0 as f64 * bucket_m,
                (r.anomaly_range.1 + 1) as f64 * bucket_m,
                r.mean_gap
            );
        }
    }
    println!();
    println!("(paper: the anomaly's elevated CPI regions track elevated L2 misses/ins)");
    t
}
