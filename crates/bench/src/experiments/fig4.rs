//! Figure 4: cumulative probability of the next-system-call distance, in
//! time and in instruction count, from an arbitrary instant of request
//! execution.

use rbv_os::result::next_syscall_cumulative;
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, scale_of, section, standard_run};

/// Cumulative next-syscall-distance curves for one application.
#[derive(Debug, Clone)]
pub struct SyscallDistance {
    /// Application.
    pub app: AppId,
    /// `(distance_us, P(next syscall within distance))` points.
    pub time_curve: Vec<(f64, f64)>,
    /// `(distance_instructions, P)` points.
    pub ins_curve: Vec<(f64, f64)>,
}

impl SyscallDistance {
    /// P(next syscall within `us` microseconds).
    pub fn p_within_us(&self, us: f64) -> f64 {
        self.time_curve
            .iter()
            .find(|&&(d, _)| (d - us).abs() < 1e-9)
            .map_or(0.0, |&(_, p)| p)
    }
}

/// Log-spaced distances matching the paper's x-axes.
const US_POINTS: [f64; 8] = [4.0, 16.0, 64.0, 256.0, 1_000.0, 4_000.0, 16_000.0, 64_000.0];
const INS_POINTS: [f64; 8] = [4e3, 16e3, 64e3, 256e3, 1e6, 4e6, 16e6, 64e6];

/// Runs the Figure 4 experiment.
pub fn compute(fast: bool) -> Vec<SyscallDistance> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let result = standard_run(app, 0xF4, requests_of(app, fast), false);
        let gaps = result.syscall_gaps();
        let cycle_gaps: Vec<f64> = gaps.iter().map(|g| g.cycles).collect();
        let ins_gaps: Vec<f64> = gaps.iter().map(|g| g.instructions).collect();
        // Distances are reported in paper-scale units: the harness runs
        // long-request applications scaled down by `scale_of`, which
        // shrinks syscall gaps proportionally, so a paper distance `d`
        // corresponds to a simulated distance `d * scale`.
        let s = scale_of(app);
        let time_curve = US_POINTS
            .iter()
            .map(|&us| (us, next_syscall_cumulative(&cycle_gaps, us * 3_000.0 * s)))
            .collect();
        let ins_curve = INS_POINTS
            .iter()
            .map(|&i| (i, next_syscall_cumulative(&ins_gaps, i * s)))
            .collect();
        out.push(SyscallDistance {
            app,
            time_curve,
            ins_curve,
        });
    }
    out
}

/// Runs and prints Figure 4.
pub fn run(fast: bool) -> Vec<SyscallDistance> {
    section("Figure 4: next system call distance distributions");
    let curves = compute(fast);

    println!();
    println!("(A) distances in time — cumulative probability:");
    let mut rows = Vec::new();
    for c in &curves {
        let mut row = vec![c.app.to_string()];
        row.extend(
            c.time_curve
                .iter()
                .map(|&(_, p)| format!("{:.0}%", p * 100.0)),
        );
        rows.push(row);
    }
    print_table(
        &[
            "application",
            "4us",
            "16us",
            "64us",
            "256us",
            "1ms",
            "4ms",
            "16ms",
            "64ms",
        ],
        &rows,
    );

    println!();
    println!("(B) distances in instruction count — cumulative probability:");
    let mut rows = Vec::new();
    for c in &curves {
        let mut row = vec![c.app.to_string()];
        row.extend(
            c.ins_curve
                .iter()
                .map(|&(_, p)| format!("{:.0}%", p * 100.0)),
        );
        rows.push(row);
    }
    print_table(
        &[
            "application",
            "4K",
            "16K",
            "64K",
            "256K",
            "1M",
            "4M",
            "16M",
            "64M",
        ],
        &rows,
    );
    println!(
        "(paper anchors: web 97% / TPCH 83% / RUBiS 72% within 16us; TPCC 82% / WeBWorK 81% within 1ms)"
    );
    curves
}
