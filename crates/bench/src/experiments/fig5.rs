//! Figure 5: overhead of system call-triggered sampling vs interrupt-based
//! sampling at matched overall sampling frequency.

use rbv_os::{run_simulation, RunResult, SimConfig};
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, section, standard_factory};

/// Overhead comparison for one application.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Application.
    pub app: AppId,
    /// Total samples under the interrupt approach.
    pub interrupt_samples: u64,
    /// Total samples under the syscall-triggered approach.
    pub syscall_samples: u64,
    /// Interrupt-approach overhead in cycles.
    pub interrupt_overhead: f64,
    /// Syscall-approach overhead in cycles.
    pub syscall_overhead: f64,
    /// Interrupt-approach base cost as a fraction of CPU consumption (the
    /// percentages above the Figure 5 bars).
    pub base_cost: f64,
    /// Fraction of the syscall approach's samples that still needed the
    /// backup interrupt.
    pub backup_fraction: f64,
}

impl OverheadRow {
    /// Normalized syscall-approach cost (1.0 = interrupt approach).
    pub fn normalized(&self) -> f64 {
        if self.interrupt_overhead > 0.0 {
            self.syscall_overhead / self.interrupt_overhead
        } else {
            f64::NAN
        }
    }

    /// Overhead saving of the syscall-triggered approach.
    pub fn savings(&self) -> f64 {
        1.0 - self.normalized()
    }
}

fn total_samples(r: &RunResult) -> u64 {
    r.stats.samples_inkernel + r.stats.samples_interrupt
}

/// Runs the Figure 5 experiment.
pub fn compute(fast: bool) -> Vec<OverheadRow> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let n = requests_of(app, fast);
        let period = app.sampling_period_micros();

        let mut f = standard_factory(app, 0xF5);
        let mut cfg = SimConfig::paper_default().with_interrupt_sampling(period);
        cfg.seed = 0xF5;
        let interrupt = run_simulation(cfg, f.as_mut(), n).expect("valid");

        // Frequency matching (§3.2: "we set Tbackup_int and Tsyscall_min
        // carefully for each application such that [both approaches have]
        // similar overall sampling frequencies"): start from
        // t_syscall_min = 0.6 * period with the backup slightly above the
        // period, then rescale t_syscall_min once by the observed
        // sample-count ratio.
        let target = total_samples(&interrupt);
        let mut t_min = (period * 6 / 10).max(1);
        let t_backup = period * 6 / 5;
        let mut f = standard_factory(app, 0xF5);
        let mut cfg = SimConfig::paper_default().with_syscall_sampling(t_min, t_backup);
        cfg.seed = 0xF5;
        let mut syscall = run_simulation(cfg, f.as_mut(), n).expect("valid");
        let ratio = total_samples(&syscall) as f64 / target.max(1) as f64;
        if !(0.9..=1.1).contains(&ratio) {
            t_min = ((t_min as f64 * ratio) as u64).clamp(1, t_backup - 1);
            let mut f = standard_factory(app, 0xF5);
            let mut cfg = SimConfig::paper_default().with_syscall_sampling(t_min, t_backup);
            cfg.seed = 0xF5;
            syscall = run_simulation(cfg, f.as_mut(), n).expect("valid");
        }

        out.push(OverheadRow {
            app,
            interrupt_samples: total_samples(&interrupt),
            syscall_samples: total_samples(&syscall),
            interrupt_overhead: interrupt.stats.sampling_overhead_cycles(),
            syscall_overhead: syscall.stats.sampling_overhead_cycles(),
            base_cost: interrupt.stats.sampling_overhead_cycles()
                / interrupt
                    .completed
                    .iter()
                    .map(|r| r.cpu_cycles())
                    .sum::<f64>()
                    .max(1.0),
            backup_fraction: syscall.stats.samples_interrupt as f64
                / total_samples(&syscall).max(1) as f64,
        });
    }
    out
}

/// Runs and prints Figure 5.
pub fn run(fast: bool) -> Vec<OverheadRow> {
    section("Figure 5: syscall-triggered vs interrupt-based sampling overhead");
    let rows = compute(fast);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                format!("{}", r.interrupt_samples),
                format!("{}", r.syscall_samples),
                format!("{:.2}", r.normalized()),
                format!("{:.0}%", r.savings() * 100.0),
                format!("{:.3}%", r.base_cost * 100.0),
                format!("{:.0}%", r.backup_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "application",
            "int samples",
            "sc samples",
            "normalized cost",
            "savings",
            "base cost",
            "backup share",
        ],
        &table,
    );
    println!("(paper: syscall-triggered sampling saves 18-38% across the five applications)");
    rows
}
