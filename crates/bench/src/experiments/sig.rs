//! §3.2 "Behavior Transition Signals": sampling only at the system calls
//! most correlated with behavior transitions improves the captured
//! variation at equal sampling cost (the paper's CoV rises 0.60 → 0.65
//! for the web server).

use std::collections::HashSet;

use rbv_core::series::Metric;
use rbv_core::stats::coefficient_of_variation;
use rbv_os::{run_simulation, RunResult, SamplingPolicy, SimConfig};
use rbv_sim::Cycles;
use rbv_workloads::{AppId, SyscallName};

use crate::harness::{print_table, requests_of, section, standard_factory};

/// Comparison between plain syscall-triggered and transition-signal
/// sampling.
#[derive(Debug, Clone)]
pub struct SignalComparison {
    /// Captured CPI CoV with plain syscall-triggered sampling.
    pub baseline_cov: f64,
    /// Captured CPI CoV with transition-signal triggers.
    pub enhanced_cov: f64,
    /// Samples taken by the baseline.
    pub baseline_samples: u64,
    /// Samples taken by the enhanced policy.
    pub enhanced_samples: u64,
}

fn sample_cov(result: &RunResult) -> f64 {
    let mut lengths = Vec::new();
    let mut values = Vec::new();
    for r in &result.completed {
        let (mut l, mut v) = r.timeline.weighted_values(Metric::Cpi);
        lengths.append(&mut l);
        values.append(&mut v);
    }
    coefficient_of_variation(&lengths, &values).unwrap_or(0.0)
}

/// Runs the comparison on the web server (the paper's case study).
pub fn compute(fast: bool) -> SignalComparison {
    let n = requests_of(AppId::WebServer, fast);

    // Plain syscall-triggered sampling at t_min matching the 10 us period.
    let mut f = standard_factory(AppId::WebServer, 0x516);
    let mut cfg = SimConfig::paper_default().with_syscall_sampling(6, 40);
    cfg.seed = 0x516;
    let baseline = run_simulation(cfg, f.as_mut(), n).expect("valid");

    // Transition-signal triggers (the web server subset of §3.2), with a
    // smaller t_syscall_min so both approaches generate similar overall
    // sampling frequencies.
    let triggers: HashSet<SyscallName> = [
        SyscallName::Writev,
        SyscallName::Lseek,
        SyscallName::Stat,
        SyscallName::Poll,
    ]
    .into_iter()
    .collect();
    let mut f = standard_factory(AppId::WebServer, 0x516);
    let mut cfg = SimConfig::paper_default();
    cfg.sampling = SamplingPolicy::TransitionSignals {
        triggers,
        t_syscall_min: Cycles::from_micros(2),
        t_backup_int: Cycles::from_micros(150),
    };
    cfg.seed = 0x516;
    let enhanced = run_simulation(cfg, f.as_mut(), n).expect("valid");

    SignalComparison {
        baseline_cov: sample_cov(&baseline),
        enhanced_cov: sample_cov(&enhanced),
        baseline_samples: baseline.stats.samples_inkernel + baseline.stats.samples_interrupt,
        enhanced_samples: enhanced.stats.samples_inkernel + enhanced.stats.samples_interrupt,
    }
}

/// Runs and prints the transition-signal comparison.
pub fn run(fast: bool) -> SignalComparison {
    section("§3.2: behavior transition signals (web server)");
    let c = compute(fast);
    print_table(
        &["policy", "samples", "captured CPI CoV"],
        &[
            vec![
                "syscall-triggered (all calls)".into(),
                format!("{}", c.baseline_samples),
                format!("{:.3}", c.baseline_cov),
            ],
            vec![
                "transition signals {writev,lseek,stat,poll}".into(),
                format!("{}", c.enhanced_samples),
                format!("{:.3}", c.enhanced_cov),
            ],
        ],
    );
    println!("(paper: CoV of produced samples rises from 0.60 to 0.65 at equal cost)");
    c
}
