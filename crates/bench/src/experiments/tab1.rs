//! Table 1: per-sample cost and additional hardware events of counter
//! sampling, in an in-kernel context vs at an APIC interrupt, under
//! Mbench-Spin vs Mbench-Data.

use rbv_os::observer::{measure_sampling_cost, SampleCost, SamplingContext};
use rbv_sim::SimRng;
use rbv_workloads::mbench::{mbench_data_trace, mbench_spin_trace};

use crate::harness::{print_table, section};

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Sampling context.
    pub context: SamplingContext,
    /// Workload name ("Mbench-Spin" / "Mbench-Data").
    pub workload: &'static str,
    /// Measured mean per-sample cost.
    pub cost: SampleCost,
}

/// Runs the Table 1 measurement.
pub fn compute(fast: bool) -> Vec<Tab1Row> {
    let samples = if fast { 100 } else { 1_000 };
    // Mbench-Data streams ~400 KB between samples (comfortably replacing
    // the 32 KB L1, as on the real machine at ~10 µs sampling periods).
    let accesses = 100_000;
    let mut rows = Vec::new();
    for context in [SamplingContext::InKernel, SamplingContext::Interrupt] {
        let mut spin = mbench_spin_trace();
        rows.push(Tab1Row {
            context,
            workload: "Mbench-Spin",
            cost: measure_sampling_cost(&mut spin, context, samples, 200),
        });
        let mut data = mbench_data_trace(SimRng::seed_from(0x7a1));
        rows.push(Tab1Row {
            context,
            workload: "Mbench-Data",
            cost: measure_sampling_cost(&mut data, context, samples, accesses),
        });
    }
    rows
}

/// Runs and prints Table 1.
pub fn run(fast: bool) -> Vec<Tab1Row> {
    section("Table 1: per-sample cost and additional event counts");
    let rows = compute(fast);
    let paper: &[(&str, &str, f64, f64, f64, f64)] = &[
        ("in-kernel", "Mbench-Spin", 0.42, 1_270.0, 649.0, 0.0),
        ("in-kernel", "Mbench-Data", 0.46, 1_374.0, 649.0, 13.0),
        ("interrupt", "Mbench-Spin", 0.76, 2_276.0, 724.0, 0.0),
        ("interrupt", "Mbench-Data", 0.80, 2_388.0, 734.0, 12.0),
    ];
    let mut table = Vec::new();
    for (row, p) in rows.iter().zip(paper) {
        let ctx = match row.context {
            SamplingContext::InKernel => "in-kernel",
            SamplingContext::Interrupt => "interrupt",
        };
        table.push(vec![
            ctx.to_string(),
            row.workload.to_string(),
            format!("{:.2} ({:.2})", row.cost.micros(), p.2),
            format!("{:.0} ({:.0})", row.cost.cycles, p.3),
            format!("{:.0} ({:.0})", row.cost.instructions, p.4),
            format!("{:.1} ({:.0})", row.cost.l2_refs, p.5),
            format!("{:.2}", row.cost.l2_misses),
        ]);
    }
    print_table(
        &[
            "context",
            "workload",
            "us/sample (paper)",
            "cycles (paper)",
            "ins (paper)",
            "L2 refs (paper)",
            "L2 miss",
        ],
        &table,
    );
    println!("(parenthesized values: the paper's Xeon 5160 measurements)");
    rows
}
