//! Figure 3: captured request behavior variations — the weighted
//! coefficient of variation (Equation 1) per metric, comparing
//! inter-request-only variation against variation with intra-request
//! fluctuations included.

use rbv_core::series::Metric;
use rbv_core::stats::coefficient_of_variation;
use rbv_os::RunResult;
use rbv_workloads::AppId;

use crate::harness::{bar, print_table, requests_of, section, standard_run, REPORT_METRICS};

/// One (application, metric) cell of Figure 3.
#[derive(Debug, Clone)]
pub struct CovCell {
    /// Application.
    pub app: AppId,
    /// Metric.
    pub metric: Metric,
    /// CoV when each request is assumed uniform over its execution.
    pub inter_only: f64,
    /// CoV with intra-request sample periods included.
    pub with_intra: f64,
}

/// CoV treating each request as one uniform period.
fn inter_request_cov(result: &RunResult, metric: Metric) -> f64 {
    let mut lengths = Vec::new();
    let mut values = Vec::new();
    for r in &result.completed {
        if let Some(v) = r.timeline.average(metric) {
            lengths.push(r.timeline.total_instructions());
            values.push(v);
        }
    }
    coefficient_of_variation(&lengths, &values).unwrap_or(0.0)
}

/// CoV over every sample period of every request (inter + intra).
fn full_cov(result: &RunResult, metric: Metric) -> f64 {
    let mut lengths = Vec::new();
    let mut values = Vec::new();
    for r in &result.completed {
        let (mut l, mut v) = r.timeline.weighted_values(metric);
        lengths.append(&mut l);
        values.append(&mut v);
    }
    coefficient_of_variation(&lengths, &values).unwrap_or(0.0)
}

/// Runs the Figure 3 experiment.
pub fn compute(fast: bool) -> Vec<CovCell> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let result = standard_run(app, 0xF3, requests_of(app, fast), false);
        for metric in REPORT_METRICS {
            out.push(CovCell {
                app,
                metric,
                inter_only: inter_request_cov(&result, metric),
                with_intra: full_cov(&result, metric),
            });
        }
    }
    out
}

/// Runs and prints Figure 3.
pub fn run(fast: bool) -> Vec<CovCell> {
    section("Figure 3: captured behavior variations (Eq. 1 CoV)");
    let cells = compute(fast);
    for metric in REPORT_METRICS {
        println!();
        println!("Captured variation on {metric}:");
        let max = cells
            .iter()
            .filter(|c| c.metric == metric)
            .map(|c| c.with_intra)
            .fold(0.0, f64::max);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .filter(|c| c.metric == metric)
            .map(|c| {
                vec![
                    c.app.to_string(),
                    format!("{:.3}", c.inter_only),
                    format!("{:.3}", c.with_intra),
                    bar(c.with_intra, max),
                ]
            })
            .collect();
        print_table(
            &["application", "inter-request", "+intra-request", ""],
            &rows,
        );
    }
    cells
}
