//! Figure 6: two inherently similar TPC-C requests whose executions drift
//! apart — the motivating example for dynamic time warping over the L1
//! distance.

use rbv_core::distance::{dtw_distance_with_penalty, l1_distance, length_penalty};
use rbv_core::series::Metric;
use rbv_workloads::{AppId, RequestClass, TpccTxn};

use crate::harness::{bucket_ins, requests_of, section, standard_run};

/// The drifting pair and its distances under both measures.
#[derive(Debug, Clone)]
pub struct DriftPair {
    /// First request's CPI series.
    pub a: Vec<f64>,
    /// Second request's CPI series.
    pub b: Vec<f64>,
    /// The computed length/asynchrony penalty `p`.
    pub penalty: f64,
    /// L1 distance (Equation 2).
    pub l1: f64,
    /// DTW distance with asynchrony penalty.
    pub dtw: f64,
}

/// Finds, among concurrent new-order transactions, the pair whose DTW
/// distance is smallest relative to its L1 distance — i.e. inherently
/// similar requests whose peaks shifted.
pub fn compute(fast: bool) -> DriftPair {
    let n = requests_of(AppId::Tpcc, fast);
    let result = standard_run(AppId::Tpcc, 0xF6, n, false);
    let bucket = bucket_ins(AppId::Tpcc);

    let series: Vec<Vec<f64>> = result
        .completed
        .iter()
        .filter(|r| r.class == RequestClass::TpccTxn(TpccTxn::NewOrder))
        .map(|r| r.series(Metric::Cpi, bucket).values().to_vec())
        .collect();
    assert!(series.len() >= 2, "need at least two new-order requests");
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let penalty = length_penalty(&refs, 200_000);

    let mut best: Option<(usize, usize, f64, f64)> = None;
    for i in 0..series.len() {
        for j in (i + 1)..series.len().min(i + 40) {
            let l1 = l1_distance(&series[i], &series[j], penalty);
            let dtw = dtw_distance_with_penalty(&series[i], &series[j], penalty);
            if l1 <= 0.0 {
                continue;
            }
            let ratio = dtw / l1;
            if best.is_none_or(|(.., bl1, bdtw)| ratio < bdtw / bl1) {
                best = Some((i, j, l1, dtw));
            }
        }
    }
    let (i, j, l1, dtw) = best.expect("at least one pair");
    DriftPair {
        a: series[i].clone(),
        b: series[j].clone(),
        penalty,
        l1,
        dtw,
    }
}

/// Runs and prints Figure 6.
pub fn run(fast: bool) -> DriftPair {
    section("Figure 6: similar TPCC requests drifting apart");
    let pair = compute(fast);
    println!(
        "penalty p = {:.2}; L1 distance = {:.2}; DTW+penalty distance = {:.2} ({:.0}% of L1)",
        pair.penalty,
        pair.l1,
        pair.dtw,
        100.0 * pair.dtw / pair.l1
    );
    println!();
    println!("  bucket   request A CPI   request B CPI");
    let len = pair.a.len().max(pair.b.len());
    let step = (len / 28).max(1);
    for i in (0..len).step_by(step) {
        let fmt = |s: &[f64]| {
            s.get(i)
                .map_or(String::from("      -"), |v| format!("{v:7.2}"))
        };
        println!("  {:>6}   {:>13}   {:>13}", i, fmt(&pair.a), fmt(&pair.b));
    }
    pair
}
