//! Figure 7: request classification effectiveness under the five request
//! differencing measures of §4.1, scored as cluster members' divergence
//! from their centroids on (A) request CPU time and (B) request peak
//! (90-percentile) CPI.

use rbv_core::cluster::{divergence_from_centroid, k_medoids_par, DistanceMatrix};
use rbv_core::distance::{
    average_metric_distance, dtw_distance, dtw_distance_with_penalty, l1_distance, length_penalty,
    levenshtein,
};
use rbv_core::series::Metric;
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, section, standard_run};

/// The five differencing measures compared in Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Levenshtein edit distance of request system call sequences
    /// (the Magpie-style software-only baseline).
    SyscallLevenshtein,
    /// Difference of average request CPIs (the \[27\] baseline).
    AverageCpi,
    /// L1 distance of CPI variation patterns (Equation 2).
    L1,
    /// Plain dynamic time warping.
    Dtw,
    /// DTW with the asynchrony penalty (the paper's best measure).
    DtwWithPenalty,
}

impl MeasureKind {
    /// All measures in the paper's legend order.
    pub const ALL: [MeasureKind; 5] = [
        MeasureKind::SyscallLevenshtein,
        MeasureKind::AverageCpi,
        MeasureKind::L1,
        MeasureKind::Dtw,
        MeasureKind::DtwWithPenalty,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MeasureKind::SyscallLevenshtein => "Levenshtein(syscalls)",
            MeasureKind::AverageCpi => "avg CPI diff",
            MeasureKind::L1 => "L1(CPI series)",
            MeasureKind::Dtw => "DTW",
            MeasureKind::DtwWithPenalty => "DTW+penalty",
        }
    }
}

/// One (application, measure) cell of Figure 7.
#[derive(Debug, Clone)]
pub struct ClassificationCell {
    /// Application.
    pub app: AppId,
    /// Differencing measure.
    pub measure: MeasureKind,
    /// Divergence from centroid on request CPU time, percent (Fig. 7A).
    pub cpu_time_divergence: f64,
    /// Divergence from centroid on request peak CPI, percent (Fig. 7B).
    pub peak_cpi_divergence: f64,
}

/// Levenshtein sequences are truncated to this many calls: TPCH requests
/// issue thousands of calls and the full O(m*n) DP over all pairs would
/// dominate the harness. The Magpie-style prefix retains the request's
/// software identity.
const MAX_TOKENS: usize = 150;

/// Extracted per-request features for the clustering run.
struct Features {
    series: Vec<Vec<f64>>,
    tokens: Vec<Vec<u16>>,
    avg_cpi: Vec<f64>,
    cpu_time: Vec<f64>,
    peak_cpi: Vec<f64>,
    penalty: f64,
}

fn extract(app: AppId, fast: bool) -> Features {
    let n = requests_of(app, fast);
    let result = standard_run(app, 0xF7, n, false);

    // Bucket size: median request spans ~48 buckets regardless of app.
    let mut lens: Vec<f64> = result
        .completed
        .iter()
        .map(|r| r.timeline.total_instructions())
        .collect();
    lens.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = lens[lens.len() / 2].max(1.0);
    let bucket = (median / 48.0).max(1_000.0);

    let mut series = Vec::new();
    let mut tokens = Vec::new();
    let mut avg_cpi = Vec::new();
    let mut cpu_time = Vec::new();
    let mut peak_cpi = Vec::new();
    for r in &result.completed {
        series.push(r.series(Metric::Cpi, bucket).values().to_vec());
        tokens.push(
            r.syscalls
                .iter()
                .take(MAX_TOKENS)
                .map(|s| s.name as u16)
                .collect(),
        );
        avg_cpi.push(r.request_cpi().unwrap_or(0.0));
        cpu_time.push(r.cpu_cycles());
        peak_cpi.push(r.peak_cpi().unwrap_or(0.0));
    }
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_slice()).collect();
    let penalty = length_penalty(&refs, 200_000);
    Features {
        series,
        tokens,
        avg_cpi,
        cpu_time,
        peak_cpi,
        penalty,
    }
}

fn matrix_for(f: &Features, measure: MeasureKind, pool: &rbv_par::Pool) -> DistanceMatrix {
    let n = f.series.len();
    match measure {
        MeasureKind::SyscallLevenshtein => DistanceMatrix::compute_par(n, pool, |i, j| {
            levenshtein(&f.tokens[i], &f.tokens[j]) as f64
        }),
        MeasureKind::AverageCpi => DistanceMatrix::compute_par(n, pool, |i, j| {
            average_metric_distance(f.avg_cpi[i], f.avg_cpi[j])
        }),
        MeasureKind::L1 => DistanceMatrix::compute_par(n, pool, |i, j| {
            l1_distance(&f.series[i], &f.series[j], f.penalty)
        }),
        MeasureKind::Dtw => {
            DistanceMatrix::compute_par(n, pool, |i, j| dtw_distance(&f.series[i], &f.series[j]))
        }
        MeasureKind::DtwWithPenalty => DistanceMatrix::compute_par(n, pool, |i, j| {
            dtw_distance_with_penalty(&f.series[i], &f.series[j], f.penalty)
        }),
    }
}

/// Runs the Figure 7 experiment with the paper's k = 10 clusters.
///
/// Feature extraction (one full simulation per application) fans over the
/// global pool; each distance matrix and clustering then parallelizes
/// internally. Cells come out bit-identical at any thread count.
pub fn compute(fast: bool) -> Vec<ClassificationCell> {
    let pool = rbv_par::Pool::global();
    let apps: Vec<AppId> = AppId::SERVER_APPS.to_vec();
    let features = pool.ordered_map(&apps, |&app| extract(app, fast));
    let mut out = Vec::new();
    for (&app, f) in apps.iter().zip(&features) {
        for measure in MeasureKind::ALL {
            let dm = matrix_for(f, measure, &pool);
            let clustering = k_medoids_par(&dm, 10, 40, &pool);
            out.push(ClassificationCell {
                app,
                measure,
                cpu_time_divergence: divergence_from_centroid(&clustering, &f.cpu_time)
                    .unwrap_or(f64::NAN),
                peak_cpi_divergence: divergence_from_centroid(&clustering, &f.peak_cpi)
                    .unwrap_or(f64::NAN),
            });
        }
    }
    out
}

/// Runs and prints Figure 7.
pub fn run(fast: bool) -> Vec<ClassificationCell> {
    section("Figure 7: classification quality by differencing measure (k = 10)");
    let cells = compute(fast);
    for (title, pick) in [
        ("(A) divergence on request CPU time", true),
        ("(B) divergence on request peak (90%) CPI", false),
    ] {
        println!();
        println!("{title} (lower = better):");
        let mut rows = Vec::new();
        for measure in MeasureKind::ALL {
            let mut row = vec![measure.label().to_string()];
            for app in AppId::SERVER_APPS {
                let cell = cells
                    .iter()
                    .find(|c| c.app == app && c.measure == measure)
                    .expect("cell computed");
                let v = if pick {
                    cell.cpu_time_divergence
                } else {
                    cell.peak_cpi_divergence
                };
                row.push(format!("{v:.1}%"));
            }
            rows.push(row);
        }
        print_table(
            &["measure", "Web server", "TPCC", "TPCH", "RUBiS", "WeBWorK"],
            &rows,
        );
    }
    println!("(paper: DTW+penalty best overall; plain DTW poor without the penalty;");
    println!(" avg-CPI good on (B) but poor on (A); L1 a close, cheaper second)");
    cells
}
