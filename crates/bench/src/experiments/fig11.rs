//! Figure 11: accuracy of online predictors of L2 misses per instruction
//! (Equation 7 weighted RMSE) for TPCH and WeBWorK — last value, request
//! average, and the variable-aging EWMA filter across gain settings.

use rbv_core::predict::{evaluate_rmse, LastValue, Predictor, RunningAverage, VaEwma};
use rbv_core::series::Metric;
use rbv_os::RunResult;
use rbv_workloads::AppId;

use crate::harness::{bar, print_table, requests_of, section, standard_run};

/// RMSE of each predictor for one application.
#[derive(Debug, Clone)]
pub struct PredictorScores {
    /// Application.
    pub app: AppId,
    /// `(label, mean weighted RMSE)` per predictor, in plot order.
    pub scores: Vec<(String, f64)>,
}

impl PredictorScores {
    /// Score of the named predictor.
    pub fn score_of(&self, label: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, s)| s)
    }

    /// Best vaEWMA score across gains.
    pub fn best_vaewma(&self) -> f64 {
        self.scores
            .iter()
            .filter(|(l, _)| l.starts_with("vaEWMA"))
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Cycle-weighted mean of per-request RMSEs under `predictor`.
fn mean_rmse(result: &RunResult, predictor: &mut dyn Predictor) -> f64 {
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for r in &result.completed {
        let periods = r.timeline.periods();
        let durations: Vec<f64> = periods
            .iter()
            .map(|p| p.cycles / 3.0e6) // in the 1 ms t̂ unit
            .collect();
        let values: Vec<f64> = periods
            .iter()
            .map(|p| p.value(Metric::L2MissesPerIns).unwrap_or(0.0))
            .collect();
        if let Some(rmse) = evaluate_rmse(predictor, &durations, &values) {
            let w = r.cpu_cycles();
            weighted += rmse * w;
            weight += w;
        }
    }
    if weight > 0.0 {
        weighted / weight
    } else {
        f64::NAN
    }
}

/// Runs the Figure 11 experiment on the two long-request applications.
pub fn compute(fast: bool) -> Vec<PredictorScores> {
    let mut out = Vec::new();
    for app in [AppId::Tpch, AppId::Webwork] {
        let result = standard_run(app, 0xF11, requests_of(app, fast), false);
        let mut scores = Vec::new();
        scores.push((
            "last value".to_string(),
            mean_rmse(&result, &mut LastValue::new()),
        ));
        scores.push((
            "request average".to_string(),
            mean_rmse(&result, &mut RunningAverage::new()),
        ));
        for i in 1..=9 {
            let alpha = i as f64 / 10.0;
            scores.push((
                format!("vaEWMA a={alpha:.1}"),
                mean_rmse(&result, &mut VaEwma::new(alpha, 1.0)),
            ));
        }
        out.push(PredictorScores { app, scores });
    }
    out
}

/// Runs and prints Figure 11.
pub fn run(fast: bool) -> Vec<PredictorScores> {
    section("Figure 11: online prediction of L2 misses per instruction (Eq. 7 RMSE)");
    let all = compute(fast);
    for s in &all {
        println!();
        println!("{} (lower = better):", s.app);
        let max = s.scores.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        let rows: Vec<Vec<String>> = s
            .scores
            .iter()
            .map(|(label, v)| vec![label.clone(), format!("{v:.3e}"), bar(*v, max)])
            .collect();
        print_table(&["predictor", "RMSE", ""], &rows);
    }
    println!();
    println!("(paper: vaEWMA with mid-range gains beats both baselines; a = 0.6 is used in §5.2)");
    all
}
