//! Figure 10: online request signature identification — predicting
//! whether a request's CPU usage will exceed the workload median from an
//! incremental prefix of its execution, comparing the variation-pattern
//! signature (this paper), the average-metric signature \[27\], and the
//! recent-past-requests baseline.

use rbv_core::series::Metric;
use rbv_core::signature::{BankEntry, RecentPastPredictor, SignatureBank};
use rbv_workloads::AppId;

use crate::harness::{print_table, requests_of, scale_of, section, standard_run};

/// Prediction-error curves for one application.
#[derive(Debug, Clone)]
pub struct PredictionCurves {
    /// Application.
    pub app: AppId,
    /// Paper-scale instructions per progress step.
    pub unit_ins_paper: f64,
    /// Error of the recent-past baseline (constant across progress).
    pub past_error: f64,
    /// Error per progress step for the average-metric signature.
    pub average_error: Vec<f64>,
    /// Error per progress step for the variation-pattern signature.
    pub variation_error: Vec<f64>,
}

/// Paper progress-step units (instructions per step, paper scale): the
/// Figure 10 x-axes.
fn unit_ins_paper(app: AppId) -> f64 {
    match app {
        AppId::WebServer => 10e3,
        AppId::Tpcc => 300e3,
        AppId::Tpch => 1e6,
        AppId::Rubis => 200e3,
        AppId::Webwork => 1e6,
        _ => 100e3,
    }
}

/// Number of progress steps shown (the paper plots 10).
pub const STEPS: usize = 10;

/// Runs the Figure 10 experiment.
pub fn compute(fast: bool) -> Vec<PredictionCurves> {
    let mut out = Vec::new();
    for app in AppId::SERVER_APPS {
        let n_eval = requests_of(app, fast);
        // The paper collects "a bank of 500 representative request
        // signatures for each application" (§4.4).
        let n_bank = if fast { 100 } else { 500 };
        let result = standard_run(app, 0xF10, n_bank + n_eval, false);

        // Signatures: L2 references per instruction — inherent behavior,
        // free of dynamic L2 contention (§4.4) — bucketed at one progress
        // step per bucket.
        let unit_sim = unit_ins_paper(app) * scale_of(app);
        let series_of = |r: &rbv_os::CompletedRequest| r.series(Metric::L2RefsPerIns, unit_sim);

        let (bank_reqs, eval_reqs) = result
            .completed
            .split_at(n_bank.min(result.completed.len()));
        let bank = SignatureBank::new(
            bank_reqs
                .iter()
                .map(|r| BankEntry {
                    series: series_of(r),
                    cpu_cycles: r.cpu_cycles(),
                })
                .collect(),
        );
        let median = bank.median_cpu();

        let mut avg_wrong = vec![0usize; STEPS];
        let mut var_wrong = vec![0usize; STEPS];
        let mut past_wrong = 0usize;
        let mut past = RecentPastPredictor::default();
        let mut total = 0usize;
        for r in eval_reqs {
            let actual = r.cpu_cycles() > median;
            let sig = series_of(r);
            total += 1;
            for (step, (aw, vw)) in avg_wrong.iter_mut().zip(&mut var_wrong).enumerate() {
                let partial = sig.prefix(step + 1);
                if bank.predict_above_median(&partial, true) != Some(actual) {
                    *aw += 1;
                }
                if bank.predict_above_median(&partial, false) != Some(actual) {
                    *vw += 1;
                }
            }
            if past.predict_above(median).unwrap_or(false) != actual {
                past_wrong += 1;
            }
            past.record(r.cpu_cycles());
        }
        let as_err = |wrong: Vec<usize>| {
            wrong
                .into_iter()
                .map(|w| w as f64 / total.max(1) as f64)
                .collect::<Vec<f64>>()
        };
        out.push(PredictionCurves {
            app,
            unit_ins_paper: unit_ins_paper(app),
            past_error: past_wrong as f64 / total.max(1) as f64,
            average_error: as_err(avg_wrong),
            variation_error: as_err(var_wrong),
        });
    }
    out
}

/// Runs and prints Figure 10.
pub fn run(fast: bool) -> Vec<PredictionCurves> {
    section("Figure 10: online signature identification & CPU usage prediction");
    let curves = compute(fast);
    for c in &curves {
        println!();
        println!(
            "{} (progress step = {:.0} K paper instructions; past-requests baseline error {:.0}%):",
            c.app,
            c.unit_ins_paper / 1e3,
            c.past_error * 100.0
        );
        let mut rows = Vec::new();
        for step in 0..STEPS {
            rows.push(vec![
                format!("{}", step + 1),
                format!("{:.0}%", c.past_error * 100.0),
                format!("{:.0}%", c.average_error[step] * 100.0),
                format!("{:.0}%", c.variation_error[step] * 100.0),
            ]);
        }
        print_table(
            &[
                "progress",
                "past-requests",
                "avg-metric sig",
                "variation sig",
            ],
            &rows,
        );
    }
    println!();
    println!("(paper: variation signatures cut errors ~10%+ for four applications;");
    println!(" WeBWorK defeats both signature forms — identical early processing)");
    curves
}
