//! Table 2: system call names as behavior transition signals — the mean ±
//! standard deviation of the CPI change across each call, for the Apache
//! web server.

use rbv_os::{run_simulation, RunResult, SimConfig};
use rbv_workloads::{AppId, SyscallName};

use crate::harness::{print_table, requests_of, section, standard_factory};

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct TransitionRow {
    /// System call name.
    pub name: SyscallName,
    /// Mean CPI change across the call.
    pub mean: f64,
    /// Standard deviation of the change.
    pub std: f64,
    /// Occurrences observed.
    pub count: usize,
}

/// Runs the web server with fine syscall-triggered sampling and trains the
/// name → CPI-change table online (§3.2).
pub fn compute(fast: bool) -> (Vec<TransitionRow>, RunResult) {
    let n = requests_of(AppId::WebServer, fast);
    let mut f = standard_factory(AppId::WebServer, 0x7B2);
    // Tiny t_syscall_min: sample at essentially every call so each ±period
    // around a call is isolated (the paper's 10 us windows).
    let mut cfg = SimConfig::paper_default().with_syscall_sampling(2, 100);
    cfg.seed = 0x7B2;
    let result = run_simulation(cfg, f.as_mut(), n).expect("valid");
    let rows = result
        .transition_table(if fast { 5 } else { 20 })
        .into_iter()
        .map(|(name, mean, std, count)| TransitionRow {
            name,
            mean,
            std,
            count,
        })
        .collect();
    (rows, result)
}

/// Runs and prints Table 2.
pub fn run(fast: bool) -> Vec<TransitionRow> {
    section("Table 2: syscall name -> CPI change (web server)");
    let (rows, _) = compute(fast);
    let paper: &[(SyscallName, f64)] = &[
        (SyscallName::Writev, 3.66),
        (SyscallName::Lseek, -1.99),
        (SyscallName::Stat, -1.39),
        (SyscallName::Poll, 1.22),
        (SyscallName::Shutdown, 0.82),
        (SyscallName::Read, 0.61),
        (SyscallName::Open, -0.14),
        (SyscallName::Write, -0.11),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let dir = if r.mean > 0.05 {
                "increase"
            } else if r.mean < -0.05 {
                "decrease"
            } else {
                "-"
            };
            let paper_val = paper
                .iter()
                .find(|&&(n, _)| n == r.name)
                .map_or(String::from("-"), |&(_, v)| format!("{v:+.2}"));
            vec![
                r.name.to_string(),
                dir.to_string(),
                format!("{:+.2} +- {:.2}", r.mean, r.std),
                format!("{}", r.count),
                paper_val,
            ]
        })
        .collect();
    print_table(
        &["syscall", "direction", "CPI change", "n", "paper mean"],
        &table,
    );
    rows
}
