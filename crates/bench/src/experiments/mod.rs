//! One module per paper artifact; see the crate docs for the mapping.

// Figure-reproduction code: every `expect` here names a hand-written
// experiment configuration that is valid by construction. An invalid one
// is a bug in the experiment definition, and aborting with the named
// config is the designed failure mode, so this subtree is exempt from
// the crate-wide `expect_used` ban.
#![allow(clippy::expect_used)]

pub mod ablate;
pub mod dump;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sig;
pub mod tab1;
pub mod tab2;

/// `(id, description)` of every runnable experiment.
pub const REGISTRY: &[(&str, &str)] = &[
    ("fig1", "request CPI distributions, 1-core vs 4-core"),
    ("fig2", "intra-request behavior variation traces"),
    ("tab1", "per-sample cost and observer-effect events"),
    ("fig3", "captured variations (weighted CoV, Eq. 1)"),
    ("fig4", "next system call distance distributions"),
    ("fig5", "syscall-triggered vs interrupt sampling overhead"),
    ("tab2", "syscall name -> CPI change transition table"),
    ("sig", "behavior transition signal sampling (CoV gain)"),
    ("fig6", "similar TPCC requests drifting apart"),
    ("fig7", "classification quality by differencing measure"),
    ("fig8", "TPCH anomaly vs group centroid"),
    ("fig9", "WeBWorK multi-metric anomaly pair"),
    ("fig10", "online signature identification accuracy"),
    ("fig11", "online predictor RMSE (Eq. 7)"),
    ("fig12", "contention-easing: simultaneous high-usage time"),
    ("fig13", "contention-easing: request CPI percentiles"),
    ("ablate-dtw", "asynchrony penalty / band width sweep"),
    ("ablate-ewma", "vaEWMA vs fixed-aging EWMA"),
    ("ablate-sampling", "t_syscall_min / t_backup_int sweep"),
    ("ablate-threshold", "contention threshold percentile sweep"),
    ("ablate-signals", "name vs bigram transition signals"),
    ("ablate-load", "open-loop Poisson load sweep"),
    (
        "ablate-partition",
        "LRU sharing vs static cache partitioning",
    ),
    ("ablate-stealing", "request migration on skewed load"),
];

/// Dispatches one experiment id. Returns false for unknown ids.
/// `fig12` and `fig13` share one computation and print both.
pub fn dispatch(id: &str, fast: bool) -> bool {
    match id {
        "fig1" => {
            fig1::run(fast);
        }
        "fig2" => {
            fig2::run(fast);
        }
        "tab1" => {
            tab1::run(fast);
        }
        "fig3" => {
            fig3::run(fast);
        }
        "fig4" => {
            fig4::run(fast);
        }
        "fig5" => {
            fig5::run(fast);
        }
        "tab2" => {
            tab2::run(fast);
        }
        "sig" => {
            sig::run(fast);
        }
        "fig6" => {
            fig6::run(fast);
        }
        "fig7" => {
            fig7::run(fast);
        }
        "fig8" => {
            fig8::run(fast);
        }
        "fig9" => {
            fig9::run(fast);
        }
        "fig10" => {
            fig10::run(fast);
        }
        "fig11" => {
            fig11::run(fast);
        }
        "fig12" | "fig13" => {
            fig12_13::run(fast);
        }
        "ablate-dtw" => {
            ablate::ablate_dtw(fast);
        }
        "ablate-ewma" => {
            ablate::ablate_ewma(fast);
        }
        "ablate-sampling" => {
            ablate::ablate_sampling(fast);
        }
        "ablate-threshold" => {
            ablate::ablate_threshold(fast);
        }
        "ablate-signals" => {
            ablate::ablate_signals(fast);
        }
        "ablate-load" => {
            ablate::ablate_load(fast);
        }
        "ablate-partition" => {
            ablate::ablate_partition(fast);
        }
        "ablate-stealing" => {
            ablate::ablate_stealing(fast);
        }
        _ => return false,
    }
    true
}
