//! `repro` — regenerate the tables and figures of *Request Behavior
//! Variations* (ASPLOS 2010).
//!
//! ```text
//! repro <experiment-id> [--fast]   # one artifact
//! repro all [--fast]               # everything, in paper order
//! repro list                       # available experiment ids
//! repro trace <app> [--seed N] [--trace out.json] [--metrics out.json|out.csv]
//! repro chaos <app> [--seed N] [--fast] [--min-recall X] [--json] [--governor] \
//!       [--retry-storm] [--thermal]
//! repro serve <app> [--requests N] [--overload X] [--seed N] [--mmpp] [--guard] \
//!       [--power] [--thermal] [--load-sweep] \
//!       [--discipline none|dfcfs|cfcfs] [--admission on|off] [--shed on|off] \
//!       [--retries on|off] [--out SERVE.json] [--json] [--wallclock] \
//!       [--trace-spans SPANS.json]
//! repro explain <serve-ledger.json>
//! repro cluster <app> [--requests N] [--overload X] [--seed N] [--easing] \
//!       [--single] [--out CLUSTER.json] [--json] [--wallclock] \
//!       [--trace-spans SPANS.json]
//! repro bench [<app>|--all] [--seed N] [--fast] [--out BENCH.json] [--wallclock]
//! repro diff <baseline.json> <candidate.json> [--tolerance pct]
//! repro campaign [--fast] [--seed N] [--drift] [--epochs N] \
//!       [--out WAREHOUSE.json] [--wallclock] [--report] [--json]
//! repro campaign --report <warehouse.json> [--json]
//! ```
//!
//! Every subcommand also accepts the global `--threads N` flag (default:
//! available parallelism) sizing the deterministic work pool that fans
//! out independent simulations. Output is byte-identical at any `N`
//! (see `rbv_par`'s ordered-collect contract).
//!
//! Exit codes follow [`RbvError::exit_code`]: 2 for usage errors, 1 for
//! configuration/IO failures and failed `--min-recall` gates, 0 on
//! success.

use std::path::PathBuf;
use std::process::ExitCode;

use rbv_bench::experiments::{dispatch, REGISTRY};
use rbv_os::RbvError;

/// Parsed command line: boolean flags, valued options, positionals.
#[derive(Debug)]
struct Cli {
    fast: bool,
    syscalls: bool,
    all: bool,
    json: bool,
    governor: bool,
    retry_storm: bool,
    wallclock: bool,
    drift: bool,
    report: bool,
    mmpp: bool,
    guard: bool,
    single: bool,
    easing: bool,
    power: bool,
    thermal: bool,
    load_sweep: bool,
    epochs: Option<u32>,
    seed: Option<u64>,
    threads: Option<usize>,
    requests: Option<usize>,
    overload: Option<f64>,
    discipline: Option<Option<rbv_os::QueueDiscipline>>,
    admission: Option<bool>,
    shed: Option<bool>,
    retries: Option<bool>,
    trace: Option<PathBuf>,
    trace_spans: Option<PathBuf>,
    metrics: Option<PathBuf>,
    out: Option<PathBuf>,
    min_recall: Option<f64>,
    tolerance: Option<f64>,
    positionals: Vec<String>,
}

fn usage() {
    eprintln!("usage: repro <experiment-id>|all|list [--fast] [--seed N]");
    eprintln!("       (any subcommand) [--threads N]   # work-pool size; output is");
    eprintln!("                                        # byte-identical at any N");
    eprintln!("       repro trace <web|tpcc|tpch|rubis|webwork> \\");
    eprintln!("             [--trace out.json] [--metrics out.json|out.csv]");
    eprintln!("       repro chaos <web|tpcc|tpch|rubis|webwork> \\");
    eprintln!("             [--seed N] [--fast] [--min-recall X] [--json] [--governor]");
    eprintln!("             [--retry-storm] [--thermal]");
    eprintln!("       repro serve <web|tpcc|tpch|rubis|webwork> \\");
    eprintln!("             [--requests N] [--overload X] [--seed N] [--mmpp] [--guard]");
    eprintln!("             [--power] [--thermal] [--load-sweep]");
    eprintln!("             [--discipline none|dfcfs|cfcfs] [--admission on|off]");
    eprintln!("             [--shed on|off] [--retries on|off]");
    eprintln!("             [--out SERVE.json] [--json] [--wallclock]");
    eprintln!("             [--trace-spans SPANS.json]");
    eprintln!("       repro explain <serve-ledger.json>");
    eprintln!("       repro cluster <web|tpcc|tpch|rubis|webwork> \\");
    eprintln!("             [--requests N] [--overload X] [--seed N] [--easing] [--single]");
    eprintln!("             [--out CLUSTER.json] [--json] [--wallclock]");
    eprintln!("             [--trace-spans SPANS.json]");
    eprintln!("       repro bench [<app>|--all] [--seed N] [--fast] \\");
    eprintln!("             [--out BENCH.json] [--wallclock]");
    eprintln!("       repro diff <baseline.json> <candidate.json> [--tolerance pct]");
    eprintln!("       repro campaign [--fast] [--seed N] [--drift] [--epochs N] \\");
    eprintln!("             [--out WAREHOUSE.json] [--wallclock] [--report] [--json]");
    eprintln!("       repro campaign --report <warehouse.json> [--json]");
    eprintln!("run `repro list` for the available experiments");
}

/// Parses the `on`/`off` value of a defense ablation flag.
fn parse_on_off(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<bool, RbvError> {
    let v = it
        .next()
        .ok_or_else(|| RbvError::Cli(format!("{flag} requires on|off")))?;
    match v.as_str() {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(RbvError::Cli(format!("{flag} takes on|off, got `{other}`"))),
    }
}

fn parse(args: Vec<String>) -> Result<Cli, RbvError> {
    let mut cli = Cli {
        fast: false,
        syscalls: false,
        all: false,
        json: false,
        governor: false,
        retry_storm: false,
        wallclock: false,
        drift: false,
        report: false,
        mmpp: false,
        guard: false,
        single: false,
        easing: false,
        power: false,
        thermal: false,
        load_sweep: false,
        epochs: None,
        seed: None,
        threads: None,
        requests: None,
        overload: None,
        discipline: None,
        admission: None,
        shed: None,
        retries: None,
        trace: None,
        trace_spans: None,
        metrics: None,
        out: None,
        min_recall: None,
        tolerance: None,
        positionals: Vec::new(),
    };
    let cli_err = |msg: String| RbvError::Cli(msg);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => cli.fast = true,
            "--syscalls" => cli.syscalls = true,
            "--all" => cli.all = true,
            "--json" => cli.json = true,
            "--governor" => cli.governor = true,
            "--retry-storm" => cli.retry_storm = true,
            "--mmpp" => cli.mmpp = true,
            "--guard" => cli.guard = true,
            "--single" => cli.single = true,
            "--easing" => cli.easing = true,
            "--power" => cli.power = true,
            "--thermal" => cli.thermal = true,
            "--load-sweep" => cli.load_sweep = true,
            "--wallclock" => cli.wallclock = true,
            "--drift" => cli.drift = true,
            "--report" => cli.report = true,
            "--epochs" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--epochs requires a value".into()))?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad epoch count `{v}`")))?;
                if n < 2 {
                    return Err(cli_err(
                        "--epochs must be at least 2 (day + night reference epochs)".into(),
                    ));
                }
                cli.epochs = Some(n);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--seed requires a value".into()))?;
                cli.seed = Some(v.parse().map_err(|_| cli_err(format!("bad seed `{v}`")))?);
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--threads requires a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad thread count `{v}`")))?;
                if n == 0 {
                    return Err(cli_err("--threads must be at least 1".into()));
                }
                cli.threads = Some(n);
            }
            "--min-recall" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--min-recall requires a value".into()))?;
                let r: f64 = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad recall `{v}`")))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(cli_err(format!("recall {r} must be in [0, 1]")));
                }
                cli.min_recall = Some(r);
            }
            "--requests" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--requests requires a value".into()))?;
                let n: usize = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad request count `{v}`")))?;
                if n == 0 {
                    return Err(cli_err("--requests must be at least 1".into()));
                }
                cli.requests = Some(n);
            }
            "--overload" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--overload requires a value".into()))?;
                let x: f64 = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad overload factor `{v}`")))?;
                if !x.is_finite() || x <= 0.0 {
                    return Err(cli_err(format!(
                        "overload factor {x} must be finite and positive"
                    )));
                }
                cli.overload = Some(x);
            }
            "--discipline" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--discipline requires a value".into()))?;
                cli.discipline = Some(match v.as_str() {
                    "none" => None,
                    "dfcfs" => Some(rbv_os::QueueDiscipline::Dfcfs),
                    "cfcfs" => Some(rbv_os::QueueDiscipline::Cfcfs),
                    other => {
                        return Err(cli_err(format!(
                            "bad discipline `{other}` (none|dfcfs|cfcfs)"
                        )));
                    }
                });
            }
            "--admission" => cli.admission = Some(parse_on_off(&mut it, "--admission")?),
            "--shed" => cli.shed = Some(parse_on_off(&mut it, "--shed")?),
            "--retries" => cli.retries = Some(parse_on_off(&mut it, "--retries")?),
            "--trace" => {
                cli.trace = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| cli_err("--trace requires a path".into()))?,
                ));
            }
            "--trace-spans" => {
                cli.trace_spans =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        cli_err("--trace-spans requires a path".into())
                    })?));
            }
            "--metrics" => {
                cli.metrics =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        cli_err("--metrics requires a path".into())
                    })?));
            }
            "--out" => {
                cli.out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| cli_err("--out requires a path".into()))?,
                ));
            }
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| cli_err("--tolerance requires a value".into()))?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| cli_err(format!("bad tolerance `{v}`")))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(cli_err(format!("tolerance {pct} must be finite and >= 0")));
                }
                cli.tolerance = Some(pct / 100.0);
            }
            other if other.starts_with("--") => {
                return Err(cli_err(format!("unknown flag `{other}`")));
            }
            _ => cli.positionals.push(arg),
        }
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn overload_must_be_finite_and_positive() {
        for bad in ["-1", "0", "nan", "inf", "-inf", "nope"] {
            let err = parse(argv(&format!("serve web --overload {bad}")))
                .expect_err("bad overload must be a usage error");
            assert!(matches!(err, RbvError::Cli(_)), "{bad}: {err}");
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
        let cli = parse(argv("serve web --overload 2.5")).expect("valid overload");
        assert_eq!(cli.overload, Some(2.5));
    }

    #[test]
    fn trace_spans_takes_a_path() {
        let cli = parse(argv("serve web --trace-spans spans.json")).expect("parses");
        assert_eq!(
            cli.trace_spans.as_deref(),
            Some(std::path::Path::new("spans.json"))
        );
        let err = parse(argv("serve web --trace-spans")).expect_err("missing path");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn zero_requests_is_a_usage_error() {
        // `repro serve <app> --requests 0` must exit 2, not run an empty
        // campaign or divide by zero downstream.
        let err = parse(argv("serve web --requests 0")).expect_err("zero requests");
        assert!(matches!(err, RbvError::Cli(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
        let cli = parse(argv("serve web --requests 80")).expect("valid count");
        assert_eq!(cli.requests, Some(80));
    }

    #[test]
    fn too_few_epochs_is_a_usage_error() {
        // `repro campaign --epochs 0` (and 1) must exit 2: the drift
        // scenario needs the day + night reference epochs at minimum.
        for bad in ["0", "1"] {
            let err = parse(argv(&format!("campaign --epochs {bad}"))).expect_err("too few epochs");
            assert!(matches!(err, RbvError::Cli(_)), "{bad}: {err}");
            assert_eq!(err.exit_code(), 2, "{bad}");
        }
        let cli = parse(argv("campaign --epochs 2")).expect("valid count");
        assert_eq!(cli.epochs, Some(2));
    }

    #[test]
    fn power_thermal_and_load_sweep_flags_parse() {
        let cli = parse(argv("serve web --power --thermal --load-sweep")).expect("parses");
        assert!(cli.power && cli.thermal && cli.load_sweep);
        let cli = parse(argv("chaos web --thermal")).expect("parses");
        assert!(cli.thermal && !cli.power);
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        let err = parse(argv("serve web --bogus")).expect_err("unknown flag");
        assert_eq!(err.exit_code(), 2);
    }
}

/// Prints `e` and converts it to its process exit code.
fn fail(e: &RbvError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(e.exit_code())
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(e) => {
            let code = fail(&e);
            usage();
            return code;
        }
    };
    let fast = cli.fast;
    // Size the global deterministic work pool for every downstream
    // harness; results do not depend on this (ordered collect), only
    // wall-clock time does.
    rbv_par::set_threads(cli.threads.unwrap_or_else(rbv_par::available_parallelism));

    let Some(first) = cli.positionals.first() else {
        usage();
        return ExitCode::from(2);
    };

    match first.as_str() {
        "dump" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro dump <web|tpcc|tpch|rubis|webwork> [--syscalls] [--fast]");
                return ExitCode::from(2);
            };
            rbv_bench::experiments::dump::run(app, fast, cli.syscalls);
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro trace <web|tpcc|tpch|rubis|webwork> \\");
                eprintln!(
                    "             [--seed N] [--trace out.json] [--metrics out.json|out.csv]"
                );
                return ExitCode::from(2);
            };
            let seed = cli.seed.unwrap_or(1);
            match rbv_bench::tracecmd::run(
                app,
                fast,
                seed,
                cli.trace.as_deref(),
                cli.metrics.as_deref(),
            ) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "chaos" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro chaos <web|tpcc|tpch|rubis|webwork> \\");
                eprintln!(
                    "             [--seed N] [--fast] [--min-recall X] [--json] [--governor]"
                );
                eprintln!("             [--retry-storm] [--thermal]");
                return ExitCode::from(2);
            };
            let seed = cli.seed.unwrap_or(42);
            match rbv_bench::chaoscmd::run(
                app,
                seed,
                fast,
                cli.min_recall,
                cli.json,
                cli.governor,
                cli.retry_storm,
                cli.thermal,
            ) {
                Ok((_, true)) => ExitCode::SUCCESS,
                Ok((_, false)) => ExitCode::FAILURE,
                Err(e) => fail(&e),
            }
        }
        "serve" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro serve <web|tpcc|tpch|rubis|webwork> \\");
                eprintln!("             [--requests N] [--overload X] [--seed N] [--mmpp]");
                eprintln!("             [--power] [--thermal] [--load-sweep]");
                eprintln!("             [--discipline none|dfcfs|cfcfs] [--admission on|off]");
                eprintln!("             [--shed on|off] [--retries on|off] [--guard]");
                eprintln!("             [--out SERVE.json] [--json] [--wallclock]");
                eprintln!("             [--trace-spans SPANS.json]");
                return ExitCode::from(2);
            };
            let mut spec = rbv_openloop::ServeSpec::new(
                app,
                cli.requests.unwrap_or(10_000),
                cli.seed.unwrap_or(42),
            );
            if let Some(x) = cli.overload {
                spec.overload = x;
            }
            if let Some(d) = cli.discipline {
                spec.discipline = d;
            }
            if let Some(on) = cli.admission {
                spec.admission = on;
            }
            if let Some(on) = cli.shed {
                spec.shed = on;
            }
            if let Some(on) = cli.retries {
                spec.retries = on;
            }
            spec.guard = cli.guard;
            spec.mmpp = cli.mmpp;
            spec.power = cli.power;
            spec.thermal = cli.thermal;
            if cli.trace_spans.is_some() {
                spec.trace = true;
                spec.trace_spans = true;
            }
            match rbv_bench::servecmd::run(
                &spec,
                cli.wallclock,
                cli.out.as_deref(),
                cli.json,
                cli.trace_spans.as_deref(),
                cli.load_sweep,
            ) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "cluster" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro cluster <web|tpcc|tpch|rubis|webwork> \\");
                eprintln!("             [--requests N] [--overload X] [--seed N] [--easing]");
                eprintln!("             [--single] [--out CLUSTER.json] [--json] [--wallclock]");
                eprintln!("             [--trace-spans SPANS.json]");
                return ExitCode::from(2);
            };
            let mut spec = rbv_cluster::ClusterSpec::three_tier(app);
            if let Some(n) = cli.requests {
                spec.requests = n;
            }
            if let Some(x) = cli.overload {
                spec.overload = x;
            }
            if let Some(seed) = cli.seed {
                spec.seed = seed;
            }
            spec.easing = cli.easing;
            if cli.single {
                spec.topology = rbv_cluster::ClusterTopology::Single;
            }
            spec.trace_spans = cli.trace_spans.is_some();
            spec.wallclock = cli.wallclock;
            match rbv_bench::clustercmd::run(
                &spec,
                cli.out.as_deref(),
                cli.json,
                cli.trace_spans.as_deref(),
            ) {
                Ok((_, true)) => ExitCode::SUCCESS,
                Ok((_, false)) => ExitCode::FAILURE,
                Err(e) => fail(&e),
            }
        }
        "explain" => {
            let Some(ledger) = cli.positionals.get(1) else {
                eprintln!("usage: repro explain <serve-ledger.json>");
                return ExitCode::from(2);
            };
            match rbv_bench::explaincmd::run(std::path::Path::new(ledger)) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "bench" => {
            let (apps, label): (Vec<_>, String) = if cli.all {
                (rbv_ledger::BENCH_APPS.to_vec(), "all".to_string())
            } else {
                match cli
                    .positionals
                    .get(1)
                    .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
                {
                    Some(app) => (vec![app], rbv_ledger::short_label(app).to_string()),
                    None => {
                        eprintln!("usage: repro bench [<web|tpcc|tpch|rubis|webwork>|--all] \\");
                        eprintln!(
                            "             [--seed N] [--fast] [--out BENCH.json] [--wallclock]"
                        );
                        return ExitCode::from(2);
                    }
                }
            };
            let seed = cli.seed.unwrap_or(42);
            match rbv_bench::benchcmd::run(
                &apps,
                &label,
                seed,
                fast,
                cli.wallclock,
                cli.out.as_deref(),
            ) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let (Some(baseline), Some(candidate)) =
                (cli.positionals.get(1), cli.positionals.get(2))
            else {
                eprintln!("usage: repro diff <baseline.json> <candidate.json> [--tolerance pct]");
                return ExitCode::from(2);
            };
            match rbv_bench::diffcmd::run(
                std::path::Path::new(baseline),
                std::path::Path::new(candidate),
                cli.tolerance,
            ) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => fail(&e),
            }
        }
        "campaign" => {
            let load = cli.positionals.get(1).map(std::path::Path::new);
            if load.is_some() && !cli.report {
                eprintln!("a warehouse path is only meaningful with --report");
                eprintln!("usage: repro campaign --report <warehouse.json> [--json]");
                return ExitCode::from(2);
            }
            let seed = cli.seed.unwrap_or(42);
            match rbv_bench::campaigncmd::run(
                load,
                seed,
                fast,
                cli.drift,
                cli.epochs,
                cli.wallclock,
                cli.out.as_deref(),
                cli.report,
                cli.json,
            ) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => fail(&e),
            }
        }
        "list" => {
            for (id, desc) in REGISTRY {
                println!("{id:18} {desc}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let start = std::time::Instant::now();
            // fig13 shares fig12's computation; skip the duplicate run.
            for (id, _) in REGISTRY.iter().filter(|(id, _)| *id != "fig13") {
                let t = std::time::Instant::now();
                dispatch(id, fast);
                eprintln!("[{id} done in {:.1?}]", t.elapsed());
            }
            eprintln!("[all experiments done in {:.1?}]", start.elapsed());
            ExitCode::SUCCESS
        }
        _ => {
            let mut ok = true;
            for id in &cli.positionals {
                if !dispatch(id, fast) {
                    eprintln!("unknown experiment `{id}`; run `repro list`");
                    ok = false;
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
