//! `repro` — regenerate the tables and figures of *Request Behavior
//! Variations* (ASPLOS 2010).
//!
//! ```text
//! repro <experiment-id> [--fast]   # one artifact
//! repro all [--fast]               # everything, in paper order
//! repro list                       # available experiment ids
//! repro trace <app> [--seed N] [--trace out.json] [--metrics out.json|out.csv]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rbv_bench::experiments::{dispatch, REGISTRY};

/// Parsed command line: boolean flags, valued options, positionals.
struct Cli {
    fast: bool,
    syscalls: bool,
    seed: Option<u64>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    positionals: Vec<String>,
}

fn usage() {
    eprintln!("usage: repro <experiment-id>|all|list [--fast] [--seed N]");
    eprintln!("       repro trace <web|tpcc|tpch|rubis|webwork> \\");
    eprintln!("             [--trace out.json] [--metrics out.json|out.csv]");
    eprintln!("run `repro list` for the available experiments");
}

fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        fast: false,
        syscalls: false,
        seed: None,
        trace: None,
        metrics: None,
        positionals: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => cli.fast = true,
            "--syscalls" => cli.syscalls = true,
            "--seed" => {
                let v = it.next().ok_or("--seed requires a value")?;
                cli.seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
            }
            "--trace" => {
                cli.trace = Some(PathBuf::from(it.next().ok_or("--trace requires a path")?));
            }
            "--metrics" => {
                cli.metrics = Some(PathBuf::from(it.next().ok_or("--metrics requires a path")?));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ => cli.positionals.push(arg),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let fast = cli.fast;

    let Some(first) = cli.positionals.first() else {
        usage();
        return ExitCode::FAILURE;
    };

    match first.as_str() {
        "dump" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro dump <web|tpcc|tpch|rubis|webwork> [--syscalls] [--fast]");
                return ExitCode::FAILURE;
            };
            rbv_bench::experiments::dump::run(app, fast, cli.syscalls);
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(app) = cli
                .positionals
                .get(1)
                .and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro trace <web|tpcc|tpch|rubis|webwork> \\");
                eprintln!(
                    "             [--seed N] [--trace out.json] [--metrics out.json|out.csv]"
                );
                return ExitCode::FAILURE;
            };
            let seed = cli.seed.unwrap_or(1);
            match rbv_bench::tracecmd::run(
                app,
                fast,
                seed,
                cli.trace.as_deref(),
                cli.metrics.as_deref(),
            ) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "list" => {
            for (id, desc) in REGISTRY {
                println!("{id:18} {desc}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let start = std::time::Instant::now();
            // fig13 shares fig12's computation; skip the duplicate run.
            for (id, _) in REGISTRY.iter().filter(|(id, _)| *id != "fig13") {
                let t = std::time::Instant::now();
                dispatch(id, fast);
                eprintln!("[{id} done in {:.1?}]", t.elapsed());
            }
            eprintln!("[all experiments done in {:.1?}]", start.elapsed());
            ExitCode::SUCCESS
        }
        _ => {
            let mut ok = true;
            for id in &cli.positionals {
                if !dispatch(id, fast) {
                    eprintln!("unknown experiment `{id}`; run `repro list`");
                    ok = false;
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
