//! `repro` — regenerate the tables and figures of *Request Behavior
//! Variations* (ASPLOS 2010).
//!
//! ```text
//! repro <experiment-id> [--fast]   # one artifact
//! repro all [--fast]               # everything, in paper order
//! repro list                       # available experiment ids
//! ```

use std::process::ExitCode;

use rbv_bench::experiments::{dispatch, REGISTRY};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let Some(first) = ids.first() else {
        eprintln!("usage: repro <experiment-id>|all|list [--fast]");
        eprintln!("run `repro list` for the available experiments");
        return ExitCode::FAILURE;
    };

    match first.as_str() {
        "dump" => {
            let Some(app) = ids.get(1).and_then(|a| rbv_bench::experiments::dump::parse_app(a))
            else {
                eprintln!("usage: repro dump <web|tpcc|tpch|rubis|webwork> [--syscalls] [--fast]");
                return ExitCode::FAILURE;
            };
            let syscalls = args.iter().any(|a| a == "--syscalls");
            rbv_bench::experiments::dump::run(app, fast, syscalls);
            ExitCode::SUCCESS
        }
        "list" => {
            for (id, desc) in REGISTRY {
                println!("{id:18} {desc}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let start = std::time::Instant::now();
            // fig13 shares fig12's computation; skip the duplicate run.
            for (id, _) in REGISTRY.iter().filter(|(id, _)| *id != "fig13") {
                let t = std::time::Instant::now();
                dispatch(id, fast);
                eprintln!("[{id} done in {:.1?}]", t.elapsed());
            }
            eprintln!("[all experiments done in {:.1?}]", start.elapsed());
            ExitCode::SUCCESS
        }
        _ => {
            let mut ok = true;
            for id in &ids {
                if !dispatch(id, fast) {
                    eprintln!("unknown experiment `{id}`; run `repro list`");
                    ok = false;
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
