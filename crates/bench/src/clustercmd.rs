//! `repro cluster <app>` — multi-tier cluster simulation through the
//! `rbv-cluster` harness: frontend/app/DB machines stepped under one
//! deterministic cross-machine event loop, a seeded latency/bandwidth
//! network, and per-tier latency/CPI attribution whose stages exactly
//! partition each request's client-visible latency.

use std::io::{self, Write};
use std::path::Path;

use rbv_cluster::{run_cluster, ClusterReport, ClusterSpec};
use rbv_os::RbvError;

/// Runs the cluster campaign and prints the report — the human table by
/// default, the machine-readable `rbv-cluster/v1` ledger JSON with
/// `json` (the table then goes to stderr so pipelines stay parseable).
/// `out` writes the ledger atomically; `spans_out` (requires a spec
/// with `trace_spans` set) writes the retained per-request spans as a
/// Perfetto trace with one track-group per machine and cross-tier flow
/// arrows.
///
/// Returns the report together with its invariant verdict: a run whose
/// cross-tier partition checks recorded any violation exits nonzero —
/// the attribution is only worth shipping when it is exact.
///
/// # Errors
///
/// Returns [`RbvError`] from validation, the run, or report output.
pub fn run(
    spec: &ClusterSpec,
    out: Option<&Path>,
    json: bool,
    spans_out: Option<&Path>,
) -> Result<(ClusterReport, bool), RbvError> {
    let pool = rbv_par::Pool::global();
    let report = run_cluster(spec, &pool)?;
    let text = report.to_json().to_string_compact();
    if json {
        let mut err = io::stderr().lock();
        err.write_all(report.render().as_bytes())?;
        println!("{text}");
    } else {
        let mut outw = io::stdout().lock();
        outw.write_all(report.render().as_bytes())?;
    }
    if let Some(path) = out {
        rbv_guard::write_atomic(path, format!("{text}\n").as_bytes())?;
        eprintln!("[cluster ledger written to {}]", path.display());
    }
    if let Some(path) = spans_out {
        let trace = rbv_trace::cluster_to_perfetto(&report.spans, &report.machine_labels());
        rbv_guard::write_atomic(path, trace.to_json_string().as_bytes())?;
        eprintln!(
            "[{} request spans written to {}]",
            report.spans.len(),
            path.display()
        );
    }
    let clean = report.clean();
    if !clean {
        eprintln!(
            "cluster invariants violated: {}",
            report
                .summary
                .invariants
                .first_violation()
                .unwrap_or("unknown")
        );
    }
    Ok((report, clean))
}
