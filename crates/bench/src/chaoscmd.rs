//! `repro chaos <app>` — run the deterministic fault matrix and emit
//! the precision/recall + degradation report, optionally gating on a
//! minimum anomaly-detection recall (the CI smoke check).

use std::io;

use rbv_faults::chaos::{run_matrix_pooled, summarize, ChaosReport};
use rbv_os::RbvError;
use rbv_telemetry::SelfProfiler;
use rbv_workloads::AppId;

/// Runs the chaos matrix for `app` and prints the report to stdout —
/// the human table by default, the machine-readable ledger JSON with
/// `json` (the table then goes to stderr so pipelines stay parseable).
/// With `governor` the matrix also runs the governed measurement storm
/// (sampling governor + health ladder + invariant monitor) and reports
/// its do-no-harm outcome. With `retry_storm` it also runs the
/// defended-vs-ablated metastable retry storm; the returned pass flag
/// then additionally requires the defended run to beat the ablation on
/// goodput and to end on a recovered ladder rung. With `thermal` it
/// also runs the defended-vs-ablated thermal storm; the pass flag then
/// requires the power-capping defense to beat the firmware-latch
/// ablation on goodput AND p99 latency with the ladder recovered.
///
/// Returns the report plus whether the gates passed (always true
/// when `min_recall` is `None` and the opt-in storms are off).
///
/// # Errors
///
/// Returns [`RbvError`] on configuration or output failures.
#[allow(clippy::fn_params_excessive_bools, clippy::too_many_arguments)]
pub fn run(
    app: AppId,
    seed: u64,
    fast: bool,
    min_recall: Option<f64>,
    json: bool,
    governor: bool,
    retry_storm: bool,
    thermal: bool,
) -> Result<(ChaosReport, bool), RbvError> {
    let mut profiler = SelfProfiler::new();
    // Scenarios fan over the global pool; the report is identical at any
    // thread count (ordered collect), only wall-clock changes.
    let pool = rbv_par::Pool::global();
    let report = profiler.time("matrix", || {
        run_matrix_pooled(app, seed, fast, governor, retry_storm, thermal, &pool)
    })?;
    if json {
        summarize(&report, &mut io::stderr().lock())?;
        println!("{}", report.to_json().to_string_compact());
    } else {
        summarize(&report, &mut io::stdout().lock())?;
    }
    eprintln!(
        "[chaos matrix wall-clock {:.2}s]",
        profiler.seconds("matrix").unwrap_or(0.0)
    );
    let mut pass = true;
    if let Some(min) = min_recall {
        let recall = report.anomaly.score.recall();
        if recall < min {
            eprintln!("[FAIL recall {recall:.3} below required {min:.3}]");
            pass = false;
        } else {
            eprintln!("[recall {recall:.3} meets required {min:.3}]");
        }
    }
    if let Some(storm) = &report.retry_storm {
        if storm.defended_goodput() <= storm.undefended_goodput() {
            eprintln!(
                "[FAIL retry-storm defenses lost goodput: {:.3} <= {:.3}]",
                storm.defended_goodput(),
                storm.undefended_goodput()
            );
            pass = false;
        }
        if !storm.recovered {
            eprintln!(
                "[FAIL retry-storm ladder stuck on overload rung {}]",
                storm.final_rung
            );
            pass = false;
        }
        if pass {
            eprintln!(
                "[retry-storm goodput {:.3} > ablated {:.3}, ladder recovered ({})]",
                storm.defended_goodput(),
                storm.undefended_goodput(),
                storm.final_rung
            );
        }
    }
    if let Some(t) = &report.thermal {
        let mut thermal_pass = true;
        if t.defended_goodput() <= t.undefended_goodput() {
            eprintln!(
                "[FAIL thermal power cap lost goodput: {:.3} <= {:.3}]",
                t.defended_goodput(),
                t.undefended_goodput()
            );
            thermal_pass = false;
        }
        if t.defended_p99_latency_micros >= t.undefended_p99_latency_micros {
            eprintln!(
                "[FAIL thermal power cap lost p99: {:.1}us >= {:.1}us]",
                t.defended_p99_latency_micros, t.undefended_p99_latency_micros
            );
            thermal_pass = false;
        }
        if !t.recovered {
            eprintln!(
                "[FAIL thermal health ladder stuck on overload rung {}]",
                t.final_rung
            );
            thermal_pass = false;
        }
        if thermal_pass {
            eprintln!(
                "[thermal goodput {:.3} > ablated {:.3}, p99 {:.1}us < {:.1}us, ladder recovered ({}, power rung {})]",
                t.defended_goodput(),
                t.undefended_goodput(),
                t.defended_p99_latency_micros,
                t.undefended_p99_latency_micros,
                t.final_rung,
                t.power_final_rung
            );
        }
        pass = pass && thermal_pass;
    }
    Ok((report, pass))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_chaos_meets_the_ci_recall_gate() {
        // The exact invocation the CI smoke step runs (fast mode).
        let (report, pass) = run(
            AppId::WebServer,
            42,
            true,
            Some(0.8),
            false,
            false,
            false,
            false,
        )
        .expect("chaos runs");
        assert!(
            pass,
            "recall {:.3} under the 0.8 gate",
            report.anomaly.score.recall()
        );
        assert!(report.anomaly.injected > 0);
        assert_eq!(
            report.overload.offered,
            report.overload.completed + report.overload.failed
        );
        assert!(
            report.governor.is_none(),
            "ungoverned matrix has no guard section"
        );
    }

    #[test]
    fn impossible_gate_fails_without_erroring() {
        let (_, pass) = run(
            AppId::WebServer,
            7,
            true,
            Some(1.01),
            false,
            false,
            false,
            false,
        )
        .expect("chaos runs");
        assert!(!pass);
    }

    #[test]
    fn json_mode_matches_the_report() {
        // stdout JSON equals report.to_json() — assert on the value the
        // function returns rather than capturing the stream.
        let (report, pass) =
            run(AppId::WebServer, 42, true, None, true, false, false, false).expect("chaos runs");
        assert!(pass);
        let text = report.to_json().to_string_compact();
        let parsed = rbv_telemetry::Json::parse(&text).expect("chaos JSON parses");
        assert_eq!(
            parsed.get("seed").and_then(rbv_telemetry::Json::as_f64),
            Some(42.0)
        );
        assert!(parsed.get("anomaly").is_some());
    }

    #[test]
    fn governor_mode_adds_the_guard_section() {
        // The CI governor smoke invocation: the matrix plus the governed
        // storm, reported under the `governor` member.
        let (report, pass) = run(
            AppId::WebServer,
            42,
            true,
            Some(0.8),
            false,
            true,
            false,
            false,
        )
        .expect("chaos runs");
        assert!(pass);
        let governor = report.governor.as_ref().expect("guard section present");
        assert!(governor.to_json().get("max_breach_streak").is_some());
        let text = report.to_json().to_string_compact();
        let parsed = rbv_telemetry::Json::parse(&text).expect("chaos JSON parses");
        assert!(parsed.get("governor").is_some());
    }
}
