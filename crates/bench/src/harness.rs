//! Shared experiment plumbing: standard run configurations, per-app
//! scales, and plain-text table/series rendering.

// Same exemption as `experiments`: the standard-run configs are valid by
// construction and the stdout convenience printers abort on a broken
// pipe, which is the conventional CLI behavior.
#![allow(clippy::expect_used)]

use std::io::{self, Write};

use rbv_core::series::Metric;
use rbv_os::{run_simulation, RunResult, SimConfig};
use rbv_workloads::{factory_for, AppId, RequestFactory};

/// Per-application instruction-count scale used by the harness.
///
/// WeBWorK requests run ~600 M instructions and TPC-H queries ~100 M at
/// paper scale; the harness scales the two long-request applications down
/// (keeping every ratio — request length spreads, syscall densities, phase
/// granularity relative to sampling period — intact) so the full
/// experiment suite completes in minutes. EXPERIMENTS.md documents this.
pub fn scale_of(app: AppId) -> f64 {
    match app {
        AppId::WebServer | AppId::Tpcc | AppId::Rubis => 1.0,
        AppId::Tpch => 0.5,
        AppId::Webwork => 0.1,
        AppId::MbenchSpin | AppId::MbenchData => 1.0,
    }
}

/// Standard request count per application for distribution experiments,
/// shrunk in `fast` mode (used by integration tests).
pub fn requests_of(app: AppId, fast: bool) -> usize {
    let full = match app {
        AppId::WebServer => 500,
        AppId::Tpcc => 400,
        AppId::Rubis => 300,
        AppId::Tpch => 150,
        AppId::Webwork => 80,
        AppId::MbenchSpin | AppId::MbenchData => 50,
    };
    if fast {
        (full / 5).max(20)
    } else {
        full
    }
}

/// Builds the standard factory for `app` at the harness scale.
pub fn standard_factory(app: AppId, seed: u64) -> Box<dyn RequestFactory + Send> {
    factory_for(app, seed, scale_of(app))
}

/// Runs `app` with the paper's per-application interrupt sampling period
/// (§3.1), either serial (1 request in flight) or 4-core concurrent.
pub fn standard_run(app: AppId, seed: u64, n: usize, serial: bool) -> RunResult {
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    if serial {
        cfg = cfg.serial();
    }
    let mut factory = standard_factory(app, seed);
    run_simulation(cfg, factory.as_mut(), n).expect("standard config is valid")
}

/// The signature / series bucket size (instructions) per application,
/// sized so a typical request spans some tens of buckets.
pub fn bucket_ins(app: AppId) -> f64 {
    match app {
        AppId::WebServer => 10e3,
        AppId::Tpcc => 60e3,
        AppId::Tpch => 1.2e6 * scale_of(AppId::Tpch).max(0.01) / 0.5,
        AppId::Rubis => 120e3,
        AppId::Webwork => 1.5e6,
        AppId::MbenchSpin | AppId::MbenchData => 100e3,
    }
}

/// All metrics the paper reports per sample period.
pub const REPORT_METRICS: [Metric; 3] = [Metric::Cpi, Metric::L2RefsPerIns, Metric::L2MissesPerRef];

// ---------------------------------------------------------------------------
// Plain-text rendering
// ---------------------------------------------------------------------------

/// Writes a section header to `out`.
pub fn section_to<W: Write>(out: &mut W, title: &str) -> io::Result<()> {
    writeln!(out)?;
    writeln!(out, "==== {title} ====")
}

/// Prints a section header to stdout.
pub fn section(title: &str) {
    section_to(&mut io::stdout().lock(), title).expect("stdout write");
}

/// Renders a horizontal bar of `value` relative to `max` (width 40).
pub fn bar(value: f64, max: f64) -> String {
    if max <= 0.0 || value <= 0.0 || !max.is_finite() || !value.is_finite() {
        return String::new();
    }
    let width = ((value / max) * 40.0).round().clamp(0.0, 40.0) as usize;
    "#".repeat(width)
}

/// Writes a table — header row plus aligned data rows — to `out`.
pub fn print_table_to<W: Write>(
    out: &mut W,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i.min(cols - 1)]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    writeln!(
        out,
        "{}",
        render(headers.iter().map(|s| s.to_string()).collect())
    )?;
    writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    )?;
    for row in rows {
        writeln!(out, "{}", render(row.clone()))?;
    }
    Ok(())
}

/// Prints a table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print_table_to(&mut io::stdout().lock(), headers, rows).expect("stdout write");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_and_counts_are_positive() {
        for app in AppId::SERVER_APPS {
            assert!(scale_of(app) > 0.0);
            assert!(requests_of(app, true) >= 20);
            assert!(requests_of(app, false) > requests_of(app, true));
            assert!(bucket_ins(app) > 0.0);
        }
    }

    #[test]
    fn bar_is_bounded() {
        assert_eq!(bar(0.0, 1.0), "");
        assert_eq!(bar(1.0, 1.0).len(), 40);
        assert_eq!(bar(2.0, 1.0).len(), 40);
        assert_eq!(bar(0.5, 1.0).len(), 20);
        assert_eq!(bar(1.0, 0.0), "");
    }

    #[test]
    fn table_renders_to_any_writer() {
        let mut buf = Vec::new();
        section_to(&mut buf, "title").unwrap();
        print_table_to(&mut buf, &["a", "bb"], &[vec!["1".into(), "22".into()]]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("==== title ===="));
        assert!(s.contains("a  bb"));
        assert!(s.contains("1  22"));
    }

    #[test]
    fn standard_run_produces_requests() {
        let r = standard_run(AppId::Tpcc, 1, 5, true);
        assert_eq!(r.completed.len(), 5);
    }
}
