//! Experiment harness regenerating every table and figure of *Request
//! Behavior Variations* (ASPLOS 2010).
//!
//! Each submodule of [`experiments`] reproduces one paper artifact and is
//! runnable through the `repro` binary:
//!
//! ```text
//! cargo run --release -p rbv-bench --bin repro -- fig1
//! cargo run --release -p rbv-bench --bin repro -- all
//! cargo run --release -p rbv-bench --bin repro -- list
//! ```
//!
//! Experiments return structured results (consumed by the integration
//! tests, which assert the paper's qualitative shapes) and print the same
//! rows/series the paper reports. Absolute numbers come from the simulated
//! platform; EXPERIMENTS.md records paper-vs-measured for every artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod benchcmd;
pub mod campaigncmd;
pub mod chaoscmd;
pub mod clustercmd;
pub mod diffcmd;
pub mod experiments;
pub mod explaincmd;
pub mod harness;
pub mod servecmd;
pub mod tracecmd;
