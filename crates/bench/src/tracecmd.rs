//! `repro trace <app>` — run one traced simulation on the standard
//! 4-core configuration and export the Perfetto trace plus metrics
//! sidecars.

use std::io::{self, Write};
use std::path::Path;

use rbv_os::{run_simulation_traced, RbvError, RunResult, SimConfig};
use rbv_telemetry::{MemorySink, MetricsRegistry, PerfettoTrace, SelfProfiler, TraceEvent};
use rbv_workloads::AppId;

use crate::harness::{print_table_to, requests_of, section_to, standard_factory};

/// Everything one traced run produces, kept for tests and exporters.
pub struct TraceOutcome {
    /// The simulated application.
    pub app: AppId,
    /// Effective RNG seed of the run.
    pub seed: u64,
    /// Cores of the simulated machine (Perfetto track count).
    pub cores: usize,
    /// The run itself, identical to an untraced run at the same seed.
    pub result: RunResult,
    /// Every trace event the engine emitted, in emission order.
    pub events: Vec<TraceEvent>,
    /// Run metrics plus simulator self-profile, ready to snapshot.
    pub registry: MetricsRegistry,
}

/// Runs `app` traced under the standard 4-core configuration (same
/// config as [`crate::harness::standard_run`] concurrent mode).
///
/// # Errors
///
/// Propagates [`RbvError::Config`] if the standard configuration is ever
/// invalidated (e.g. by a bad sampling period).
pub fn run_traced(app: AppId, fast: bool, seed: u64) -> Result<TraceOutcome, RbvError> {
    let mut profiler = SelfProfiler::new();
    let n = requests_of(app, fast);
    let mut cfg = SimConfig::paper_default().with_interrupt_sampling(app.sampling_period_micros());
    cfg.seed = seed;
    let cores = cfg.machine.topology.cores;
    let mut factory = profiler.time("build", || standard_factory(app, seed));
    let mut sink = MemorySink::new();
    let result = profiler.time("simulate", || {
        run_simulation_traced(cfg, factory.as_mut(), n, &mut sink)
    })?;

    let mut registry = MetricsRegistry::new();
    registry.count("run.seed", seed);
    result.fill_metrics(&mut registry);
    registry.count("trace.events", sink.len() as u64);
    profiler.report(
        &mut registry,
        Some(result.total_time.as_f64()),
        Some(result.stats.engine_events),
    );
    Ok(TraceOutcome {
        app,
        seed,
        cores,
        result,
        events: sink.into_events(),
        registry,
    })
}

/// Writes the Perfetto trace (`*.json`, Chrome trace-event format) for
/// `outcome` to `path` atomically (stage + rename, never a prefix).
pub fn write_trace(outcome: &TraceOutcome, path: &Path) -> io::Result<()> {
    let body = PerfettoTrace::from_events(&outcome.events, outcome.cores).to_json_string();
    rbv_guard::write_atomic(path, body.as_bytes())
}

/// Writes the metrics sidecar for `outcome` to `path` — CSV when the
/// extension is `.csv`, compact JSON otherwise — atomically (stage +
/// rename). The effective seed is always included as the `run.seed`
/// counter.
pub fn write_metrics(outcome: &TraceOutcome, path: &Path) -> io::Result<()> {
    let snapshot = outcome.registry.snapshot();
    let body = if path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
    {
        snapshot.to_csv()
    } else {
        snapshot.to_json().to_string_compact()
    };
    rbv_guard::write_atomic(path, body.as_bytes())
}

/// Writes the human summary of a traced run to `out`.
pub fn summarize<W: Write>(outcome: &TraceOutcome, out: &mut W) -> io::Result<()> {
    section_to(out, &format!("trace {}", outcome.app))?;
    let stats = &outcome.result.stats;
    let rows = vec![
        vec!["seed".to_string(), outcome.seed.to_string()],
        vec![
            "requests completed".to_string(),
            outcome.result.completed.len().to_string(),
        ],
        vec![
            "simulated time (ms)".to_string(),
            format!("{:.2}", outcome.result.total_time.as_micros_f64() / 1e3),
        ],
        vec!["engine events".to_string(), stats.engine_events.to_string()],
        vec![
            "context switches".to_string(),
            stats.context_switches.to_string(),
        ],
        vec![
            "samples (in-kernel / interrupt)".to_string(),
            format!("{} / {}", stats.samples_inkernel, stats.samples_interrupt),
        ],
        vec!["trace events".to_string(), outcome.events.len().to_string()],
    ];
    print_table_to(out, &["quantity", "value"], &rows)
}

/// The `repro trace` entry point: run, export, summarize to stdout.
///
/// # Errors
///
/// Returns [`RbvError`] on configuration or export failures.
pub fn run(
    app: AppId,
    fast: bool,
    seed: u64,
    trace_path: Option<&Path>,
    metrics_path: Option<&Path>,
) -> Result<(), RbvError> {
    let outcome = run_traced(app, fast, seed)?;
    if let Some(path) = trace_path {
        write_trace(&outcome, path)?;
        eprintln!("[trace written to {}]", path.display());
    }
    if let Some(path) = metrics_path {
        write_metrics(&outcome, path)?;
        eprintln!("[metrics written to {}]", path.display());
    }
    summarize(&outcome, &mut io::stdout().lock())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_run_matches_untraced() {
        let outcome = run_traced(AppId::Tpcc, true, 9).expect("standard config is valid");
        let untraced =
            crate::harness::standard_run(AppId::Tpcc, 9, outcome.result.completed.len(), false);
        assert_eq!(outcome.result.stats, untraced.stats);
        assert_eq!(outcome.result.completed, untraced.completed);
        assert!(!outcome.events.is_empty());
        assert_eq!(outcome.registry.counter_value("run.seed"), Some(9));
    }

    #[test]
    fn summary_renders() {
        let outcome = run_traced(AppId::Tpcc, true, 1).expect("standard config is valid");
        let mut buf = Vec::new();
        summarize(&outcome, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("trace events"));
    }
}
