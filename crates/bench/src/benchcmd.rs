//! `repro bench [<app>|--all]` — collect the run ledger (latency/CPI/L2
//! sketches, observer-effect accounting, stock-vs-easing tail deltas,
//! chaos precision/recall) and emit one self-describing JSON document.
//!
//! The document is deterministic in `(label, seed, fast)`: running the
//! same binary twice at the same seed — at *any* `--threads` setting —
//! produces byte-identical output, which is what lets `repro diff` act
//! as a regression gate. Wall-clock self-profiling is opt-in
//! (`--wallclock`) and never diffed.

use std::path::Path;

use rbv_ledger::{collect_pooled, RunLedger};
use rbv_os::RbvError;
use rbv_telemetry::SelfProfiler;
use rbv_workloads::AppId;

/// Fails fast — with a clear [`RbvError::Config`] naming the directory —
/// when `path`'s parent does not exist, so a mistyped `--out` is reported
/// before minutes of collection instead of as a cryptic I/O error after.
///
/// # Errors
///
/// [`RbvError::Config`] when the parent directory is missing.
pub fn check_parent_dir(path: &Path) -> Result<(), RbvError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(RbvError::Config(format!(
                "output directory `{}` does not exist; create it first or point --out elsewhere",
                parent.display()
            )));
        }
    }
    Ok(())
}

/// The `repro bench` entry point: collect the ledger for `apps` and write
/// it to `out` (or stdout when `out` is `None`).
///
/// # Errors
///
/// Returns [`RbvError`] on configuration or output failures (a missing
/// `--out` parent directory is rejected before collection starts).
pub fn run(
    apps: &[AppId],
    label: &str,
    seed: u64,
    fast: bool,
    wallclock: bool,
    out: Option<&Path>,
) -> Result<RunLedger, RbvError> {
    if let Some(path) = out {
        check_parent_dir(path)?;
    }
    let mut profiler = SelfProfiler::new();
    let pool = rbv_par::Pool::global();
    let ledger = collect_pooled(apps, label, seed, fast, wallclock, &mut profiler, &pool)?;
    let text = ledger.to_string_compact();
    match out {
        Some(path) => {
            rbv_guard::write_atomic(path, text.as_bytes())?;
            eprintln!("[ledger written to {}]", path.display());
        }
        None => println!("{text}"),
    }
    for (stage, secs) in profiler.stages() {
        eprintln!("[bench {stage} {secs:.2}s wall]");
    }
    eprintln!(
        "[bench {} app(s) in {:.1}s wall]",
        apps.len(),
        profiler.total_seconds()
    );
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_writes_a_parseable_document() {
        let dir = std::env::temp_dir().join("rbv-benchcmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let ledger =
            run(&[AppId::Webwork], "webwork", 7, true, false, Some(&path)).expect("bench runs");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, ledger.to_string_compact());
        let json = rbv_telemetry::Json::parse(&text).unwrap();
        let back = RunLedger::from_json(&json).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.apps[0].app, "webwork");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_out_parent_dir_is_a_clear_config_error() {
        let missing = std::env::temp_dir()
            .join(format!("rbv-benchcmd-absent-{}", std::process::id()))
            .join("nested")
            .join("BENCH.json");
        let err = run(&[AppId::Webwork], "webwork", 7, true, false, Some(&missing))
            .expect_err("missing parent dir must be rejected");
        match &err {
            RbvError::Config(msg) => {
                assert!(msg.contains("does not exist"), "unhelpful message: {msg}");
                assert!(
                    msg.contains("nested") || msg.contains("rbv-benchcmd-absent"),
                    "message should name the directory: {msg}"
                );
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 1, "config errors exit 1");
    }

    #[test]
    fn bare_filename_outputs_pass_the_parent_check() {
        check_parent_dir(Path::new("BENCH.json")).expect("cwd-relative paths are fine");
        check_parent_dir(&std::env::temp_dir().join("x.json")).expect("existing dir is fine");
    }
}
