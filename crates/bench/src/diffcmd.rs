//! `repro diff <baseline.json> <candidate.json>` — the cross-run
//! regression gate: flatten both ledgers into named metrics, apply
//! per-metric tolerance bands, and fail (exit nonzero) on any
//! out-of-band deviation, naming each offending metric with both values.

use std::io::{self, Write};
use std::path::Path;

use rbv_guard::DocumentError;
use rbv_ledger::{diff_documents, DiffReport};
use rbv_os::RbvError;
use rbv_telemetry::Json;

/// Loads and parses one ledger document, distinguishing a file that
/// cannot be read ([`RbvError::Io`]) from one whose bytes are not a
/// complete JSON document — a corrupt (typically byte-truncated partial
/// write) ledger, reported as a usage error (exit code 2) naming the
/// offending path.
fn load(path: &Path) -> Result<Json, RbvError> {
    rbv_guard::read_document(path).map_err(|e| match e {
        DocumentError::Io(io) => RbvError::Io(io),
        corrupt @ DocumentError::Corrupt(_) => {
            RbvError::Cli(format!("{}: {corrupt}", path.display()))
        }
    })
}

/// Writes the human-readable verdict for `report` to `out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn render<W: Write>(report: &DiffReport, out: &mut W) -> io::Result<()> {
    if report.passed() {
        writeln!(out, "diff OK: {} metrics within tolerance", report.compared)?;
        return Ok(());
    }
    for v in &report.violations {
        let direction = if v.candidate.is_nan() {
            "missing from candidate"
        } else if v.baseline.is_nan() {
            "new in candidate"
        } else if v.increased() {
            "regressed up"
        } else {
            "moved down"
        };
        writeln!(
            out,
            "REGRESSION {}: baseline {:.6} -> candidate {:.6} ({direction}, \
             deviation {:.4} > tolerance {:.4})",
            v.metric, v.baseline, v.candidate, v.deviation, v.tolerance
        )?;
    }
    writeln!(
        out,
        "diff FAILED: {} of {} metrics out of tolerance",
        report.violations.len(),
        report.compared
    )?;
    Ok(())
}

/// The `repro diff` entry point. Returns whether the gate passed.
///
/// # Errors
///
/// Returns [`RbvError::Cli`] on corrupt (unparseable, e.g. truncated)
/// documents or a schema mismatch, [`RbvError::Io`] on unreadable files
/// or output failures.
pub fn run(baseline: &Path, candidate: &Path, tolerance: Option<f64>) -> Result<bool, RbvError> {
    let base = load(baseline)?;
    let cand = load(candidate)?;
    let report = diff_documents(&base, &cand, tolerance).map_err(RbvError::Cli)?;
    render(&report, &mut io::stdout().lock())?;
    Ok(report.passed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_ledger::Violation;

    #[test]
    fn render_names_the_metric_and_both_values() {
        let report = DiffReport {
            compared: 12,
            violations: vec![Violation {
                metric: "web.cpi.p99".into(),
                baseline: 2.0,
                candidate: 2.2,
                deviation: 0.1,
                tolerance: 0.022,
            }],
        };
        let mut buf = Vec::new();
        render(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("web.cpi.p99"));
        assert!(s.contains("2.0"));
        assert!(s.contains("2.2"));
        assert!(s.contains("regressed up"));
        assert!(s.contains("FAILED"));
    }

    #[test]
    fn clean_report_renders_ok_line() {
        let report = DiffReport {
            compared: 40,
            violations: vec![],
        };
        let mut buf = Vec::new();
        render(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("diff OK"));
        assert!(s.contains("40"));
    }

    #[test]
    fn unreadable_document_is_a_cli_error() {
        let err = run(
            Path::new("/nonexistent/base.json"),
            Path::new("/nonexistent/cand.json"),
            None,
        )
        .unwrap_err();
        assert_ne!(err.exit_code(), 0);
    }

    #[test]
    fn byte_truncated_document_is_a_corrupt_document_usage_error() {
        // A crash mid-write (without `write_atomic`) leaves a prefix of
        // the ledger on disk; `repro diff` must name the corruption and
        // exit 2 rather than diffing garbage.
        let dir = std::env::temp_dir().join(format!("rbv-diffcmd-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = r#"{"schema":"rbv-ledger/v2","label":"t","seed":1,"fast":true,"apps":[]}"#;
        let whole = dir.join("base.json");
        let truncated = dir.join("cand.json");
        std::fs::write(&whole, full).unwrap();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        let err = run(&whole, &truncated, None).unwrap_err();
        assert_eq!(
            err.exit_code(),
            2,
            "corrupt ledger must be a usage error: {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("corrupt document"), "{msg}");
        assert!(msg.contains("cand.json"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
