//! `repro campaign` — run a long-horizon campaign grid (seeds × apps ×
//! workload mixes × scheduler variants × day/night epochs) into an
//! `rbv-warehouse/v1` document, and/or analyze one with the drift /
//! variance / regression-mining report.
//!
//! The warehouse is deterministic in the campaign spec: the same seed and
//! grid produce byte-identical documents at any `--threads` setting and
//! across repeated runs (`rbv_par` ordered collect + canonical-order
//! fold). Wall-clock shard timings are opt-in (`--wallclock`) non-diffed
//! metadata.
//!
//! `--report` runs the three warehouse analyses; a mined regression or a
//! merge-invariant violation makes the command exit 1 (drift flags on a
//! `--drift` campaign are the expected outcome, not a failure).

use std::path::Path;

use rbv_os::RbvError;
use rbv_telemetry::SelfProfiler;
use rbv_warehouse::{analyze, run_campaign, CampaignSpec, Warehouse};

use crate::benchcmd::check_parent_dir;

/// Builds the campaign spec from the CLI surface.
fn spec_of(seed: u64, fast: bool, drift: bool, epochs: Option<u32>) -> CampaignSpec {
    let mut spec = if fast {
        CampaignSpec::fast(seed)
    } else {
        CampaignSpec::full(seed)
    };
    if let Some(epochs) = epochs {
        spec.epochs = epochs;
    }
    if drift {
        spec = spec.with_drift();
    }
    spec
}

/// Loads a warehouse document previously written by this command.
fn load_warehouse(path: &Path) -> Result<Warehouse, RbvError> {
    let json = rbv_guard::read_document(path).map_err(|e| match e {
        rbv_guard::DocumentError::Io(io) => RbvError::Io(io),
        rbv_guard::DocumentError::Corrupt(detail) => {
            RbvError::Config(format!("{}: {detail}", path.display()))
        }
    })?;
    Warehouse::from_json(&json)
        .map_err(|e| RbvError::Config(format!("{}: not a warehouse: {e}", path.display())))
}

/// The `repro campaign` entry point.
///
/// With `load` set, analyzes an existing warehouse file instead of
/// running the grid (`--report` implied). Otherwise runs the campaign,
/// writes the document to `out` (or stdout), and — when `report` is set —
/// analyzes it in the same invocation.
///
/// Returns whether the campaign is clean; the caller maps `false` to
/// exit 1.
///
/// # Errors
///
/// Returns [`RbvError`] on configuration or output failures (a missing
/// `--out` parent directory is rejected before any shard runs; a merge
/// invariant violation is an error even without `--report`).
#[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
pub fn run(
    load: Option<&Path>,
    seed: u64,
    fast: bool,
    drift: bool,
    epochs: Option<u32>,
    wallclock: bool,
    out: Option<&Path>,
    report: bool,
    json: bool,
) -> Result<bool, RbvError> {
    let warehouse = match load {
        Some(path) => load_warehouse(path)?,
        None => {
            if let Some(path) = out {
                check_parent_dir(path)?;
            }
            let spec = spec_of(seed, fast, drift, epochs);
            let shard_count = spec.shards().len();
            let mut profiler = SelfProfiler::new();
            let pool = rbv_par::Pool::global();
            let warehouse = run_campaign(&spec, &pool, wallclock, &mut profiler, None)?;
            eprintln!(
                "[campaign {}: {} shards over {} thread(s) in {:.1}s wall]",
                spec.label,
                shard_count,
                pool.threads(),
                profiler.total_seconds()
            );
            let text = warehouse.to_json().to_string_compact();
            match out {
                Some(path) => {
                    rbv_guard::write_atomic(path, text.as_bytes())?;
                    eprintln!("[warehouse written to {}]", path.display());
                }
                None if !report => println!("{text}"),
                None => {}
            }
            warehouse
        }
    };

    if warehouse.invariant_violations() > 0 {
        return Err(RbvError::Config(format!(
            "warehouse merge recorded {} invariant violation(s)",
            warehouse.invariant_violations()
        )));
    }
    if !report && load.is_none() {
        return Ok(true);
    }

    let analysis = analyze(&warehouse);
    if json {
        // Machine-readable JSON on stdout; the human table still renders
        // on stderr so pipelines stay parseable without losing the
        // at-a-glance summary (same split as `repro chaos --json`).
        eprint!("{}", analysis.render());
        println!("{}", analysis.to_json().to_string_compact());
    } else {
        print!("{}", analysis.render());
    }
    Ok(analysis.clean())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rbv-campaigncmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{label}.json"))
    }

    /// One tiny end-to-end pass: run → write → load → report clean.
    #[test]
    fn campaign_writes_and_reanalyzes_a_warehouse() {
        let path = temp_path("tiny");
        // A reduced grid via --epochs on the fast spec keeps this test
        // affordable; exercised fully by crates/warehouse tests and CI.
        let clean = run(
            None,
            7,
            true,
            false,
            Some(2),
            true,
            Some(&path),
            false,
            false,
        )
        .expect("campaign runs");
        assert!(clean);
        let reloaded = run(Some(&path), 0, false, false, None, false, None, true, true)
            .expect("report on existing warehouse");
        assert!(reloaded, "epoch-0/1-only grid has nothing to mine");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_out_parent_fails_before_any_shard_runs() {
        let missing = std::env::temp_dir()
            .join(format!("rbv-campaigncmd-absent-{}", std::process::id()))
            .join("w.json");
        let start = std::time::Instant::now();
        let err = run(
            None,
            7,
            true,
            false,
            None,
            false,
            Some(&missing),
            false,
            false,
        )
        .expect_err("missing parent must be rejected");
        assert!(matches!(err, RbvError::Config(_)), "{err:?}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "must fail before running the grid"
        );
    }

    #[test]
    fn loading_garbage_is_a_clear_config_error() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"{\"schema\":\"other/v9\"}").unwrap();
        let err = run(Some(&path), 0, false, false, None, false, None, true, false)
            .expect_err("wrong schema must be rejected");
        match err {
            RbvError::Config(msg) => assert!(msg.contains("not a warehouse"), "{msg}"),
            other => panic!("expected Config, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
