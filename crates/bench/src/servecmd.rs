//! `repro serve <app>` — open-loop serving under overload through the
//! `rbv-openloop` harness: seeded Poisson/MMPP arrivals at a chosen
//! multiple of measured capacity, the overload defenses as ablation
//! flags, and a goodput/shed/retry/deadline-miss ledger streamed from
//! bounded memory.

use std::io::{self, Write};
use std::path::Path;

use rbv_openloop::{serve, ServeReport, ServeSpec};
use rbv_os::RbvError;

/// Runs the serve campaign and prints the report — the human table by
/// default, the machine-readable ledger JSON with `json` (the table
/// then goes to stderr so pipelines stay parseable). `wallclock`
/// opts into the wall-seconds / simulated-requests-per-wall-second
/// profile section, which is deliberately excluded otherwise so output
/// stays byte-identical across `--threads` settings. `spans_out`
/// (requires a spec with `trace_spans` set) writes the retained
/// per-request spans as a Perfetto trace with retry flow arrows.
///
/// # Errors
///
/// Returns [`RbvError`] from validation, the run, or report output.
pub fn run(
    spec: &ServeSpec,
    wallclock: bool,
    out: Option<&Path>,
    json: bool,
    spans_out: Option<&Path>,
) -> Result<ServeReport, RbvError> {
    let pool = rbv_par::Pool::global();
    let start = std::time::Instant::now();
    let mut report = serve(spec, &pool)?;
    if wallclock {
        report.wall_seconds = Some(start.elapsed().as_secs_f64());
    }
    let text = report.to_json().to_string_compact();
    if json {
        summarize(&report, &mut io::stderr().lock())?;
        println!("{text}");
    } else {
        summarize(&report, &mut io::stdout().lock())?;
    }
    if let Some(path) = out {
        std::fs::write(path, format!("{text}\n"))?;
        eprintln!("[serve ledger written to {}]", path.display());
    }
    if let Some(path) = spans_out {
        let spans: usize = report.spans.iter().map(|(_, s)| s.len()).sum();
        let trace = rbv_trace::spans_to_perfetto(&report.spans);
        std::fs::write(path, trace.to_json_string())?;
        eprintln!("[{spans} request spans written to {}]", path.display());
    }
    Ok(report)
}

/// Writes the human-readable serve report.
pub fn summarize<W: Write>(report: &ServeReport, out: &mut W) -> io::Result<()> {
    let spec = &report.spec;
    writeln!(out)?;
    writeln!(
        out,
        "==== serve {} (seed {}, {} requests, {:.2}x overload, {} arrivals) ====",
        spec.app,
        spec.seed,
        spec.requests,
        spec.overload,
        if spec.mmpp { "mmpp" } else { "poisson" }
    )?;
    writeln!(
        out,
        "defenses: admission {} / shed {} / retries {} / guard {} / discipline {}",
        on_off(spec.admission),
        on_off(spec.shed),
        on_off(spec.retries),
        on_off(spec.guard),
        spec.discipline
            .map_or("none", rbv_os::QueueDiscipline::label)
    )?;
    writeln!(out)?;
    writeln!(
        out,
        "  shards                   {} (mean service {:.0} cycles)",
        report.shards, report.mean_service_cycles
    )?;
    writeln!(
        out,
        "  offered / completed      {} / {} (goodput {:.3})",
        report.offered(),
        report.completed,
        report.goodput_frac()
    )?;
    writeln!(
        out,
        "  failed by reason         shed {} / deadline {} / timeout {} / codel {} / brownout {}",
        report.failed_by_reason[0],
        report.failed_by_reason[1],
        report.failed_by_reason[2],
        report.failed_by_reason[3],
        report.failed_by_reason[4]
    )?;
    writeln!(
        out,
        "  client timeouts/retries  {} / {}",
        report.client_timeouts, report.client_retries
    )?;
    writeln!(
        out,
        "  admission rej/retries    {} / {}",
        report.admission_rejections, report.admission_retries
    )?;
    writeln!(
        out,
        "  wasted cycles            {:.3e}",
        report.wasted_cycles
    )?;
    writeln!(
        out,
        "  ladder transitions       {} (final rung {}, recovered {})",
        report.health_transitions,
        report.final_rung.label(),
        if report.recovered() { "yes" } else { "NO" }
    )?;
    if let Some(p50) = report.latency_us.p50() {
        writeln!(
            out,
            "  latency p50/p99 (us)     {:.1} / {:.1}",
            p50,
            report.latency_us.p99().unwrap_or(f64::NAN)
        )?;
    }
    if let Some(trace) = &report.trace {
        writeln!(
            out,
            "  visible p50/p99 (us)     {:.1} / {:.1} (spans: {} checks, {} violations)",
            trace.client_visible_us.p50().unwrap_or(0.0),
            trace.client_visible_us.p99().unwrap_or(0.0),
            trace.invariant_checks,
            trace.violations_total()
        )?;
        let stages = [
            ("queue", trace.queue_us.p99().unwrap_or(0.0)),
            ("service", trace.service_us.p99().unwrap_or(0.0)),
            ("backoff", trace.backoff_us.p99().unwrap_or(0.0)),
            ("other", trace.other_us.p99().unwrap_or(0.0)),
        ];
        let total: f64 = stages.iter().map(|(_, v)| v).sum();
        if total > 0.0 {
            let shares: Vec<String> = stages
                .iter()
                .map(|(name, v)| format!("{name} {:.0}%", 100.0 * v / total))
                .collect();
            writeln!(out, "  p99 stage shares         {}", shares.join(" / "))?;
        }
    }
    if let (Some(wall), Some(rate)) = (report.wall_seconds, report.sim_requests_per_wall_second()) {
        writeln!(
            out,
            "  wall-clock               {wall:.2}s ({rate:.0} simulated requests/s)"
        )?;
    }
    Ok(())
}

fn on_off(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_workloads::AppId;

    #[test]
    fn serve_cmd_runs_writes_and_reports() {
        let dir = std::env::temp_dir().join("rbv-servecmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json");
        let mut spec = ServeSpec::new(AppId::WebServer, 80, 9);
        spec.overload = 2.0;
        let report = run(&spec, true, Some(&path), false, None).expect("serve cmd");
        assert_eq!(report.completed + report.failed(), 80);
        assert!(report.wall_seconds.is_some());
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = rbv_telemetry::Json::parse(text.trim()).expect("ledger parses");
        assert_eq!(
            parsed.get("schema").and_then(rbv_telemetry::Json::as_str),
            Some(rbv_openloop::SCHEMA)
        );
        // The written ledger includes the opt-in profile section here
        // (wallclock was requested) — and the table renders.
        assert!(parsed.get("profile").is_some());
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("goodput"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn traced_serve_cmd_writes_spans_and_reports_attribution() {
        let dir = std::env::temp_dir().join("rbv-servecmd-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("serve.json");
        let spans = dir.join("spans.json");
        let mut spec = ServeSpec::new(AppId::WebServer, 60, 5);
        spec.overload = 2.0;
        spec.trace = true;
        spec.trace_spans = true;
        let report = run(&spec, false, Some(&ledger), false, Some(&spans)).expect("traced serve");
        let text = std::fs::read_to_string(&ledger).unwrap();
        let parsed = rbv_telemetry::Json::parse(text.trim()).expect("ledger parses");
        assert!(parsed.get("trace").is_some(), "extended ledger has trace");
        let perfetto = std::fs::read_to_string(&spans).unwrap();
        let doc = rbv_telemetry::Json::parse(&perfetto).expect("spans parse");
        assert!(!doc
            .get("traceEvents")
            .and_then(rbv_telemetry::Json::as_array)
            .unwrap()
            .is_empty());
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("visible p50/p99"), "{s}");
        assert!(s.contains("p99 stage shares"), "{s}");
        std::fs::remove_file(&ledger).ok();
        std::fs::remove_file(&spans).ok();
    }
}
