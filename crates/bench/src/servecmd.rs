//! `repro serve <app>` — open-loop serving under overload through the
//! `rbv-openloop` harness: seeded Poisson/MMPP arrivals at a chosen
//! multiple of measured capacity, the overload defenses as ablation
//! flags, and a goodput/shed/retry/deadline-miss ledger streamed from
//! bounded memory.

use std::io::{self, Write};
use std::path::Path;

use rbv_openloop::{serve, ServeReport, ServeSpec};
use rbv_os::RbvError;

/// Runs the serve campaign and prints the report — the human table by
/// default, the machine-readable ledger JSON with `json` (the table
/// then goes to stderr so pipelines stay parseable). `wallclock`
/// opts into the wall-seconds / simulated-requests-per-wall-second
/// profile section, which is deliberately excluded otherwise so output
/// stays byte-identical across `--threads` settings. `spans_out`
/// (requires a spec with `trace_spans` set) writes the retained
/// per-request spans as a Perfetto trace with retry flow arrows.
/// `load_sweep` re-serves the spec across a ladder of load multiples
/// and prints a goodput/latency-vs-load table to stderr (with a joules
/// column when the power model is on).
///
/// # Errors
///
/// Returns [`RbvError`] from validation, the run, or report output.
pub fn run(
    spec: &ServeSpec,
    wallclock: bool,
    out: Option<&Path>,
    json: bool,
    spans_out: Option<&Path>,
    load_sweep: bool,
) -> Result<ServeReport, RbvError> {
    let pool = rbv_par::Pool::global();
    let start = std::time::Instant::now();
    let mut report = serve(spec, &pool)?;
    if wallclock {
        report.wall_seconds = Some(start.elapsed().as_secs_f64());
    }
    let text = report.to_json().to_string_compact();
    if json {
        summarize(&report, &mut io::stderr().lock())?;
        println!("{text}");
    } else {
        summarize(&report, &mut io::stdout().lock())?;
    }
    if let Some(path) = out {
        std::fs::write(path, format!("{text}\n"))?;
        eprintln!("[serve ledger written to {}]", path.display());
    }
    if let Some(path) = spans_out {
        let spans: usize = report.spans.iter().map(|(_, s)| s.len()).sum();
        let trace = rbv_trace::spans_to_perfetto(&report.spans);
        std::fs::write(path, trace.to_json_string())?;
        eprintln!("[{spans} request spans written to {}]", path.display());
    }
    if load_sweep {
        sweep_loads(spec, &pool, &mut io::stderr().lock())?;
    }
    Ok(report)
}

/// The load multiples `--load-sweep` walks, as fractions of measured
/// capacity.
pub const SWEEP_LOADS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// Re-serves `spec` at each sweep load and writes the
/// goodput/latency-vs-load table. Each point is an independent
/// deterministic serve of the same spec with only the overload factor
/// replaced, so the table composes with every ablation flag; the joules
/// column appears when the power model is on.
///
/// # Errors
///
/// Returns [`RbvError`] from validation, a sweep run, or output.
pub fn sweep_loads<W: Write>(
    spec: &ServeSpec,
    pool: &rbv_par::Pool,
    out: &mut W,
) -> Result<(), RbvError> {
    writeln!(out)?;
    if spec.power {
        writeln!(out, "load sweep:  load   goodput   p99 (us)    joules")?;
    } else {
        writeln!(out, "load sweep:  load   goodput   p99 (us)")?;
    }
    for load in SWEEP_LOADS {
        let mut point = *spec;
        point.overload = load;
        let r = serve(&point, pool)?;
        let p99 = r.latency_us.p99().unwrap_or(f64::NAN);
        if let Some(energy) = &r.energy {
            writeln!(
                out,
                "            {load:5.2}x    {:.3}   {p99:8.1}   {:7.2}",
                r.goodput_frac(),
                energy.total_joules()
            )?;
        } else {
            writeln!(
                out,
                "            {load:5.2}x    {:.3}   {p99:8.1}",
                r.goodput_frac()
            )?;
        }
    }
    Ok(())
}

/// Writes the human-readable serve report.
pub fn summarize<W: Write>(report: &ServeReport, out: &mut W) -> io::Result<()> {
    let spec = &report.spec;
    writeln!(out)?;
    writeln!(
        out,
        "==== serve {} (seed {}, {} requests, {:.2}x overload, {} arrivals) ====",
        spec.app,
        spec.seed,
        spec.requests,
        spec.overload,
        if spec.mmpp { "mmpp" } else { "poisson" }
    )?;
    writeln!(
        out,
        "defenses: admission {} / shed {} / retries {} / guard {} / discipline {}",
        on_off(spec.admission),
        on_off(spec.shed),
        on_off(spec.retries),
        on_off(spec.guard),
        spec.discipline
            .map_or("none", rbv_os::QueueDiscipline::label)
    )?;
    writeln!(out)?;
    writeln!(
        out,
        "  shards                   {} (mean service {:.0} cycles)",
        report.shards, report.mean_service_cycles
    )?;
    writeln!(
        out,
        "  offered / completed      {} / {} (goodput {:.3})",
        report.offered(),
        report.completed,
        report.goodput_frac()
    )?;
    writeln!(
        out,
        "  failed by reason         shed {} / deadline {} / timeout {} / codel {} / brownout {}",
        report.failed_by_reason[0],
        report.failed_by_reason[1],
        report.failed_by_reason[2],
        report.failed_by_reason[3],
        report.failed_by_reason[4]
    )?;
    writeln!(
        out,
        "  client timeouts/retries  {} / {}",
        report.client_timeouts, report.client_retries
    )?;
    writeln!(
        out,
        "  admission rej/retries    {} / {}",
        report.admission_rejections, report.admission_retries
    )?;
    writeln!(
        out,
        "  wasted cycles            {:.3e}",
        report.wasted_cycles
    )?;
    writeln!(
        out,
        "  ladder transitions       {} (final rung {}, recovered {})",
        report.health_transitions,
        report.final_rung.label(),
        if report.recovered() { "yes" } else { "NO" }
    )?;
    if let Some(p50) = report.latency_us.p50() {
        writeln!(
            out,
            "  latency p50/p99 (us)     {:.1} / {:.1}",
            p50,
            report.latency_us.p99().unwrap_or(f64::NAN)
        )?;
    }
    if let Some(trace) = &report.trace {
        writeln!(
            out,
            "  visible p50/p99 (us)     {:.1} / {:.1} (spans: {} checks, {} violations)",
            trace.client_visible_us.p50().unwrap_or(0.0),
            trace.client_visible_us.p99().unwrap_or(0.0),
            trace.invariant_checks,
            trace.violations_total()
        )?;
        let stages = [
            ("queue", trace.queue_us.p99().unwrap_or(0.0)),
            ("service", trace.service_us.p99().unwrap_or(0.0)),
            ("backoff", trace.backoff_us.p99().unwrap_or(0.0)),
            ("other", trace.other_us.p99().unwrap_or(0.0)),
        ];
        let total: f64 = stages.iter().map(|(_, v)| v).sum();
        if total > 0.0 {
            let shares: Vec<String> = stages
                .iter()
                .map(|(name, v)| format!("{name} {:.0}%", 100.0 * v / total))
                .collect();
            writeln!(out, "  p99 stage shares         {}", shares.join(" / "))?;
        }
    }
    if let Some(energy) = &report.energy {
        let per_core: Vec<String> = energy
            .core_uw_cycles
            .iter()
            .map(|&c| format!("{:.2}", rbv_os::joules(c)))
            .collect();
        writeln!(
            out,
            "  energy                   {:.2} J (per core {})",
            energy.total_joules(),
            per_core.join(" / ")
        )?;
        writeln!(
            out,
            "  throttle latches/rel     {} / {} (still throttled {})",
            energy.throttle_engages, energy.throttle_releases, energy.throttled_final
        )?;
        writeln!(
            out,
            "  dvfs transitions         {} (max temp {:.1} C)",
            energy.dvfs_transitions,
            energy.max_temp_milli_c as f64 / 1000.0
        )?;
        writeln!(
            out,
            "  power rung transitions   {} (final rung {})",
            energy.power_rung_transitions,
            energy.power_rung_label()
        )?;
        writeln!(
            out,
            "  energy conservation      {} violations",
            energy.conservation_violations
        )?;
    }
    if let (Some(wall), Some(rate)) = (report.wall_seconds, report.sim_requests_per_wall_second()) {
        writeln!(
            out,
            "  wall-clock               {wall:.2}s ({rate:.0} simulated requests/s)"
        )?;
    }
    Ok(())
}

fn on_off(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_workloads::AppId;

    #[test]
    fn serve_cmd_runs_writes_and_reports() {
        let dir = std::env::temp_dir().join("rbv-servecmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.json");
        let mut spec = ServeSpec::new(AppId::WebServer, 80, 9);
        spec.overload = 2.0;
        let report = run(&spec, true, Some(&path), false, None, false).expect("serve cmd");
        assert_eq!(report.completed + report.failed(), 80);
        assert!(report.wall_seconds.is_some());
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = rbv_telemetry::Json::parse(text.trim()).expect("ledger parses");
        assert_eq!(
            parsed.get("schema").and_then(rbv_telemetry::Json::as_str),
            Some(rbv_openloop::SCHEMA)
        );
        // The written ledger includes the opt-in profile section here
        // (wallclock was requested) — and the table renders.
        assert!(parsed.get("profile").is_some());
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("goodput"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn powered_serve_cmd_reports_energy_and_sweeps_loads() {
        let mut spec = ServeSpec::new(AppId::WebServer, 60, 7);
        spec.overload = 0.8;
        spec.power = true;
        spec.guard = true;
        let report = run(&spec, false, None, false, None, false).expect("powered serve");
        let energy = report.energy.as_ref().expect("powered run reports energy");
        assert_eq!(energy.conservation_violations, 0);
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("energy"), "{s}");
        assert!(s.contains("0 violations"), "{s}");
        // The sweep table renders one row per load, with the joules
        // column present for a powered spec.
        let mut table = Vec::new();
        sweep_loads(&spec, &rbv_par::Pool::serial(), &mut table).expect("sweep");
        let t = String::from_utf8(table).unwrap();
        assert!(t.contains("joules"), "{t}");
        assert_eq!(
            t.lines().filter(|l| l.contains("x ")).count(),
            SWEEP_LOADS.len(),
            "{t}"
        );
    }

    #[test]
    fn traced_serve_cmd_writes_spans_and_reports_attribution() {
        let dir = std::env::temp_dir().join("rbv-servecmd-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = dir.join("serve.json");
        let spans = dir.join("spans.json");
        let mut spec = ServeSpec::new(AppId::WebServer, 60, 5);
        spec.overload = 2.0;
        spec.trace = true;
        spec.trace_spans = true;
        let report =
            run(&spec, false, Some(&ledger), false, Some(&spans), false).expect("traced serve");
        let text = std::fs::read_to_string(&ledger).unwrap();
        let parsed = rbv_telemetry::Json::parse(text.trim()).expect("ledger parses");
        assert!(parsed.get("trace").is_some(), "extended ledger has trace");
        let perfetto = std::fs::read_to_string(&spans).unwrap();
        let doc = rbv_telemetry::Json::parse(&perfetto).expect("spans parse");
        assert!(!doc
            .get("traceEvents")
            .and_then(rbv_telemetry::Json::as_array)
            .unwrap()
            .is_empty());
        let mut buf = Vec::new();
        summarize(&report, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("visible p50/p99"), "{s}");
        assert!(s.contains("p99 stage shares"), "{s}");
        std::fs::remove_file(&ledger).ok();
        std::fs::remove_file(&spans).ok();
    }
}
