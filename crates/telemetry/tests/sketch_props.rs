//! Property tests for the mergeable quantile sketch.
//!
//! The central contract: merging two sketches is *bit-for-bit* equivalent to
//! sketching the concatenated sample stream, at every quantile. A weaker but
//! equally important contract bounds the sketch against sorted-vector ground
//! truth by the layout's relative-error guarantee.

use proptest::prelude::*;
use rbv_telemetry::QuantileSketch;

/// One sub-bucket of the `log2x32` layout spans a factor of 2^(1/32), so
/// the sketch answer is within this factor of the covering order statistic.
const BUCKET_RATIO: f64 = 1.0220;

/// Strategy for a positive sample value spanning many octaves, derived from
/// integers so the vendored stub's minimal strategy surface suffices.
fn sample_value() -> impl Strategy<Value = f64> {
    // mantissa in [1, 10_000), scale in 10^[-3, 6): values from 1e-3 to 1e10.
    (1u64..10_000u64, 0u32..9u32).prop_map(|(m, s)| m as f64 * 10f64.powi(s as i32 - 3))
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(sample_value(), 0..200)
}

/// A campaign-shaped batch of shard streams (a few shards, each with its
/// own sample stream, possibly empty).
fn shard_streams() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(sample_value(), 0..60), 1..8)
}

/// Deterministic in-place Fisher–Yates shuffle driven by a SplitMix64
/// stream (the vendored proptest stub has no shuffle strategy).
fn fisher_yates<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The order statistic at rank `ceil(q * (len - 1))` — the value whose
/// bucket the sketch interpolates inside (upper nearest-rank convention),
/// and therefore the reference its relative-error bound is stated against.
fn covering_order_statistic(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let rank = if q == 0.0 {
        0
    } else if q == 1.0 {
        sorted.len() - 1
    } else {
        pos.ceil() as usize
    };
    Some(sorted[rank])
}

const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) answers every quantile with the exact same bits as a
    /// sketch built over the concatenation of both streams.
    #[test]
    fn merge_equals_sketch_of_concatenated_stream(
        a in samples(),
        b in samples(),
    ) {
        let sa = QuantileSketch::of(a.iter().copied());
        let sb = QuantileSketch::of(b.iter().copied());
        let mut merged = sa.clone();
        merged.merge(&sb);

        let concat = QuantileSketch::of(a.iter().chain(b.iter()).copied());

        prop_assert_eq!(merged.count(), concat.count());
        for &q in &QS {
            let m = merged.quantile(q);
            let c = concat.quantile(q);
            prop_assert_eq!(
                m.map(f64::to_bits),
                c.map(f64::to_bits),
                "quantile {} diverged: merged={:?} concat={:?}",
                q, m, c
            );
        }
    }

    /// Merge is commutative at the quantile level.
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let sa = QuantileSketch::of(a.iter().copied());
        let sb = QuantileSketch::of(b.iter().copied());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        for &q in &QS {
            prop_assert_eq!(
                ab.quantile(q).map(f64::to_bits),
                ba.quantile(q).map(f64::to_bits)
            );
        }
    }

    /// Folding many shard sketches is associative: left fold, right fold,
    /// and balanced pairing answer every quantile with the same bits and
    /// agree exactly on count/min/max. (The floating `sum` is the one
    /// field outside this guarantee; the warehouse folds in canonical
    /// shard order to keep serialized bytes stable.)
    #[test]
    fn shard_merge_is_associative(shards in shard_streams()) {
        let sketches: Vec<QuantileSketch> =
            shards.iter().map(|s| QuantileSketch::of(s.iter().copied())).collect();
        let left = QuantileSketch::merge_all(sketches.iter());
        let mut right = QuantileSketch::new();
        for s in sketches.iter().rev() {
            right = s.merged(&right);
        }
        // Balanced pairwise reduction, the shape a tree merge would use.
        let mut level = sketches.clone();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|c| if c.len() == 2 { c[0].merged(&c[1]) } else { c[0].clone() })
                .collect();
        }
        let tree = level.pop().unwrap_or_default();
        for other in [&right, &tree] {
            prop_assert_eq!(left.count(), other.count());
            prop_assert_eq!(left.min().map(f64::to_bits), other.min().map(f64::to_bits));
            prop_assert_eq!(left.max().map(f64::to_bits), other.max().map(f64::to_bits));
            for &q in &QS {
                prop_assert_eq!(
                    left.quantile(q).map(f64::to_bits),
                    other.quantile(q).map(f64::to_bits)
                );
            }
        }
    }

    /// Folding shard sketches is commutative across *arbitrary permuted
    /// arrival orders* — the property the campaign warehouse relies on
    /// when shards finish in any order: every permutation answers every
    /// quantile bit-for-bit identically, and re-merging the same
    /// permutation twice is byte-identical end to end.
    #[test]
    fn shard_merge_is_commutative_across_permutations(
        shards in shard_streams(),
        perm_seed in 0u64..1_000_000_000u64,
    ) {
        let sketches: Vec<QuantileSketch> =
            shards.iter().map(|s| QuantileSketch::of(s.iter().copied())).collect();
        let canonical = QuantileSketch::merge_all(sketches.iter());

        let mut permuted: Vec<&QuantileSketch> = sketches.iter().collect();
        fisher_yates(&mut permuted, perm_seed);
        let shuffled = QuantileSketch::merge_all(permuted.iter().copied());

        prop_assert_eq!(canonical.count(), shuffled.count());
        prop_assert_eq!(
            canonical.min().map(f64::to_bits),
            shuffled.min().map(f64::to_bits)
        );
        prop_assert_eq!(
            canonical.max().map(f64::to_bits),
            shuffled.max().map(f64::to_bits)
        );
        for &q in &QS {
            prop_assert_eq!(
                canonical.quantile(q).map(f64::to_bits),
                shuffled.quantile(q).map(f64::to_bits),
                "quantile {} depends on shard arrival order", q
            );
        }
        // Same fold order twice => byte-identical serialization (what the
        // warehouse's canonical-order fold leans on for `cmp` equality).
        let again = QuantileSketch::merge_all(permuted.iter().copied());
        prop_assert_eq!(
            shuffled.to_json().to_string_compact(),
            again.to_json().to_string_compact()
        );
    }

    /// Every quantile stays within one bucket width of the sorted-vector
    /// order statistic it covers, and the extremes are exact.
    #[test]
    fn quantiles_track_sorted_ground_truth(v in samples()) {
        let sk = QuantileSketch::of(v.iter().copied());
        for &q in &QS {
            match (sk.quantile(q), covering_order_statistic(&v, q)) {
                (None, None) => {}
                (Some(est), Some(exact)) => {
                    prop_assert!(
                        est >= exact / BUCKET_RATIO && est <= exact * BUCKET_RATIO,
                        "q={} est={} outside one bucket of exact={}",
                        q, est, exact
                    );
                }
                (est, exact) => {
                    prop_assert!(false, "emptiness mismatch: {:?} vs {:?}", est, exact);
                }
            }
        }
        if !v.is_empty() {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(sk.quantile(0.0), Some(lo));
            prop_assert_eq!(sk.quantile(1.0), Some(hi));
        }
    }

    /// JSON serialisation round-trips the sketch losslessly: the decoded
    /// sketch answers every quantile bit-for-bit like the original.
    #[test]
    fn json_round_trip_is_lossless(v in samples()) {
        let sk = QuantileSketch::of(v.iter().copied());
        let encoded = sk.to_json().to_string_compact();
        let parsed = rbv_telemetry::Json::parse(&encoded).expect("valid json");
        let back = QuantileSketch::from_json(&parsed).expect("valid sketch");
        prop_assert_eq!(back.count(), sk.count());
        prop_assert_eq!(back.min().map(f64::to_bits), sk.min().map(f64::to_bits));
        prop_assert_eq!(back.max().map(f64::to_bits), sk.max().map(f64::to_bits));
        for &q in &QS {
            prop_assert_eq!(
                back.quantile(q).map(f64::to_bits),
                sk.quantile(q).map(f64::to_bits)
            );
        }
    }
}
