//! Property tests for the mergeable quantile sketch.
//!
//! The central contract: merging two sketches is *bit-for-bit* equivalent to
//! sketching the concatenated sample stream, at every quantile. A weaker but
//! equally important contract bounds the sketch against sorted-vector ground
//! truth by the layout's relative-error guarantee.

use proptest::prelude::*;
use rbv_telemetry::QuantileSketch;

/// One sub-bucket of the `log2x32` layout spans a factor of 2^(1/32), so
/// the sketch answer is within this factor of the covering order statistic.
const BUCKET_RATIO: f64 = 1.0220;

/// Strategy for a positive sample value spanning many octaves, derived from
/// integers so the vendored stub's minimal strategy surface suffices.
fn sample_value() -> impl Strategy<Value = f64> {
    // mantissa in [1, 10_000), scale in 10^[-3, 6): values from 1e-3 to 1e10.
    (1u64..10_000u64, 0u32..9u32).prop_map(|(m, s)| m as f64 * 10f64.powi(s as i32 - 3))
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(sample_value(), 0..200)
}

/// The order statistic at rank `ceil(q * (len - 1))` — the value whose
/// bucket the sketch interpolates inside (upper nearest-rank convention),
/// and therefore the reference its relative-error bound is stated against.
fn covering_order_statistic(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let rank = if q == 0.0 {
        0
    } else if q == 1.0 {
        sorted.len() - 1
    } else {
        pos.ceil() as usize
    };
    Some(sorted[rank])
}

const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge(a, b) answers every quantile with the exact same bits as a
    /// sketch built over the concatenation of both streams.
    #[test]
    fn merge_equals_sketch_of_concatenated_stream(
        a in samples(),
        b in samples(),
    ) {
        let sa = QuantileSketch::of(a.iter().copied());
        let sb = QuantileSketch::of(b.iter().copied());
        let mut merged = sa.clone();
        merged.merge(&sb);

        let concat = QuantileSketch::of(a.iter().chain(b.iter()).copied());

        prop_assert_eq!(merged.count(), concat.count());
        for &q in &QS {
            let m = merged.quantile(q);
            let c = concat.quantile(q);
            prop_assert_eq!(
                m.map(f64::to_bits),
                c.map(f64::to_bits),
                "quantile {} diverged: merged={:?} concat={:?}",
                q, m, c
            );
        }
    }

    /// Merge is commutative at the quantile level.
    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let sa = QuantileSketch::of(a.iter().copied());
        let sb = QuantileSketch::of(b.iter().copied());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        for &q in &QS {
            prop_assert_eq!(
                ab.quantile(q).map(f64::to_bits),
                ba.quantile(q).map(f64::to_bits)
            );
        }
    }

    /// Every quantile stays within one bucket width of the sorted-vector
    /// order statistic it covers, and the extremes are exact.
    #[test]
    fn quantiles_track_sorted_ground_truth(v in samples()) {
        let sk = QuantileSketch::of(v.iter().copied());
        for &q in &QS {
            match (sk.quantile(q), covering_order_statistic(&v, q)) {
                (None, None) => {}
                (Some(est), Some(exact)) => {
                    prop_assert!(
                        est >= exact / BUCKET_RATIO && est <= exact * BUCKET_RATIO,
                        "q={} est={} outside one bucket of exact={}",
                        q, est, exact
                    );
                }
                (est, exact) => {
                    prop_assert!(false, "emptiness mismatch: {:?} vs {:?}", est, exact);
                }
            }
        }
        if !v.is_empty() {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(sk.quantile(0.0), Some(lo));
            prop_assert_eq!(sk.quantile(1.0), Some(hi));
        }
    }

    /// JSON serialisation round-trips the sketch losslessly: the decoded
    /// sketch answers every quantile bit-for-bit like the original.
    #[test]
    fn json_round_trip_is_lossless(v in samples()) {
        let sk = QuantileSketch::of(v.iter().copied());
        let encoded = sk.to_json().to_string_compact();
        let parsed = rbv_telemetry::Json::parse(&encoded).expect("valid json");
        let back = QuantileSketch::from_json(&parsed).expect("valid sketch");
        prop_assert_eq!(back.count(), sk.count());
        prop_assert_eq!(back.min().map(f64::to_bits), sk.min().map(f64::to_bits));
        prop_assert_eq!(back.max().map(f64::to_bits), sk.max().map(f64::to_bits));
        for &q in &QS {
            prop_assert_eq!(
                back.quantile(q).map(f64::to_bits),
                sk.quantile(q).map(f64::to_bits)
            );
        }
    }
}
