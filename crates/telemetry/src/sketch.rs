//! Deterministic mergeable quantile sketches.
//!
//! A [`QuantileSketch`] summarizes a stream of non-negative samples into a
//! fixed-layout log-bucket digest: every positive finite value lands in
//! the bucket `[2^(k/32) * 2^e, 2^((k+1)/32) * 2^e)` selected purely from
//! its IEEE-754 bit pattern (no `log2` call, so the layout is identical
//! on every platform and build). Quantiles are answered by rank-walking
//! the buckets and interpolating linearly inside the covering bucket,
//! which bounds the relative error by one bucket width (`2^(1/32) - 1`,
//! about 2.2%); the exact `min`/`max` clamp the tails so `q = 0` and
//! `q = 1` are exact.
//!
//! Two sketches over the same layout **merge losslessly**: merging is a
//! bucket-wise add (plus min/max/count/sum combination), so
//! `merge(a, b).quantile(q)` is bit-for-bit equal to the quantile of a
//! sketch fed the concatenated sample stream — the property that makes
//! per-shard digests composable into a run-level ledger, and the one the
//! property tests pin down.
//!
//! The JSON encoding ([`QuantileSketch::to_json`] /
//! [`QuantileSketch::from_json`]) is sparse (only occupied buckets) and
//! round-trips losslessly, so ledgers can be diffed across runs without
//! access to the raw samples.

use std::collections::BTreeMap;

use crate::json::Json;

/// Sub-buckets per power of two (the bucket width is `2^(1/32)`).
pub const SUB_BUCKETS: i32 = 32;

/// Smallest binary exponent with its own buckets; positive values below
/// `2^E_MIN` fall into the shared underflow bucket.
pub const E_MIN: i32 = -512;

/// One past the largest binary exponent with its own buckets; values at
/// `2^E_MAX` or above fall into the shared overflow bucket.
pub const E_MAX: i32 = 512;

/// Schema tag of the bucket layout, embedded in the JSON encoding so a
/// diff never silently compares incompatible digests.
pub const LAYOUT: &str = "log2x32";

/// The 32 sub-bucket thresholds `2^(k/32)` for mantissas in `[1, 2)`,
/// as exactly-rounded `f64` constants. The layout is *defined* by these
/// constants, not by a runtime `exp2`, so bucket selection never depends
/// on a platform's libm.
#[allow(clippy::approx_constant)] // 2^(16/32) IS sqrt(2); the table is uniform on purpose
const MANTISSA_THRESHOLDS: [f64; 32] = [
    1.0,
    1.0218971486541166,
    1.0442737824274138,
    1.0671404006768237,
    1.0905077326652577,
    1.1143867425958924,
    1.1387886347566916,
    1.1637248587775775,
    1.189207115002721,
    1.215247359980469,
    1.241857812073484,
    1.2690509571917332,
    1.2968395546510096,
    1.3252366431597413,
    1.3542555469368927,
    1.383909881963832,
    1.4142135623730951,
    1.4451808069770467,
    1.4768261459394993,
    1.5091644275934228,
    1.5422108254079407,
    1.5759808451078865,
    1.6104903319492543,
    1.645755478153965,
    1.681792830507429,
    1.718619298122478,
    1.7562521603732995,
    1.7947090750031072,
    1.8340080864093424,
    1.8741676341103,
    1.9152065613971474,
    1.9571441241754002,
];

/// A deterministic, mergeable log-bucket quantile digest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantileSketch {
    /// Occupied regular buckets: index `e * 32 + k` → count.
    buckets: BTreeMap<i32, u64>,
    /// Observations that clamped to zero (non-positive or non-finite).
    zero: u64,
    /// Positive observations below `2^E_MIN`.
    low: u64,
    /// Observations at or above `2^E_MAX`.
    high: u64,
    /// Total observations.
    count: u64,
    /// Sum of clamped observations.
    sum: f64,
    /// Smallest clamped observation (meaningless when `count == 0`).
    min: f64,
    /// Largest clamped observation.
    max: f64,
}

/// `2^e` for `e` in `[-1022, 1023]`, built from bits (exact, no libm).
fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Regular-bucket index of a positive finite `v` in `[2^E_MIN, 2^E_MAX)`,
/// derived from the IEEE-754 representation.
fn bucket_index(v: f64) -> i32 {
    debug_assert!(v.is_finite() && v > 0.0);
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    debug_assert!((E_MIN..E_MAX).contains(&e), "exponent {e} out of layout");
    let mantissa = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // Largest k with threshold <= mantissa. partition_point is a binary
    // search over the 32 constants.
    let k = MANTISSA_THRESHOLDS.partition_point(|&t| t <= mantissa) as i32 - 1;
    e * SUB_BUCKETS + k
}

/// Value bounds `[lo, hi)` of regular bucket `idx`.
fn bucket_bounds(idx: i32) -> (f64, f64) {
    let e = idx.div_euclid(SUB_BUCKETS);
    let k = idx.rem_euclid(SUB_BUCKETS);
    let lo = pow2(e) * MANTISSA_THRESHOLDS[k as usize];
    let hi = if k + 1 == SUB_BUCKETS {
        pow2(e + 1)
    } else {
        pow2(e) * MANTISSA_THRESHOLDS[(k + 1) as usize]
    };
    (lo, hi)
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// A sketch of every value in `values` (observation order does not
    /// affect buckets, count, min, or max; it can affect `sum` in the
    /// last ulp, like any floating-point accumulation).
    pub fn of(values: impl IntoIterator<Item = f64>) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for v in values {
            s.observe(v);
        }
        s
    }

    /// Records one observation. Negative and non-finite values clamp to
    /// zero (matching [`crate::LogHistogram::observe`]).
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        if v == 0.0 {
            self.zero += 1;
        } else if v < pow2(E_MIN) {
            self.low += 1;
        } else if v >= pow2(E_MAX - 1) * 2.0 {
            self.high += 1;
        } else {
            *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Folds `other` into `self`: bucket-wise count addition plus
    /// min/max/count/sum combination. Quantiles of the merged sketch are
    /// bit-identical to a sketch of the concatenated streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.low += other.low;
        self.high += other.high;
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// A new sketch holding the merge of `self` and `other`, leaving both
    /// inputs untouched (the non-mutating sibling of
    /// [`QuantileSketch::merge`]).
    pub fn merged(&self, other: &QuantileSketch) -> QuantileSketch {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Folds every sketch in `shards` into one digest, **in iteration
    /// order**.
    ///
    /// Bucket counts, `count`, `min`, and `max` are exactly associative
    /// and commutative, so every fold order yields the same quantiles.
    /// The running `sum` is a floating-point accumulation whose last ulp
    /// can depend on fold order; callers that need *byte-identical*
    /// serialized output across arbitrary shard arrival orders (the
    /// campaign warehouse) must therefore pass shards in a canonical
    /// order — sort by shard key first, then call this.
    pub fn merge_all<'a>(shards: impl IntoIterator<Item = &'a QuantileSketch>) -> QuantileSketch {
        let mut out = QuantileSketch::new();
        for s in shards {
            out.merge(s);
        }
        out
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of (clamped) observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest observation, when any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest observation, when any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, when any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile (`0 <= q <= 1`, clamped) by rank-walking the
    /// buckets and interpolating inside the covering bucket, clamped to
    /// the exact observed `[min, max]`. `None` on an empty sketch.
    ///
    /// Uses the *upper* nearest-rank convention on the continuous rank
    /// `q * (count - 1)` (rounding the rank up), so tail quantiles never
    /// understate: the answer sits within one bucket width of the order
    /// statistic at `ceil(q * (count - 1))` in the sorted sample vector.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The exact extremes are tracked directly; answering them from
        // min/max (rather than bucket interpolation) keeps q = 0 and
        // q = 1 exact.
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // Zero-based rank of the requested order statistic, rounded up.
        let pos = (q * (self.count - 1) as f64).ceil();

        let mut start = 0u64; // observations before the current bucket
        let take = |c: u64, lo: f64, hi: f64, start: &mut u64| -> Option<f64> {
            if c == 0 {
                return None;
            }
            let end = *start + c;
            if pos < end as f64 || end == self.count {
                // Spread the bucket's c observations evenly across
                // [lo, hi): observation j sits at (j + 0.5) / c.
                let inside = (pos - *start as f64).max(0.0);
                let frac = ((inside + 0.5) / c as f64).min(1.0);
                return Some((lo + (hi - lo) * frac).clamp(self.min, self.max));
            }
            *start = end;
            None
        };

        if let Some(v) = take(self.zero, 0.0, 0.0, &mut start) {
            return Some(v);
        }
        if let Some(v) = take(self.low, 0.0, pow2(E_MIN), &mut start) {
            return Some(v);
        }
        for (&idx, &c) in &self.buckets {
            let (lo, hi) = bucket_bounds(idx);
            if let Some(v) = take(c, lo, hi, &mut start) {
                return Some(v);
            }
        }
        // Only the overflow bucket remains: report the clamped maximum
        // rather than interpolating toward infinity.
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Serializes the sketch as a self-describing JSON object with sparse
    /// buckets; [`QuantileSketch::from_json`] inverts it losslessly.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("layout".into(), Json::str(LAYOUT)),
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum)),
            (
                "min".into(),
                Json::Num(if self.count > 0 { self.min } else { 0.0 }),
            ),
            (
                "max".into(),
                Json::Num(if self.count > 0 { self.max } else { 0.0 }),
            ),
            ("zero".into(), Json::Num(self.zero as f64)),
            ("low".into(), Json::Num(self.low as f64)),
            ("high".into(), Json::Num(self.high as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&idx, &c)| {
                            Json::Arr(vec![Json::Num(idx as f64), Json::Num(c as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a sketch serialized by [`QuantileSketch::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed member, or a
    /// layout mismatch.
    pub fn from_json(json: &Json) -> Result<QuantileSketch, String> {
        let layout = json
            .get("layout")
            .and_then(Json::as_str)
            .ok_or("sketch: missing layout")?;
        if layout != LAYOUT {
            return Err(format!("sketch: layout {layout:?} != {LAYOUT:?}"));
        }
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("sketch: missing number {key:?}"))
        };
        let count = num("count")? as u64;
        let mut buckets = BTreeMap::new();
        for item in json
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or("sketch: missing buckets")?
        {
            let pair = item.as_array().ok_or("sketch: bucket is not a pair")?;
            match pair {
                [idx, c] => {
                    let idx = idx.as_f64().ok_or("sketch: bad bucket index")? as i32;
                    let c = c.as_f64().ok_or("sketch: bad bucket count")? as u64;
                    buckets.insert(idx, c);
                }
                _ => return Err("sketch: bucket is not a pair".into()),
            }
        }
        Ok(QuantileSketch {
            buckets,
            zero: num("zero")? as u64,
            low: num("low")? as u64,
            high: num("high")? as u64,
            count,
            sum: num("sum")?,
            min: if count > 0 { num("min")? } else { 0.0 },
            max: if count > 0 { num("max")? } else { 0.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_answers_nothing() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation_is_exact_at_every_quantile() {
        let s = QuantileSketch::of([3.7]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(3.7), "q={q}");
        }
        assert_eq!(s.min(), Some(3.7));
        assert_eq!(s.max(), Some(3.7));
    }

    #[test]
    fn quantiles_track_sorted_ground_truth() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = QuantileSketch::of(values.iter().copied());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let truth = rbv_quantile_truth(&values, q);
            let got = s.quantile(q).unwrap();
            let rel = (got - truth).abs() / truth;
            // One bucket width (2.2%) plus up to one order statistic of
            // rank rounding.
            assert!(rel <= 0.033, "q={q}: sketch {got} vs truth {truth}");
        }
        // Extremes are exact thanks to the min/max clamp.
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(1000.0));
    }

    /// Same convention as `rbv_core::stats::percentile` (re-implemented
    /// here: telemetry must not depend on rbv-core).
    fn rbv_quantile_truth(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_vals: Vec<f64> = (1..200).map(|i| (i * 7 % 97) as f64 + 0.25).collect();
        let b_vals: Vec<f64> = (1..300).map(|i| (i * 13 % 211) as f64 * 3.5).collect();
        let mut merged = QuantileSketch::of(a_vals.iter().copied());
        merged.merge(&QuantileSketch::of(b_vals.iter().copied()));
        let concat = QuantileSketch::of(a_vals.iter().chain(&b_vals).copied());
        assert_eq!(merged.buckets, concat.buckets);
        assert_eq!(merged.count(), concat.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), concat.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merged_and_merge_all_agree_with_merge() {
        let a = QuantileSketch::of((1..50).map(|i| i as f64 * 0.7));
        let b = QuantileSketch::of((1..80).map(|i| (i * i) as f64 * 0.01));
        let c = QuantileSketch::of([1e6, 2e6, 3.5]);
        let mut reference = a.clone();
        reference.merge(&b);
        reference.merge(&c);
        assert_eq!(a.merged(&b).merged(&c), reference);
        assert_eq!(QuantileSketch::merge_all([&a, &b, &c]), reference);
        // Inputs are untouched by the non-mutating forms.
        assert_eq!(a, QuantileSketch::of((1..50).map(|i| i as f64 * 0.7)));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = QuantileSketch::of([1.0, 2.0, 3.0]);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut empty = QuantileSketch::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn degenerate_values_clamp_to_zero_bucket() {
        let s = QuantileSketch::of([-4.0, f64::NAN, f64::INFINITY, 0.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.5), Some(0.0));
        assert_eq!(s.max(), Some(0.0));
    }

    #[test]
    fn extreme_magnitudes_use_under_and_overflow_buckets() {
        let tiny = pow2(E_MIN) / 4.0;
        let huge = f64::MAX;
        let s = QuantileSketch::of([tiny, 1.0, huge]);
        assert_eq!(s.count(), 3);
        // The overflow tail reports the clamped max, never NaN/inf.
        let q = s.quantile(1.0).unwrap();
        assert_eq!(q, huge);
        assert!(s.quantile(0.0).unwrap() <= pow2(E_MIN));
    }

    #[test]
    fn bucket_bounds_are_consistent_with_indexing() {
        for v in [0.001, 0.5, 1.0, 1.5, 3.25, 1000.0, 1e9, 1e-9] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi})");
            assert!(hi / lo < 1.0221, "bucket [{lo}, {hi}) too wide");
        }
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let s = QuantileSketch::of((1..500).map(|i| (i as f64).powf(1.5) * 0.031));
        let text = s.to_json().to_string_compact();
        let back = QuantileSketch::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json().to_string_compact(), text);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let s = QuantileSketch::of([1.0]);
        let mut wrong_layout = s.to_json();
        if let Json::Obj(members) = &mut wrong_layout {
            members[0].1 = Json::str("log2x16");
        }
        assert!(QuantileSketch::from_json(&wrong_layout).is_err());
        assert!(QuantileSketch::from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(QuantileSketch::from_json(
            &Json::parse(
                "{\"layout\":\"log2x32\",\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\
             \"zero\":0,\"low\":0,\"high\":0,\"buckets\":[[1]]}"
            )
            .unwrap()
        )
        .is_err());
    }
}
