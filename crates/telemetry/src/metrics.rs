//! A small metrics registry: named counters, gauges, and log-bucketed
//! histograms, snapshotted per run into JSON or CSV sidecars.
//!
//! Names are dotted paths (`scheduler.context_switches`,
//! `selfprofile.wall_ms.simulate`). The registry preserves first-set
//! order so sidecar files diff cleanly between runs.

use crate::json::Json;

/// A histogram over power-of-two buckets: bucket `i` counts values `v`
/// with `2^(i-1) <= v < 2^i` (bucket 0 counts `v < 1`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Count per bucket, highest occupied bucket last.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (meaningless when `count == 0`).
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl LogHistogram {
    /// Records one observation. Negative and non-finite values clamp to 0.
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let bucket = if v < 1.0 {
            0
        } else {
            (v.log2().floor() as usize) + 1
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observation, when any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(LogHistogram),
}

/// Named metrics for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn entry(&mut self, name: &str) -> Option<&mut Metric> {
        self.entries
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn count(&mut self, name: &str, delta: u64) {
        match self.entry(name) {
            Some(Metric::Counter(v)) => *v += delta,
            Some(_) => panic!("{name} is not a counter"),
            None => self.entries.push((name.into(), Metric::Counter(delta))),
        }
    }

    /// Sets the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.entry(name) {
            Some(Metric::Gauge(v)) => *v = value,
            Some(_) => panic!("{name} is not a gauge"),
            None => self.entries.push((name.into(), Metric::Gauge(value))),
        }
    }

    /// Records one observation into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.entry(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            Some(_) => panic!("{name} is not a histogram"),
            None => {
                let mut h = LogHistogram::default();
                h.observe(value);
                self.entries.push((name.into(), Metric::Histogram(h)));
            }
        }
    }

    /// The counter's value, when present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// The gauge's value, when present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// The histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Freezes the registry into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries.clone(),
        }
    }
}

/// An immutable view of a registry, exportable as JSON or CSV.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    entries: Vec<(String, Metric)>,
}

impl MetricsSnapshot {
    /// `(name, metric)` pairs in registration order.
    pub fn entries(&self) -> &[(String, Metric)] {
        &self.entries
    }

    /// Serializes as a JSON object keyed by metric name.
    ///
    /// Counters and gauges become numbers; histograms become objects with
    /// `count` / `sum` / `min` / `max` / `mean` / `buckets`.
    pub fn to_json(&self) -> Json {
        let members = self
            .entries
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => Json::Num(*v as f64),
                    Metric::Gauge(v) => Json::Num(*v),
                    Metric::Histogram(h) => Json::Obj(vec![
                        ("count".into(), Json::Num(h.count as f64)),
                        ("sum".into(), Json::Num(h.sum)),
                        (
                            "min".into(),
                            Json::Num(if h.count > 0 { h.min } else { 0.0 }),
                        ),
                        (
                            "max".into(),
                            Json::Num(if h.count > 0 { h.max } else { 0.0 }),
                        ),
                        ("mean".into(), Json::Num(h.mean().unwrap_or(0.0))),
                        (
                            "buckets".into(),
                            Json::Arr(h.buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                    ]),
                };
                (name.clone(), value)
            })
            .collect();
        Json::Obj(members)
    }

    /// Serializes as `name,type,value` CSV rows (histograms flatten to
    /// their count / sum / min / max / mean).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,value\n");
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{name},counter,{v}\n")),
                Metric::Gauge(v) => out.push_str(&format!("{name},gauge,{v}\n")),
                Metric::Histogram(h) => {
                    out.push_str(&format!("{name}.count,histogram,{}\n", h.count));
                    out.push_str(&format!("{name}.sum,histogram,{}\n", h.sum));
                    if h.count > 0 {
                        out.push_str(&format!("{name}.min,histogram,{}\n", h.min));
                        out.push_str(&format!("{name}.max,histogram,{}\n", h.max));
                        out.push_str(&format!(
                            "{name}.mean,histogram,{}\n",
                            h.mean().expect("count > 0")
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.count("events", 3);
        reg.count("events", 4);
        reg.gauge("rate", 1.5);
        reg.gauge("rate", 2.5);
        assert_eq!(reg.counter_value("events"), Some(7));
        assert_eq!(reg.gauge_value("rate"), Some(2.5));
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LogHistogram::default();
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 3.0, 4.0, 1000.0] {
            h.observe(v);
        }
        // v < 1 -> bucket 0; [1,2) -> 1; [2,4) -> 2; [4,8) -> 3; 1000 -> 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1000.0);
    }

    #[test]
    fn snapshot_exports_json_and_csv() {
        let mut reg = MetricsRegistry::new();
        reg.count("a.events", 2);
        reg.gauge("b.value", 0.25);
        reg.observe("c.dist", 3.0);
        reg.observe("c.dist", 5.0);
        let snap = reg.snapshot();

        let json = snap.to_json();
        assert_eq!(json.get("a.events").unwrap().as_f64(), Some(2.0));
        assert_eq!(json.get("b.value").unwrap().as_f64(), Some(0.25));
        let dist = json.get("c.dist").unwrap();
        assert_eq!(dist.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(dist.get("mean").unwrap().as_f64(), Some(4.0));

        let csv = snap.to_csv();
        assert!(csv.starts_with("name,type,value\n"));
        assert!(csv.contains("a.events,counter,2\n"));
        assert!(csv.contains("c.dist.mean,histogram,4\n"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("x", 1.0);
        reg.count("x", 1);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = LogHistogram::default();
        assert_eq!(h.mean(), None);
    }
}
