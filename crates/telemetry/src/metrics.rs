//! A small metrics registry: named counters, gauges, and log-bucketed
//! histograms, snapshotted per run into JSON or CSV sidecars.
//!
//! Names are dotted paths (`scheduler.context_switches`,
//! `selfprofile.wall_ms.simulate`). The registry preserves first-set
//! order so sidecar files diff cleanly between runs.

use crate::json::Json;

/// A histogram over power-of-two buckets: bucket `i` counts values `v`
/// with `2^(i-1) <= v < 2^i` (bucket 0 counts `v < 1`). Bucket
/// [`LogHistogram::OVERFLOW_BUCKET`] is the shared overflow bucket for
/// everything at or beyond `2^63`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogHistogram {
    /// Count per bucket, highest occupied bucket last.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (meaningless when `count == 0`).
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl LogHistogram {
    /// Index of the overflow bucket; values `>= 2^63` land here so
    /// bucket upper bounds stay representable (`2^64` is finite, so
    /// quantile interpolation never touches infinity).
    pub const OVERFLOW_BUCKET: usize = 64;

    /// Records one observation. Negative and non-finite values clamp to 0.
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let bucket = if v < 1.0 {
            0
        } else {
            ((v.log2().floor() as usize) + 1).min(Self::OVERFLOW_BUCKET)
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observation, when any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`, clamped) by rank-walking the
    /// buckets and interpolating inside the covering bucket, clamped to
    /// the exact observed `[min, max]`.
    ///
    /// Edge cases, all well-defined:
    /// * empty histogram → `None` (never NaN);
    /// * a single observation (`min == max`) → exactly that value at
    ///   every `q`, thanks to the min/max clamp;
    /// * ranks landing in the overflow bucket → the clamped `max`, never
    ///   an interpolation toward a non-representable bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.count - 1) as f64;
        let mut start = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let end = start + c;
            if pos < end as f64 || end == self.count {
                if i == Self::OVERFLOW_BUCKET {
                    return Some(self.max);
                }
                let lo = if i == 0 {
                    0.0
                } else {
                    (2.0f64).powi(i as i32 - 1)
                };
                let hi = (2.0f64).powi(i as i32);
                let inside = (pos - start as f64).max(0.0);
                let frac = ((inside + 0.5) / c as f64).min(1.0);
                return Some((lo + (hi - lo) * frac).clamp(self.min, self.max));
            }
            start = end;
        }
        Some(self.max)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Distribution of observations.
    Histogram(LogHistogram),
}

/// Named metrics for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn entry(&mut self, name: &str) -> Option<&mut Metric> {
        self.entries
            .iter_mut()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn count(&mut self, name: &str, delta: u64) {
        match self.entry(name) {
            Some(Metric::Counter(v)) => *v += delta,
            Some(_) => panic!("{name} is not a counter"),
            None => self.entries.push((name.into(), Metric::Counter(delta))),
        }
    }

    /// Sets the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.entry(name) {
            Some(Metric::Gauge(v)) => *v = value,
            Some(_) => panic!("{name} is not a gauge"),
            None => self.entries.push((name.into(), Metric::Gauge(value))),
        }
    }

    /// Records one observation into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is registered as a different metric type.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.entry(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            Some(_) => panic!("{name} is not a histogram"),
            None => {
                let mut h = LogHistogram::default();
                h.observe(value);
                self.entries.push((name.into(), Metric::Histogram(h)));
            }
        }
    }

    /// The counter's value, when present.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// The gauge's value, when present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// The histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, m)| match m {
                Metric::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Freezes the registry into an exportable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries.clone(),
        }
    }
}

/// An immutable view of a registry, exportable as JSON or CSV.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    entries: Vec<(String, Metric)>,
}

impl MetricsSnapshot {
    /// `(name, metric)` pairs in registration order.
    pub fn entries(&self) -> &[(String, Metric)] {
        &self.entries
    }

    /// Serializes as a JSON object keyed by metric name.
    ///
    /// Counters and gauges become numbers; histograms become objects with
    /// `count` / `sum` / `min` / `max` / `mean` / `buckets`.
    pub fn to_json(&self) -> Json {
        let members = self
            .entries
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(v) => Json::Num(*v as f64),
                    Metric::Gauge(v) => Json::Num(*v),
                    Metric::Histogram(h) => Json::Obj(vec![
                        ("count".into(), Json::Num(h.count as f64)),
                        ("sum".into(), Json::Num(h.sum)),
                        (
                            "min".into(),
                            Json::Num(if h.count > 0 { h.min } else { 0.0 }),
                        ),
                        (
                            "max".into(),
                            Json::Num(if h.count > 0 { h.max } else { 0.0 }),
                        ),
                        ("mean".into(), Json::Num(h.mean().unwrap_or(0.0))),
                        (
                            "buckets".into(),
                            Json::Arr(h.buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                    ]),
                };
                (name.clone(), value)
            })
            .collect();
        Json::Obj(members)
    }

    /// Serializes as `name,type,value` CSV rows (histograms flatten to
    /// their count / sum / min / max / mean).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,type,value\n");
        for (name, metric) in &self.entries {
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{name},counter,{v}\n")),
                Metric::Gauge(v) => out.push_str(&format!("{name},gauge,{v}\n")),
                Metric::Histogram(h) => {
                    out.push_str(&format!("{name}.count,histogram,{}\n", h.count));
                    out.push_str(&format!("{name}.sum,histogram,{}\n", h.sum));
                    if h.count > 0 {
                        out.push_str(&format!("{name}.min,histogram,{}\n", h.min));
                        out.push_str(&format!("{name}.max,histogram,{}\n", h.max));
                        out.push_str(&format!(
                            "{name}.mean,histogram,{}\n",
                            h.mean().unwrap_or_else(|| unreachable!("count > 0"))
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.count("events", 3);
        reg.count("events", 4);
        reg.gauge("rate", 1.5);
        reg.gauge("rate", 2.5);
        assert_eq!(reg.counter_value("events"), Some(7));
        assert_eq!(reg.gauge_value("rate"), Some(2.5));
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = LogHistogram::default();
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 3.0, 4.0, 1000.0] {
            h.observe(v);
        }
        // v < 1 -> bucket 0; [1,2) -> 1; [2,4) -> 2; [4,8) -> 3; 1000 -> 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1000.0);
    }

    #[test]
    fn snapshot_exports_json_and_csv() {
        let mut reg = MetricsRegistry::new();
        reg.count("a.events", 2);
        reg.gauge("b.value", 0.25);
        reg.observe("c.dist", 3.0);
        reg.observe("c.dist", 5.0);
        let snap = reg.snapshot();

        let json = snap.to_json();
        assert_eq!(json.get("a.events").unwrap().as_f64(), Some(2.0));
        assert_eq!(json.get("b.value").unwrap().as_f64(), Some(0.25));
        let dist = json.get("c.dist").unwrap();
        assert_eq!(dist.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(dist.get("mean").unwrap().as_f64(), Some(4.0));

        let csv = snap.to_csv();
        assert!(csv.starts_with("name,type,value\n"));
        assert!(csv.contains("a.events,counter,2\n"));
        assert!(csv.contains("c.dist.mean,histogram,4\n"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("x", 1.0);
        reg.count("x", 1);
    }

    #[test]
    fn empty_histogram_has_no_mean() {
        let h = LogHistogram::default();
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn quantile_on_empty_histogram_is_none() {
        let h = LogHistogram::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
    }

    #[test]
    fn quantile_of_single_observation_is_exact() {
        let mut h = LogHistogram::default();
        h.observe(37.5);
        assert_eq!(h.min, h.max);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(37.5), "q={q}");
        }
    }

    #[test]
    fn quantile_in_overflow_bucket_returns_clamped_max() {
        let mut h = LogHistogram::default();
        h.observe(1.0);
        h.observe(1e300); // far beyond 2^63: lands in the overflow bucket
        assert_eq!(h.buckets.len(), LogHistogram::OVERFLOW_BUCKET + 1);
        assert_eq!(h.buckets[LogHistogram::OVERFLOW_BUCKET], 1);
        let q = h.quantile(1.0).unwrap();
        assert_eq!(q, 1e300, "overflow tail must clamp to max, got {q}");
        assert!(q.is_finite(), "never NaN/inf");
        // All-overflow histogram: every quantile is the clamped max.
        let mut all = LogHistogram::default();
        all.observe(2e300);
        all.observe(3e300);
        assert_eq!(all.quantile(0.5), Some(3e300));
    }

    #[test]
    fn quantile_tracks_bucket_resolution() {
        let mut h = LogHistogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log2 buckets are coarse: within a factor of 2 of the truth.
        assert!((250.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!((495.0..=1000.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99, "monotone");
    }
}
