//! Telemetry for the simulated RBV kernel: structured trace events, a
//! metrics registry, simulator self-profiling, and exporters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod sink;
pub mod sketch;

pub use event::{SampleOrigin, SwitchReason, TraceEvent};
pub use json::Json;
pub use metrics::{LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use perfetto::PerfettoTrace;
pub use profile::SelfProfiler;
pub use sink::{CountingSink, MemorySink, NullSink, TraceSink};
pub use sketch::QuantileSketch;
