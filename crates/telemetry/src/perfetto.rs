//! Chrome trace-event / Perfetto JSON export.
//!
//! Produces the JSON Array Format that both `chrome://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) load directly:
//!
//! * one *thread track per simulated core* (`pid` 1, `tid` = core + 1)
//!   carrying balanced `B`/`E` duration slices for every scheduled
//!   execution interval, plus instant events for samples, syscalls, and
//!   contention-easing decisions on the core that took them;
//! * one *async track per completed request* (`id` = request id) with the
//!   request's end-to-end span (`cat` `"request"`) and its per-slice
//!   execution sub-spans nested inside (`cat` `"request_exec"`);
//! * a counter track (`C`) for the number of cores simultaneously in
//!   high-L2-usage periods (the Figure 12 measure).
//!
//! Timestamps are simulated microseconds (fractional), converted from
//! [`Cycles`](rbv_sim::Cycles) at the machine's clock rate. Slices still open when the
//! trace ends are closed at the final timestamp, so `B`/`E` events are
//! balanced per track by construction; requests that never completed get
//! no request span (the acceptance check counts request spans against
//! completed requests).

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;

use crate::event::TraceEvent;
use crate::json::Json;

/// The simulated machine's process id in the trace.
const PID: f64 = 1.0;

/// A fully assembled trace, ready to serialize.
#[derive(Debug, Clone)]
pub struct PerfettoTrace {
    events: Vec<Json>,
}

/// `tid` of a core's thread track (tid 0 is reserved by some viewers).
fn tid_of(core: u32) -> f64 {
    f64::from(core) + 1.0
}

fn base(name: &str, cat: &str, ph: &str, ts: f64, tid: f64) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::str(name)),
        ("cat".into(), Json::str(cat)),
        ("ph".into(), Json::str(ph)),
        ("ts".into(), Json::Num(ts)),
        ("pid".into(), Json::Num(PID)),
        ("tid".into(), Json::Num(tid)),
    ]
}

fn with_args(mut members: Vec<(String, Json)>, args: Vec<(String, Json)>) -> Json {
    members.push(("args".into(), Json::Obj(args)));
    Json::Obj(members)
}

/// Async events additionally carry the request id.
fn with_id(mut members: Vec<(String, Json)>, rid: u64) -> Vec<(String, Json)> {
    members.push(("id".into(), Json::str(format!("{rid:#x}"))));
    members
}

impl PerfettoTrace {
    /// Wraps pre-built trace-event objects (e.g. the span documents
    /// assembled by rbv-trace) so they share this exporter's document
    /// envelope, serializer, and writer.
    pub fn from_raw_events(events: Vec<Json>) -> PerfettoTrace {
        PerfettoTrace { events }
    }

    /// Assembles a trace from engine events (in emission order) for a
    /// machine with `cores` cores.
    pub fn from_events(events: &[TraceEvent], cores: usize) -> PerfettoTrace {
        let mut out = Vec::with_capacity(events.len() + cores + 2);

        // Track-naming metadata.
        out.push(with_args(
            base("process_name", "__metadata", "M", 0.0, 0.0),
            vec![("name".into(), Json::str("rbv simulated machine"))],
        ));
        for core in 0..cores as u32 {
            out.push(with_args(
                base("thread_name", "__metadata", "M", 0.0, tid_of(core)),
                vec![("name".into(), Json::str(format!("core {core}")))],
            ));
        }

        // Only completed requests get async request spans.
        let finished: HashSet<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RequestEnd { rid, .. } => Some(*rid),
                _ => None,
            })
            .collect();

        let mut open_slices: HashMap<u32, (u64, String)> = HashMap::new();
        let mut end_ts = 0.0f64;

        for event in events {
            let ts = event.ts().as_micros_f64();
            end_ts = end_ts.max(ts);
            match event {
                TraceEvent::RequestBegin {
                    rid, app, class, ..
                } => {
                    if finished.contains(rid) {
                        out.push(with_args(
                            with_id(
                                base(
                                    &format!("{app} {class} #{rid}"),
                                    "request",
                                    "b",
                                    ts,
                                    tid_of(0),
                                ),
                                *rid,
                            ),
                            vec![
                                ("app".into(), Json::str(app.clone())),
                                ("class".into(), Json::str(class.clone())),
                            ],
                        ));
                    }
                }
                TraceEvent::RequestEnd { rid, .. } => {
                    out.push(Json::Obj(with_id(
                        base(&format!("request #{rid}"), "request", "e", ts, tid_of(0)),
                        *rid,
                    )));
                }
                TraceEvent::SliceBegin {
                    core,
                    rid,
                    stage,
                    component,
                    ..
                } => {
                    let name = format!("req {rid} {component} s{stage}");
                    out.push(with_args(
                        base(&name, "exec", "B", ts, tid_of(*core)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("stage".into(), Json::Num(f64::from(*stage))),
                        ],
                    ));
                    if finished.contains(rid) {
                        out.push(Json::Obj(with_id(
                            base(&name, "request_exec", "b", ts, tid_of(*core)),
                            *rid,
                        )));
                    }
                    open_slices.insert(*core, (*rid, name));
                }
                TraceEvent::SliceEnd { core, rid, .. } => {
                    if let Some((open_rid, name)) = open_slices.remove(core) {
                        debug_assert_eq!(open_rid, *rid, "slice nesting per core");
                        out.push(Json::Obj(base(&name, "exec", "E", ts, tid_of(*core))));
                        if finished.contains(rid) {
                            out.push(Json::Obj(with_id(
                                base(&name, "request_exec", "e", ts, tid_of(*core)),
                                *rid,
                            )));
                        }
                    }
                }
                TraceEvent::ContextSwitch {
                    core, from, reason, ..
                } => {
                    out.push(with_args(
                        base("context_switch", "sched", "i", ts, tid_of(*core)),
                        vec![
                            ("from".into(), Json::Num(*from as f64)),
                            ("reason".into(), Json::str(reason.label())),
                        ],
                    ));
                }
                TraceEvent::SamplingInstant {
                    core,
                    rid,
                    origin,
                    syscall,
                    cycles,
                    instructions,
                    l2_refs,
                    l2_misses,
                    ..
                } => {
                    let mut args = vec![
                        ("rid".into(), Json::Num(*rid as f64)),
                        ("origin".into(), Json::str(origin.label())),
                        ("cycles".into(), Json::Num(*cycles)),
                        ("instructions".into(), Json::Num(*instructions)),
                        ("l2_refs".into(), Json::Num(*l2_refs)),
                        ("l2_misses".into(), Json::Num(*l2_misses)),
                    ];
                    if let Some(name) = syscall {
                        args.push(("syscall".into(), Json::str(name.clone())));
                    }
                    out.push(with_args(
                        base("sample", "sampling", "i", ts, tid_of(*core)),
                        args,
                    ));
                }
                TraceEvent::SyscallEntry {
                    core, rid, name, ..
                } => {
                    out.push(with_args(
                        base(
                            &format!("syscall {name}"),
                            "syscall",
                            "i",
                            ts,
                            tid_of(*core),
                        ),
                        vec![("rid".into(), Json::Num(*rid as f64))],
                    ));
                }
                TraceEvent::ContentionEasing {
                    core,
                    displaced,
                    chosen,
                    ..
                } => {
                    out.push(with_args(
                        base("contention_easing", "sched", "i", ts, tid_of(*core)),
                        vec![
                            ("displaced".into(), Json::Num(*displaced as f64)),
                            ("chosen".into(), Json::Num(*chosen as f64)),
                        ],
                    ));
                }
                TraceEvent::Migration {
                    rid,
                    from_core,
                    to_core,
                    ..
                } => {
                    out.push(with_args(
                        base("migration", "sched", "i", ts, tid_of(*to_core)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("from_core".into(), Json::Num(f64::from(*from_core))),
                            ("to_core".into(), Json::Num(f64::from(*to_core))),
                        ],
                    ));
                }
                TraceEvent::L2Pressure { high_cores, .. } => {
                    out.push(with_args(
                        base("high_usage_cores", "l2", "C", ts, 0.0),
                        vec![("cores".into(), Json::Num(f64::from(*high_cores)))],
                    ));
                }
                TraceEvent::SampleLost { core, .. } => {
                    out.push(with_args(
                        base("sample_lost", "fault", "i", ts, tid_of(*core)),
                        vec![],
                    ));
                }
                TraceEvent::LowConfidenceSample {
                    core, rid, reason, ..
                } => {
                    out.push(with_args(
                        base("low_confidence_sample", "fault", "i", ts, tid_of(*core)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("reason".into(), Json::str(reason.clone())),
                        ],
                    ));
                }
                TraceEvent::SamplingStarved { core, until, .. } => {
                    out.push(with_args(
                        base("sampling_starved", "fault", "i", ts, tid_of(*core)),
                        vec![("until_us".into(), Json::Num(until.as_micros_f64()))],
                    ));
                }
                TraceEvent::QueueEnter {
                    rid,
                    queue,
                    attempt,
                    ..
                } => {
                    out.push(with_args(
                        base("queue_enter", "overload", "i", ts, tid_of(*queue)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("queue".into(), Json::Num(f64::from(*queue))),
                            ("attempt".into(), Json::Num(f64::from(*attempt))),
                        ],
                    ));
                }
                TraceEvent::AdmissionRejected {
                    rid, core, attempt, ..
                } => {
                    out.push(with_args(
                        base("admission_rejected", "overload", "i", ts, tid_of(*core)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("attempt".into(), Json::Num(f64::from(*attempt))),
                        ],
                    ));
                }
                TraceEvent::RetryScheduled {
                    rid,
                    attempt,
                    backoff,
                    client,
                    ..
                } => {
                    out.push(with_args(
                        base("retry_scheduled", "overload", "i", ts, tid_of(0)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("attempt".into(), Json::Num(f64::from(*attempt))),
                            ("backoff_us".into(), Json::Num(backoff.as_micros_f64())),
                            ("client".into(), Json::Bool(*client)),
                        ],
                    ));
                }
                TraceEvent::RequestFailed { rid, reason, .. } => {
                    out.push(with_args(
                        base("request_failed", "overload", "i", ts, tid_of(0)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("reason".into(), Json::str(reason.clone())),
                        ],
                    ));
                }
                TraceEvent::EasingGate { engaged, error, .. } => {
                    out.push(with_args(
                        base("easing_gate", "sched", "i", ts, tid_of(0)),
                        vec![
                            ("engaged".into(), Json::Bool(*engaged)),
                            ("error".into(), Json::Num(*error)),
                        ],
                    ));
                }
                TraceEvent::GovernorAdjust {
                    action,
                    scale,
                    overhead_frac,
                    budget_frac,
                    ..
                } => {
                    out.push(with_args(
                        base("governor_adjust", "guard", "i", ts, tid_of(0)),
                        vec![
                            ("action".into(), Json::str(action.clone())),
                            ("scale".into(), Json::Num(*scale)),
                            ("overhead_frac".into(), Json::Num(*overhead_frac)),
                            ("budget_frac".into(), Json::Num(*budget_frac)),
                        ],
                    ));
                }
                TraceEvent::HealthTransition {
                    from, to, score, ..
                } => {
                    out.push(with_args(
                        base("health_transition", "guard", "i", ts, tid_of(0)),
                        vec![
                            ("from".into(), Json::str(from.clone())),
                            ("to".into(), Json::str(to.clone())),
                            ("score".into(), Json::Num(*score)),
                        ],
                    ));
                }
                TraceEvent::InvariantViolation {
                    invariant, detail, ..
                } => {
                    out.push(with_args(
                        base("invariant_violation", "guard", "i", ts, tid_of(0)),
                        vec![
                            ("invariant".into(), Json::str(invariant.clone())),
                            ("detail".into(), Json::str(detail.clone())),
                        ],
                    ));
                }
                TraceEvent::CampaignShard {
                    shard,
                    epoch,
                    requests,
                    drifted,
                    ..
                } => {
                    out.push(with_args(
                        base("campaign_shard", "campaign", "i", ts, tid_of(0)),
                        vec![
                            ("shard".into(), Json::str(shard.clone())),
                            ("epoch".into(), Json::Num(f64::from(*epoch))),
                            ("requests".into(), Json::Num(*requests as f64)),
                            ("drifted".into(), Json::Bool(*drifted)),
                        ],
                    ));
                }
                TraceEvent::CampaignMerge {
                    app, epoch, shards, ..
                } => {
                    out.push(with_args(
                        base("campaign_merge", "campaign", "i", ts, tid_of(0)),
                        vec![
                            ("app".into(), Json::str(app.clone())),
                            ("epoch".into(), Json::Num(f64::from(*epoch))),
                            ("shards".into(), Json::Num(*shards as f64)),
                        ],
                    ));
                }
                TraceEvent::DvfsTransition {
                    core,
                    from_pstate,
                    to_pstate,
                    ratio_milli,
                    ..
                } => {
                    out.push(with_args(
                        base("dvfs_transition", "power", "i", ts, tid_of(*core)),
                        vec![
                            ("from_pstate".into(), Json::Num(f64::from(*from_pstate))),
                            ("to_pstate".into(), Json::Num(f64::from(*to_pstate))),
                            ("ratio_milli".into(), Json::Num(f64::from(*ratio_milli))),
                        ],
                    ));
                }
                TraceEvent::ThermalThrottle {
                    core,
                    engaged,
                    temp_milli_c,
                    ..
                } => {
                    out.push(with_args(
                        base("thermal_throttle", "power", "i", ts, tid_of(*core)),
                        vec![
                            ("engaged".into(), Json::Bool(*engaged)),
                            ("temp_milli_c".into(), Json::Num(*temp_milli_c as f64)),
                        ],
                    ));
                }
                TraceEvent::TierLeg {
                    rid,
                    machine,
                    tier,
                    leg,
                    wait_cycles,
                    service_cycles,
                    cpi,
                    ..
                } => {
                    out.push(with_args(
                        base("tier_leg", "cluster", "i", ts, tid_of(0)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("machine".into(), Json::Num(f64::from(*machine))),
                            ("tier".into(), Json::str(tier.clone())),
                            ("leg".into(), Json::Num(f64::from(*leg))),
                            ("wait_cycles".into(), Json::Num(*wait_cycles as f64)),
                            ("service_cycles".into(), Json::Num(*service_cycles as f64)),
                            ("cpi".into(), Json::Num(*cpi)),
                        ],
                    ));
                }
                TraceEvent::TierHop {
                    rid,
                    from_machine,
                    to_machine,
                    hop,
                    bytes,
                    ..
                } => {
                    out.push(with_args(
                        base("tier_hop", "cluster", "i", ts, tid_of(0)),
                        vec![
                            ("rid".into(), Json::Num(*rid as f64)),
                            ("from_machine".into(), Json::Num(f64::from(*from_machine))),
                            ("to_machine".into(), Json::Num(f64::from(*to_machine))),
                            ("hop".into(), Json::Num(f64::from(*hop))),
                            ("bytes".into(), Json::Num(*bytes as f64)),
                        ],
                    ));
                }
            }
        }

        // Close slices still open when the trace ends so every track's
        // B/E events balance.
        let mut dangling: Vec<(u32, (u64, String))> = open_slices.into_iter().collect();
        dangling.sort_by_key(|(core, _)| *core);
        for (core, (rid, name)) in dangling {
            out.push(Json::Obj(base(&name, "exec", "E", end_ts, tid_of(core))));
            debug_assert!(
                !finished.contains(&rid),
                "completed requests close their own slices"
            );
        }

        PerfettoTrace { events: out }
    }

    /// Number of trace-event objects (including metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(self.events.clone())),
            ("displayTimeUnit".into(), Json::str("ms")),
        ])
    }

    /// Serializes the document compactly.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json_string().as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SampleOrigin, SwitchReason};
    use rbv_sim::Cycles;

    /// A tiny synthetic run: request 1 completes, request 2 does not.
    fn synthetic_events() -> Vec<TraceEvent> {
        let t = |us: u64| Cycles::from_micros(us);
        vec![
            TraceEvent::RequestBegin {
                ts: t(0),
                rid: 1,
                app: "TPC-C".into(),
                class: "NewOrder".into(),
            },
            TraceEvent::SliceBegin {
                ts: t(0),
                core: 0,
                rid: 1,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::RequestBegin {
                ts: t(1),
                rid: 2,
                app: "TPC-C".into(),
                class: "Payment".into(),
            },
            TraceEvent::SliceBegin {
                ts: t(1),
                core: 1,
                rid: 2,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::SyscallEntry {
                ts: t(2),
                core: 0,
                rid: 1,
                name: "read".into(),
            },
            TraceEvent::SamplingInstant {
                ts: t(2),
                core: 0,
                rid: 1,
                origin: SampleOrigin::InKernel,
                syscall: Some("read".into()),
                cycles: 6000.0,
                instructions: 3000.0,
                l2_refs: 10.0,
                l2_misses: 2.0,
            },
            TraceEvent::ContextSwitch {
                ts: t(3),
                core: 0,
                from: 1,
                reason: SwitchReason::StageEnd,
            },
            TraceEvent::SliceEnd {
                ts: t(3),
                core: 0,
                rid: 1,
            },
            TraceEvent::RequestEnd { ts: t(3), rid: 1 },
            TraceEvent::L2Pressure {
                ts: t(3),
                high_cores: 1,
            },
            // Request 2's slice stays open: the run stopped here.
        ]
    }

    fn trace_events(doc: &Json) -> &[Json] {
        doc.get("traceEvents").unwrap().as_array().unwrap()
    }

    #[test]
    fn document_round_trips_through_the_parser() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let text = trace.to_json_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        assert!(!trace_events(&parsed).is_empty());
    }

    #[test]
    fn duration_events_balance_per_track() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let doc = trace.to_json();
        let mut depth: HashMap<i64, i64> = HashMap::new();
        for e in trace_events(&doc) {
            let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
            match e.get("ph").unwrap().as_str().unwrap() {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    *d -= 1;
                    assert!(*d >= 0, "E without B on tid {tid}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced: {depth:?}");
    }

    #[test]
    fn request_spans_cover_only_completed_requests() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let doc = trace.to_json();
        let spans: Vec<&Json> = trace_events(&doc)
            .iter()
            .filter(|e| {
                e.get("cat").unwrap().as_str() == Some("request")
                    && e.get("ph").unwrap().as_str() == Some("b")
            })
            .collect();
        assert_eq!(spans.len(), 1, "only request 1 completed");
        assert_eq!(spans[0].get("id").unwrap().as_str(), Some("0x1"));
        // Its nested exec sub-span is present and balanced.
        let nested: Vec<&str> = trace_events(&doc)
            .iter()
            .filter(|e| e.get("cat").unwrap().as_str() == Some("request_exec"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(nested, vec!["b", "e"]);
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let doc = trace.to_json();
        let mut last: HashMap<i64, f64> = HashMap::new();
        for e in trace_events(&doc) {
            let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let prev = last.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
            assert!(ts >= prev, "tid {tid} went backwards: {prev} -> {ts}");
        }
    }

    #[test]
    fn dangling_slices_close_at_the_final_timestamp() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let doc = trace.to_json();
        let closes: Vec<&Json> = trace_events(&doc)
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("E")
                    && e.get("tid").unwrap().as_f64() == Some(2.0)
            })
            .collect();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].get("ts").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn counter_and_instant_events_survive_export() {
        let trace = PerfettoTrace::from_events(&synthetic_events(), 2);
        let doc = trace.to_json();
        let phases: Vec<&str> = trace_events(&doc)
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"C"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"M"));
        let sample = trace_events(&doc)
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("sample"))
            .unwrap();
        let args = sample.get("args").unwrap();
        assert_eq!(args.get("cycles").unwrap().as_f64(), Some(6000.0));
        assert_eq!(args.get("syscall").unwrap().as_str(), Some("read"));
    }

    /// The overload rungs added below `stock` reach the exporter through
    /// the same string-label path as the original three rungs.
    #[test]
    fn health_transitions_carry_overload_rung_labels() {
        let events = vec![
            TraceEvent::HealthTransition {
                ts: Cycles::from_micros(1),
                from: "stock".into(),
                to: "shed".into(),
                score: 0.3,
            },
            TraceEvent::HealthTransition {
                ts: Cycles::from_micros(2),
                from: "shed".into(),
                to: "brownout".into(),
                score: 0.1,
            },
        ];
        let doc = PerfettoTrace::from_events(&events, 1).to_json();
        let transitions: Vec<&Json> = trace_events(&doc)
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("health_transition"))
            .collect();
        assert_eq!(transitions.len(), 2);
        let pair = |e: &Json| {
            let args = e.get("args").unwrap();
            (
                args.get("from").unwrap().as_str().unwrap().to_string(),
                args.get("to").unwrap().as_str().unwrap().to_string(),
            )
        };
        assert_eq!(pair(transitions[0]), ("stock".into(), "shed".into()));
        assert_eq!(pair(transitions[1]), ("shed".into(), "brownout".into()));
        assert_eq!(
            transitions[0].get("cat").unwrap().as_str(),
            Some("guard"),
            "ladder moves stay on the guard track"
        );
    }

    #[test]
    fn power_events_export_on_their_core_track() {
        let events = vec![
            TraceEvent::DvfsTransition {
                ts: Cycles::from_micros(1),
                core: 1,
                from_pstate: 0,
                to_pstate: 2,
                ratio_milli: 800,
            },
            TraceEvent::ThermalThrottle {
                ts: Cycles::from_micros(2),
                core: 1,
                engaged: true,
                temp_milli_c: 95_200,
            },
        ];
        let doc = PerfettoTrace::from_events(&events, 2).to_json();
        let powered: Vec<&Json> = trace_events(&doc)
            .iter()
            .filter(|e| e.get("cat").unwrap().as_str() == Some("power"))
            .collect();
        assert_eq!(powered.len(), 2);
        assert_eq!(
            powered[0].get("name").unwrap().as_str(),
            Some("dvfs_transition")
        );
        let args = powered[0].get("args").unwrap();
        assert_eq!(args.get("to_pstate").unwrap().as_f64(), Some(2.0));
        assert_eq!(args.get("ratio_milli").unwrap().as_f64(), Some(800.0));
        let throttle = powered[1];
        assert_eq!(
            throttle.get("name").unwrap().as_str(),
            Some("thermal_throttle")
        );
        assert_eq!(
            throttle.get("args").unwrap().get("engaged"),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            powered[0].get("tid"),
            powered[1].get("tid"),
            "both land on core 1's track"
        );
    }
}
