//! Trace sinks: where the engine's [`TraceEvent`]s go.
//!
//! The engine holds an `Option<&mut dyn TraceSink>`; when it is `None`
//! the per-event cost is a branch on a niche-optimized option, so runs
//! without tracing pay nothing beyond that. Sinks must treat events as
//! read-only observations — a sink that fails (e.g. a full disk buffer)
//! must not panic into the engine.

use crate::event::TraceEvent;

/// Receives the engine's structured events in simulation order.
pub trait TraceSink {
    /// Records one event. Timestamps arrive non-decreasing.
    fn record(&mut self, event: TraceEvent);

    /// Flushes any buffering. Called once when the run finishes.
    fn finish(&mut self) {}
}

/// Discards every event (useful to measure tracing's dispatch overhead).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in memory, preserving order.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The recorded events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the sink, returning the event buffer.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Counts events by kind without storing them (cheap smoke statistics).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// `(kind label, count)` pairs in first-seen order.
    pub counts: Vec<(&'static str, u64)>,
}

impl CountingSink {
    /// The count recorded for `kind`, zero when unseen.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, event: TraceEvent) {
        let kind = event.kind();
        match self.counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((kind, 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_sim::Cycles;

    fn sample_event(rid: u64) -> TraceEvent {
        TraceEvent::RequestEnd {
            ts: Cycles::new(rid),
            rid,
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        for rid in 0..10 {
            sink.record(sample_event(rid));
        }
        assert_eq!(sink.len(), 10);
        let events = sink.into_events();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ts(), Cycles::new(i as u64));
        }
    }

    #[test]
    fn counting_sink_tallies_kinds() {
        let mut sink = CountingSink::default();
        for rid in 0..4 {
            sink.record(sample_event(rid));
        }
        sink.record(TraceEvent::L2Pressure {
            ts: Cycles::ZERO,
            high_cores: 1,
        });
        assert_eq!(sink.count("request_end"), 4);
        assert_eq!(sink.count("l2_pressure"), 1);
        assert_eq!(sink.count("migration"), 0);
        assert_eq!(sink.total(), 5);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        for rid in 0..100 {
            sink.record(sample_event(rid));
        }
        sink.finish();
    }
}
