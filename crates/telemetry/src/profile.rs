//! Simulator self-profiling: wall-clock time per pipeline stage and
//! simulation throughput, reported into the metrics registry.
//!
//! This measures the *simulator*, not the simulated machine — the
//! "how fast does the experiment run" side of observability, next to the
//! simulated kernel's own trace.

use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Accumulates wall-clock time per named pipeline stage.
#[derive(Debug, Default)]
pub struct SelfProfiler {
    stages: Vec<(String, f64)>,
}

/// Guard returned by [`SelfProfiler::stage`]; dropping it without
/// [`SelfProfiler::stop`] discards the measurement.
#[derive(Debug)]
pub struct StageTimer {
    name: String,
    started: Instant,
}

impl SelfProfiler {
    /// An empty profiler.
    pub fn new() -> SelfProfiler {
        SelfProfiler::default()
    }

    /// Starts timing one stage; pass the returned guard to
    /// [`SelfProfiler::stop`].
    pub fn stage(&self, name: impl Into<String>) -> StageTimer {
        StageTimer {
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Stops `timer`, accumulating its elapsed wall-clock time.
    pub fn stop(&mut self, timer: StageTimer) {
        let secs = timer.started.elapsed().as_secs_f64();
        match self.stages.iter_mut().find(|(n, _)| *n == timer.name) {
            Some((_, total)) => *total += secs,
            None => self.stages.push((timer.name, secs)),
        }
    }

    /// Times `f` as one run of stage `name`, returning its value.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let timer = self.stage(name);
        let value = f();
        self.stop(timer);
        value
    }

    /// Folds another profiler's stages into this one, accumulating
    /// matching stage names and appending new ones in `other`'s order.
    ///
    /// This is how parallel harness runs keep deterministic profiles:
    /// each worker times its own stages into a private profiler, and the
    /// caller absorbs the workers in submission order, so the merged
    /// stage list is independent of which thread finished first.
    pub fn absorb(&mut self, other: SelfProfiler) {
        for (name, secs) in other.stages {
            match self.stages.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += secs,
                None => self.stages.push((name, secs)),
            }
        }
    }

    /// Accumulated seconds for `name`, when that stage ran.
    pub fn seconds(&self, name: &str) -> Option<f64> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Every recorded stage with its accumulated seconds, in first-start
    /// order (consumed by the run ledger's opt-in wall-clock section).
    pub fn stages(&self) -> &[(String, f64)] {
        &self.stages
    }

    /// Total seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|(_, s)| s).sum()
    }

    /// Writes per-stage wall-clock gauges plus derived throughput into
    /// `registry`:
    ///
    /// * `selfprofile.wall_ms.<stage>` — milliseconds per stage;
    /// * `selfprofile.wall_ms.total` — sum over stages;
    /// * `selfprofile.sim_cycles_per_sec` — simulated cycles advanced per
    ///   wall-clock second of the `simulate` stage (when both known);
    /// * `selfprofile.events_per_sec` — engine events per second of the
    ///   `simulate` stage.
    pub fn report(
        &self,
        registry: &mut MetricsRegistry,
        simulated_cycles: Option<f64>,
        engine_events: Option<u64>,
    ) {
        for (name, secs) in &self.stages {
            registry.gauge(&format!("selfprofile.wall_ms.{name}"), secs * 1e3);
        }
        registry.gauge("selfprofile.wall_ms.total", self.total_seconds() * 1e3);
        if let Some(sim_secs) = self.seconds("simulate") {
            if sim_secs > 0.0 {
                if let Some(cycles) = simulated_cycles {
                    registry.gauge("selfprofile.sim_cycles_per_sec", cycles / sim_secs);
                }
                if let Some(events) = engine_events {
                    registry.gauge("selfprofile.events_per_sec", events as f64 / sim_secs);
                }
            }
        }
        if let Some(events) = engine_events {
            registry.count("selfprofile.engine_events", events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_repeated_stages() {
        let mut p = SelfProfiler::new();
        for _ in 0..3 {
            p.time("simulate", || std::hint::black_box(1 + 1));
        }
        p.time("export", || ());
        assert!(p.seconds("simulate").unwrap() >= 0.0);
        assert!(p.seconds("export").is_some());
        assert!(p.seconds("absent").is_none());
        assert!(p.total_seconds() >= p.seconds("simulate").unwrap());
    }

    #[test]
    fn absorb_merges_matching_stages_and_appends_new_ones() {
        let mut a = SelfProfiler::new();
        a.time("simulate", || ());
        a.time("export", || ());
        let before = a.seconds("simulate").unwrap();
        let mut b = SelfProfiler::new();
        b.time("simulate", || ());
        b.time("cluster", || ());
        a.absorb(b);
        assert!(a.seconds("simulate").unwrap() >= before);
        assert!(a.seconds("cluster").is_some());
        let names: Vec<&str> = a.stages().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["simulate", "export", "cluster"]);
    }

    #[test]
    fn report_writes_gauges_and_throughput() {
        let mut p = SelfProfiler::new();
        // Make the simulate stage take measurable time.
        p.time("simulate", || {
            let mut x = 0u64;
            for i in 0..200_000 {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            x
        });
        let mut reg = MetricsRegistry::new();
        p.report(&mut reg, Some(3.0e9), Some(1_000));
        assert!(reg.gauge_value("selfprofile.wall_ms.simulate").unwrap() > 0.0);
        assert!(reg.gauge_value("selfprofile.wall_ms.total").unwrap() > 0.0);
        assert!(reg.gauge_value("selfprofile.sim_cycles_per_sec").unwrap() > 0.0);
        assert!(reg.gauge_value("selfprofile.events_per_sec").unwrap() > 0.0);
        assert_eq!(reg.counter_value("selfprofile.engine_events"), Some(1_000));
    }

    #[test]
    fn report_without_simulate_stage_skips_throughput() {
        let p = SelfProfiler::new();
        let mut reg = MetricsRegistry::new();
        p.report(&mut reg, Some(1.0), None);
        assert!(reg.gauge_value("selfprofile.sim_cycles_per_sec").is_none());
        assert!(reg.gauge_value("selfprofile.wall_ms.total").is_some());
    }
}
