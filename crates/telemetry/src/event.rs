//! Typed trace events emitted by the simulated kernel.
//!
//! Every event carries a simulated-clock timestamp ([`Cycles`]); the
//! engine emits them at the instant the corresponding kernel action
//! happens, so a sink sees the exact interleaving the simulation computed.
//! Events are observation-only: recording them never changes engine state,
//! which is what makes trace-on and trace-off runs bit-identical.

use rbv_sim::Cycles;

/// Why a core stopped executing its current request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// Scheduling quantum expiry rotated the runqueue.
    Quantum,
    /// The request finished its stage on this component.
    StageEnd,
    /// The contention-easing scheduler displaced a high-usage request.
    Eased,
}

impl SwitchReason {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            SwitchReason::Quantum => "quantum",
            SwitchReason::StageEnd => "stage_end",
            SwitchReason::Eased => "eased",
        }
    }
}

/// Where a counter sample was collected (mirrors
/// `rbv_os::observer::SamplingContext` without the dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOrigin {
    /// In-kernel sampling: context switch, syscall trigger, stage end.
    InKernel,
    /// Periodic or backup timer interrupt.
    Interrupt,
}

impl SampleOrigin {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            SampleOrigin::InKernel => "inkernel",
            SampleOrigin::Interrupt => "interrupt",
        }
    }
}

/// One structured event from the simulated kernel.
///
/// Identifiers are plain integers (`rid` = request id, `core` = core
/// index) so sinks need no access to engine internals; human-readable
/// names travel as strings on the events that introduce an entity.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the system (span begin on the request track).
    RequestBegin {
        /// Simulated arrival instant.
        ts: Cycles,
        /// Engine-assigned request id.
        rid: u64,
        /// Application name (e.g. `TPC-C`).
        app: String,
        /// Request class within the application.
        class: String,
    },
    /// A request completed its final stage (span end).
    RequestEnd {
        /// Simulated completion instant.
        ts: Cycles,
        /// Engine-assigned request id.
        rid: u64,
    },
    /// A core started executing a request (slice begin on the core track).
    SliceBegin {
        /// Dispatch instant.
        ts: Cycles,
        /// Executing core.
        core: u32,
        /// Request id.
        rid: u64,
        /// Zero-based stage index within the request.
        stage: u32,
        /// Server component hosting the stage (e.g. `app-tier`).
        component: String,
    },
    /// The core stopped executing that request (slice end).
    SliceEnd {
        /// Instant execution stopped.
        ts: Cycles,
        /// Core that was executing.
        core: u32,
        /// Request id.
        rid: u64,
    },
    /// A scheduler-initiated context switch away from a request.
    ContextSwitch {
        /// Switch instant.
        ts: Cycles,
        /// Core switching.
        core: u32,
        /// Request that was running.
        from: u64,
        /// What triggered the switch.
        reason: SwitchReason,
    },
    /// A hardware-counter sample with the flushed period snapshot.
    SamplingInstant {
        /// Sample collection instant.
        ts: Cycles,
        /// Core sampled.
        core: u32,
        /// Request the period is attributed to.
        rid: u64,
        /// Collection mechanism.
        origin: SampleOrigin,
        /// Triggering syscall, when syscall-triggered.
        syscall: Option<String>,
        /// Period length in cycles (post-compensation).
        cycles: f64,
        /// Instructions retired in the period.
        instructions: f64,
        /// L2 references in the period.
        l2_refs: f64,
        /// L2 misses in the period.
        l2_misses: f64,
    },
    /// A request entered a system call.
    SyscallEntry {
        /// Entry instant.
        ts: Cycles,
        /// Core executing the request.
        core: u32,
        /// Request id.
        rid: u64,
        /// Syscall name (e.g. `read`).
        name: String,
    },
    /// The contention-easing scheduler (§5.2) displaced a high-usage
    /// request in favor of a non-high one.
    ContentionEasing {
        /// Decision instant.
        ts: Cycles,
        /// Core re-scheduled.
        core: u32,
        /// High-usage request pushed back to the queue head.
        displaced: u64,
        /// Non-high request dispatched instead.
        chosen: u64,
    },
    /// A queued request migrated between cores (work stealing).
    Migration {
        /// Migration instant.
        ts: Cycles,
        /// Request id.
        rid: u64,
        /// Core whose runqueue lost the request.
        from_core: u32,
        /// Core whose runqueue gained it.
        to_core: u32,
    },
    /// The number of cores simultaneously in a high-L2-usage period
    /// changed (an episode boundary of the Figure 12 measure).
    L2Pressure {
        /// Instant the count changed.
        ts: Cycles,
        /// Cores now simultaneously at high usage.
        high_cores: u32,
    },
    /// An injected measurement fault lost a sampling interrupt before its
    /// handler ran; the open period extends into the next sample.
    SampleLost {
        /// Instant the interrupt would have fired.
        ts: Cycles,
        /// Core whose sample was lost.
        core: u32,
    },
    /// A collected sample is flagged low-confidence (lost-interrupt
    /// stretch, detected counter overflow) instead of silently feeding
    /// corrupted counters into the series and predictors.
    LowConfidenceSample {
        /// Collection instant.
        ts: Cycles,
        /// Core sampled.
        core: u32,
        /// Request the period is attributed to.
        rid: u64,
        /// Why confidence is low (e.g. `lost_interrupt`,
        /// `counter_overflow`).
        reason: String,
    },
    /// The syscall sampling path entered an injected starvation window;
    /// until it ends only the backup interrupt timer collects samples.
    SamplingStarved {
        /// Window start.
        ts: Cycles,
        /// Core affected.
        core: u32,
        /// Window end.
        until: Cycles,
    },
    /// A request entered a runqueue: first admission, a mid-request stage
    /// hop, a quantum/easing requeue, or a client resubmission. Together
    /// with [`TraceEvent::SliceBegin`] this bounds every per-core queue
    /// wait, and `attempt` threads the client retry generation through
    /// the NIC-style queues so span reconstruction can attribute each
    /// wait to the attempt that incurred it.
    QueueEnter {
        /// Insertion instant.
        ts: Cycles,
        /// Request id.
        rid: u64,
        /// Runqueue index (the core's queue, or queue 0 under cFCFS).
        queue: u32,
        /// Client attempt generation (0 = first submission).
        attempt: u32,
    },
    /// Per-core admission control rejected a new request (bounded
    /// runqueues under overload).
    AdmissionRejected {
        /// Rejection instant.
        ts: Cycles,
        /// Request id.
        rid: u64,
        /// The least-loaded core that was still over the bound.
        core: u32,
        /// Admission attempts so far (0 = first try).
        attempt: u32,
    },
    /// A retry was scheduled with exponential backoff plus jitter:
    /// either an admission-level re-try of the same client attempt
    /// (`client = false`, `attempt` counts admission tries), or an
    /// impatient client abandoning the current attempt and scheduling a
    /// resubmission (`client = true`, `attempt` is the upcoming client
    /// generation).
    RetryScheduled {
        /// Scheduling instant.
        ts: Cycles,
        /// Request id.
        rid: u64,
        /// The upcoming attempt number (admission try or client
        /// generation, per `client`).
        attempt: u32,
        /// Backoff delay before the retry.
        backoff: Cycles,
        /// Whether this is a client-generation retry (timeout resubmit)
        /// rather than an admission-level backoff.
        client: bool,
    },
    /// A request failed: shed after exhausting admission retries, or
    /// aborted at its deadline.
    RequestFailed {
        /// Failure instant.
        ts: Cycles,
        /// Request id.
        rid: u64,
        /// Failure kind (`shed` or `deadline`).
        reason: String,
    },
    /// The contention-easing prediction-confidence gate changed state:
    /// `engaged = true` means easing decisions are suspended and the
    /// scheduler behaves like stock until prediction error recovers.
    EasingGate {
        /// Transition instant.
        ts: Cycles,
        /// Whether the gate is now holding easing back.
        engaged: bool,
        /// Running mean relative vaEWMA prediction error at the
        /// transition.
        error: f64,
    },
    /// The sampling governor changed its interval scale: a multiplicative
    /// back-off on a do-no-harm budget breach, or an additive recovery
    /// step while comfortably under budget.
    GovernorAdjust {
        /// Decision instant (an accounting-window boundary).
        ts: Cycles,
        /// What the controller did (`backoff` or `recover`).
        action: String,
        /// The interval scale now in effect (1 = configured baseline).
        scale: f64,
        /// The window's measured overhead fraction.
        overhead_frac: f64,
        /// The budget the window was judged against.
        budget_frac: f64,
    },
    /// The measurement-health ladder moved one rung (`easing`,
    /// `frozen_predictions`, `stock`, `shed`, or `brownout`) — below
    /// `stock` the scheduler runs unmodified and the overload defenses
    /// progressively engage.
    HealthTransition {
        /// Transition instant (an accounting-window boundary).
        ts: Cycles,
        /// Rung the ladder left.
        from: String,
        /// Rung the ladder entered.
        to: String,
        /// The smoothed health score that triggered the move.
        score: f64,
    },
    /// The runtime invariant monitor observed a violated conservation
    /// law; the run continues and the violation is counted.
    InvariantViolation {
        /// Detection instant.
        ts: Cycles,
        /// Which invariant family (e.g. `request_conservation`).
        invariant: String,
        /// Human-readable detail of the violated relation.
        detail: String,
    },
    /// One campaign shard finished its simulation (campaign runs only;
    /// `ts` is the shard's final simulated instant).
    CampaignShard {
        /// The shard's final simulated instant.
        ts: Cycles,
        /// Canonical shard key, e.g. `web/s42/nominal/stock/e3`.
        shard: String,
        /// Campaign epoch the shard belongs to.
        epoch: u32,
        /// Requests the shard completed.
        requests: u64,
        /// Whether the shard ran under the drift-injection scenario.
        drifted: bool,
    },
    /// Campaign shards were folded into the warehouse (one event per
    /// merged `(app, epoch)` cell, emitted at merge time).
    CampaignMerge {
        /// The cell's largest shard end instant.
        ts: Cycles,
        /// Application short label of the merged cell.
        app: String,
        /// Campaign epoch of the merged cell.
        epoch: u32,
        /// Shards folded into the cell.
        shards: u64,
    },
    /// A core's effective DVFS P-state changed (governor cap, core park,
    /// or firmware throttle moved it on the frequency ladder).
    DvfsTransition {
        /// Transition instant.
        ts: Cycles,
        /// Core whose frequency changed.
        core: u32,
        /// P-state the core left.
        from_pstate: u32,
        /// P-state the core entered.
        to_pstate: u32,
        /// New frequency ratio in milli-units of the nominal clock.
        ratio_milli: u32,
    },
    /// Firmware thermal throttling engaged or released on a core.
    ThermalThrottle {
        /// Edge instant.
        ts: Cycles,
        /// Core throttled or released.
        core: u32,
        /// `true` = engaged (clamped to the slowest P-state), `false` =
        /// released.
        engaged: bool,
        /// Core temperature at the edge, in milli-°C.
        temp_milli_c: i64,
    },
    /// One tier leg of a multi-machine request resolved: the request
    /// finished (or failed) its consecutive same-tier stages on one
    /// cluster machine (cluster runs only; emitted by the `rbv-cluster`
    /// event loop, never by a single-machine engine).
    TierLeg {
        /// Leg completion instant on the cluster clock.
        ts: Cycles,
        /// Cluster-global request id.
        rid: u64,
        /// Index of the machine that served the leg.
        machine: u32,
        /// Tier label of that machine (e.g. `frontend`, `app`, `db`).
        tier: String,
        /// Leg index along the request's causal path (0 = first leg).
        leg: u32,
        /// When the leg arrived at the machine.
        arrived: Cycles,
        /// Queueing/wait share of the leg's residence time, in cycles.
        wait_cycles: u64,
        /// On-CPU service share of the leg's residence time, in cycles.
        service_cycles: u64,
        /// The leg's cycles-per-instruction, 0.0 if it ran nothing.
        cpi: f64,
    },
    /// One inter-machine network hop of a multi-machine request was
    /// delivered (cluster runs only; `ts` is the delivery instant at the
    /// destination machine).
    TierHop {
        /// Delivery instant at the destination machine.
        ts: Cycles,
        /// Cluster-global request id.
        rid: u64,
        /// Machine the request departed from.
        from_machine: u32,
        /// Machine the request was delivered to.
        to_machine: u32,
        /// Hop index along the request's causal path (0 = first hop).
        hop: u32,
        /// Departure instant from the source machine.
        departed: Cycles,
        /// Payload bytes serialized onto the link.
        bytes: u64,
    },
}

impl TraceEvent {
    /// The event's simulated timestamp.
    pub fn ts(&self) -> Cycles {
        match self {
            TraceEvent::RequestBegin { ts, .. }
            | TraceEvent::RequestEnd { ts, .. }
            | TraceEvent::SliceBegin { ts, .. }
            | TraceEvent::SliceEnd { ts, .. }
            | TraceEvent::ContextSwitch { ts, .. }
            | TraceEvent::SamplingInstant { ts, .. }
            | TraceEvent::SyscallEntry { ts, .. }
            | TraceEvent::ContentionEasing { ts, .. }
            | TraceEvent::Migration { ts, .. }
            | TraceEvent::L2Pressure { ts, .. }
            | TraceEvent::SampleLost { ts, .. }
            | TraceEvent::LowConfidenceSample { ts, .. }
            | TraceEvent::SamplingStarved { ts, .. }
            | TraceEvent::QueueEnter { ts, .. }
            | TraceEvent::AdmissionRejected { ts, .. }
            | TraceEvent::RetryScheduled { ts, .. }
            | TraceEvent::RequestFailed { ts, .. }
            | TraceEvent::EasingGate { ts, .. }
            | TraceEvent::GovernorAdjust { ts, .. }
            | TraceEvent::HealthTransition { ts, .. }
            | TraceEvent::InvariantViolation { ts, .. }
            | TraceEvent::CampaignShard { ts, .. }
            | TraceEvent::CampaignMerge { ts, .. }
            | TraceEvent::DvfsTransition { ts, .. }
            | TraceEvent::ThermalThrottle { ts, .. }
            | TraceEvent::TierLeg { ts, .. }
            | TraceEvent::TierHop { ts, .. } => *ts,
        }
    }

    /// Short kind label (also the exporter's category string).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RequestBegin { .. } => "request_begin",
            TraceEvent::RequestEnd { .. } => "request_end",
            TraceEvent::SliceBegin { .. } => "slice_begin",
            TraceEvent::SliceEnd { .. } => "slice_end",
            TraceEvent::ContextSwitch { .. } => "context_switch",
            TraceEvent::SamplingInstant { .. } => "sampling_instant",
            TraceEvent::SyscallEntry { .. } => "syscall_entry",
            TraceEvent::ContentionEasing { .. } => "contention_easing",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::L2Pressure { .. } => "l2_pressure",
            TraceEvent::SampleLost { .. } => "sample_lost",
            TraceEvent::LowConfidenceSample { .. } => "low_confidence_sample",
            TraceEvent::SamplingStarved { .. } => "sampling_starved",
            TraceEvent::QueueEnter { .. } => "queue_enter",
            TraceEvent::AdmissionRejected { .. } => "admission_rejected",
            TraceEvent::RetryScheduled { .. } => "retry_scheduled",
            TraceEvent::RequestFailed { .. } => "request_failed",
            TraceEvent::EasingGate { .. } => "easing_gate",
            TraceEvent::GovernorAdjust { .. } => "governor_adjust",
            TraceEvent::HealthTransition { .. } => "health_transition",
            TraceEvent::InvariantViolation { .. } => "invariant_violation",
            TraceEvent::CampaignShard { .. } => "campaign_shard",
            TraceEvent::CampaignMerge { .. } => "campaign_merge",
            TraceEvent::DvfsTransition { .. } => "dvfs_transition",
            TraceEvent::ThermalThrottle { .. } => "thermal_throttle",
            TraceEvent::TierLeg { .. } => "tier_leg",
            TraceEvent::TierHop { .. } => "tier_hop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_and_kind_cover_every_variant() {
        let t = Cycles::new(42);
        let events = vec![
            TraceEvent::RequestBegin {
                ts: t,
                rid: 1,
                app: "TPC-C".into(),
                class: "NewOrder".into(),
            },
            TraceEvent::RequestEnd { ts: t, rid: 1 },
            TraceEvent::SliceBegin {
                ts: t,
                core: 0,
                rid: 1,
                stage: 0,
                component: "standalone".into(),
            },
            TraceEvent::SliceEnd {
                ts: t,
                core: 0,
                rid: 1,
            },
            TraceEvent::ContextSwitch {
                ts: t,
                core: 0,
                from: 1,
                reason: SwitchReason::Quantum,
            },
            TraceEvent::SamplingInstant {
                ts: t,
                core: 0,
                rid: 1,
                origin: SampleOrigin::InKernel,
                syscall: None,
                cycles: 1.0,
                instructions: 1.0,
                l2_refs: 0.0,
                l2_misses: 0.0,
            },
            TraceEvent::SyscallEntry {
                ts: t,
                core: 0,
                rid: 1,
                name: "read".into(),
            },
            TraceEvent::ContentionEasing {
                ts: t,
                core: 0,
                displaced: 1,
                chosen: 2,
            },
            TraceEvent::Migration {
                ts: t,
                rid: 1,
                from_core: 0,
                to_core: 1,
            },
            TraceEvent::L2Pressure {
                ts: t,
                high_cores: 2,
            },
            TraceEvent::SampleLost { ts: t, core: 0 },
            TraceEvent::LowConfidenceSample {
                ts: t,
                core: 0,
                rid: 1,
                reason: "lost_interrupt".into(),
            },
            TraceEvent::SamplingStarved {
                ts: t,
                core: 0,
                until: Cycles::new(99),
            },
            TraceEvent::QueueEnter {
                ts: t,
                rid: 1,
                queue: 0,
                attempt: 0,
            },
            TraceEvent::AdmissionRejected {
                ts: t,
                rid: 1,
                core: 0,
                attempt: 0,
            },
            TraceEvent::RetryScheduled {
                ts: t,
                rid: 1,
                attempt: 1,
                backoff: Cycles::new(7),
                client: false,
            },
            TraceEvent::RequestFailed {
                ts: t,
                rid: 1,
                reason: "shed".into(),
            },
            TraceEvent::EasingGate {
                ts: t,
                engaged: true,
                error: 0.4,
            },
            TraceEvent::GovernorAdjust {
                ts: t,
                action: "backoff".into(),
                scale: 2.0,
                overhead_frac: 0.03,
                budget_frac: 0.01,
            },
            TraceEvent::HealthTransition {
                ts: t,
                from: "easing".into(),
                to: "frozen_predictions".into(),
                score: 0.5,
            },
            TraceEvent::InvariantViolation {
                ts: t,
                invariant: "clock_monotonic".into(),
                detail: "clock went backwards: 7 -> 3".into(),
            },
            TraceEvent::CampaignShard {
                ts: t,
                shard: "web/s42/nominal/stock/e3".into(),
                epoch: 3,
                requests: 40,
                drifted: false,
            },
            TraceEvent::CampaignMerge {
                ts: t,
                app: "web".into(),
                epoch: 3,
                shards: 12,
            },
            TraceEvent::DvfsTransition {
                ts: t,
                core: 0,
                from_pstate: 0,
                to_pstate: 2,
                ratio_milli: 800,
            },
            TraceEvent::ThermalThrottle {
                ts: t,
                core: 0,
                engaged: true,
                temp_milli_c: 95_200,
            },
            TraceEvent::TierLeg {
                ts: t,
                rid: 1,
                machine: 0,
                tier: "frontend".into(),
                leg: 0,
                arrived: Cycles::new(7),
                wait_cycles: 5,
                service_cycles: 30,
                cpi: 1.8,
            },
            TraceEvent::TierHop {
                ts: t,
                rid: 1,
                from_machine: 0,
                to_machine: 2,
                hop: 0,
                departed: Cycles::new(40),
                bytes: 1500,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert!(events.iter().all(|e| e.ts() == t));
        kinds.dedup();
        assert_eq!(kinds.len(), 27, "distinct kind per variant");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SwitchReason::Quantum.label(), "quantum");
        assert_eq!(SwitchReason::StageEnd.label(), "stage_end");
        assert_eq!(SwitchReason::Eased.label(), "eased");
        assert_eq!(SampleOrigin::InKernel.label(), "inkernel");
        assert_eq!(SampleOrigin::Interrupt.label(), "interrupt");
    }
}
