//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no crates.io access, so exporters cannot use
//! `serde`. This module implements the subset of JSON the telemetry
//! exporters and their round-trip tests need: finite numbers, strings with
//! standard escapes, arrays, objects, booleans, and null. Object key order
//! is preserved (Chrome's trace viewer does not care, but deterministic
//! output makes golden tests trivial).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes into `out` without allocating intermediates.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// JSON has no NaN/Infinity; emit `null` like browsers' `JSON.stringify`.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte {:?} at {}", b as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .unwrap_or_else(|_| unreachable!("scanned bytes are ascii digits"));
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".into());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("trace \"x\"\n")),
            ("pi".into(), Json::Num(3.25)),
            ("count".into(), Json::Num(42.0)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::str("two"), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_compact();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn integers_print_without_exponent_or_fraction() {
        assert_eq!(Json::Num(1_000_000.0).to_string_compact(), "1000000");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\\u0041\" : [ 1 , -2.5e1 , \"\\t\" ] } ").unwrap();
        let arr = parsed.get("aA").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse("{\"a\":1}").unwrap();
        assert!(v.get("b").is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_array().is_none());
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert!(Json::Num(1.0).get("a").is_none());
    }
}
