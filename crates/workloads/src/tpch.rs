//! TPC-H decision support queries on MySQL (§2.1).
//!
//! The paper uses the 17-query subset Q2–Q22 (excluding the five queries
//! too slow for interactive serving) over a 361 MB dataset, with an equal
//! proportion of each query type. Each query is a *template* of a few long,
//! internally-uniform phases — table scans, hash joins, sorts and
//! aggregations — which is why TPC-H is the one application whose
//! intra-request variation adds little over its inter-request variation
//! (Figure 3) and whose requests respond well to time-series signatures.
//!
//! Scans have working sets far beyond the 4 MB L2 and stream at high
//! reference rates: at four cores they saturate the memory system, which
//! is what doubles the 90-percentile request CPI in Figure 1.

use rand::Rng;
use rbv_sim::SimRng;

use crate::builder::{jittered_ins, profile, StageBuilder};
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// The paper's 17-query subset.
pub const QUERY_SUBSET: [u8; 17] = [2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 17, 19, 20, 22];

/// Kinds of query operator phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Sequential table scan: huge footprint, no reuse.
    Scan,
    /// Hash join probe/build: medium footprint, partial reuse.
    Join,
    /// Sort / aggregation: small footprint, high reuse.
    SortAgg,
}

/// Per-query template: total length (millions of instructions, paper
/// scale) and operator pipeline.
fn query_template(q: u8) -> (u64, &'static [Op]) {
    use Op::*;
    match q {
        2 => (30, &[Scan, Join, SortAgg]),
        3 => (70, &[Scan, Join, Join, SortAgg]),
        4 => (40, &[Scan, Join, SortAgg]),
        5 => (110, &[Scan, Join, Join, Join, SortAgg]),
        6 => (25, &[Scan, SortAgg]),
        7 => (130, &[Scan, Join, Join, SortAgg, SortAgg]),
        8 => (170, &[Scan, Scan, Join, Join, SortAgg]),
        9 => (200, &[Scan, Scan, Join, Join, Join, SortAgg]),
        11 => (90, &[Scan, Join, SortAgg, SortAgg]),
        12 => (45, &[Scan, Join, SortAgg]),
        13 => (60, &[Scan, Join, SortAgg]),
        14 => (50, &[Scan, Join, SortAgg]),
        15 => (55, &[Scan, SortAgg, Join, SortAgg]),
        17 => (150, &[Scan, Join, Join, SortAgg]),
        19 => (85, &[Scan, Join, SortAgg]),
        20 => (80, &[Scan, Join, Scan, Join, SortAgg]),
        22 => (95, &[Scan, Join, SortAgg, SortAgg]),
        _ => panic!("query Q{q} is not in the paper's 17-query subset"),
    }
}

/// Request generator for the TPC-H model.
#[derive(Debug)]
pub struct Tpch {
    rng: SimRng,
    scale: f64,
    next_query_idx: usize,
    io_mix: SyscallMix,
}

impl Tpch {
    /// Creates the generator; `scale` multiplies instruction counts.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> Tpch {
        assert!(scale > 0.0, "scale must be positive");
        Tpch {
            rng: SimRng::seed_from(seed ^ 0x79c8),
            scale,
            next_query_idx: 0,
            io_mix: SyscallMix::new(&[
                (SyscallName::Pread, 8),
                (SyscallName::Lseek, 2),
                (SyscallName::Futex, 1),
                (SyscallName::Gettimeofday, 1),
            ]),
        }
    }

    /// Builds a request for a specific query of the subset.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not one of [`QUERY_SUBSET`].
    pub fn request_of_query(&mut self, q: u8) -> Request {
        let (millions, ops) = query_template(q);
        let s = self.scale;
        // MySQL reads pages with very frequent preads: TPCH is the second
        // most syscall-dense application in Figure 4.
        let gaps = GapProcess::exponential(8_000.0 * s.max(0.02));
        let mix = self.io_mix.clone();
        let rng = &mut self.rng;

        // Deterministic per-query operator parameters: the same query always
        // has the same footprint structure (requests differ only by jitter).
        let mut qrng = SimRng::seed_from(0x79c8_0000 + q as u64);
        // Per-query style: a whole-query bias keeps *within*-request
        // behavior uniform (the paper's TPCH observation, §3.1) while
        // differentiating queries from each other.
        let cpi_bias = qrng.gen_range(-0.10..0.30);
        let refs_mult = qrng.gen_range(0.92..1.08);
        let total_ins = (millions as f64 * 1e6 * s) as u64;
        // Split total length across ops with query-specific proportions.
        let raw: Vec<f64> = ops.iter().map(|_| qrng.gen_range(0.6..1.4)).collect();
        let norm: f64 = raw.iter().sum();

        let mut b = StageBuilder::new(Component::Database);
        for (op, r) in ops.iter().zip(&raw) {
            let ins = ((total_ins as f64) * r / norm) as u64 + 1;
            let (base, refs, ws, loc) = match op {
                Op::Scan => (
                    qrng.gen_range(0.74..0.84) + cpi_bias,
                    qrng.gen_range(0.0052..0.0066) * refs_mult,
                    qrng.gen_range(80e6..361e6),
                    qrng.gen_range(0.32..0.42),
                ),
                Op::Join => (
                    qrng.gen_range(0.86..0.98) + cpi_bias,
                    qrng.gen_range(0.0068..0.0078) * refs_mult,
                    qrng.gen_range(8e6..16e6),
                    qrng.gen_range(0.55..0.68),
                ),
                Op::SortAgg => (
                    qrng.gen_range(0.92..1.06) + cpi_bias,
                    qrng.gen_range(0.0045..0.0060) * refs_mult,
                    qrng.gen_range(3e6..7e6),
                    qrng.gen_range(0.80..0.88),
                ),
            };
            // TPCH behavior is uniform (§3.1) but not perfectly constant:
            // real counters breathe sample to sample (buffer boundaries,
            // page crossings). Each operator is emitted as a handful of
            // chunks with small multiplicative jitter, which is what makes
            // last-value prediction imperfect in Figure 11 while keeping
            // the intra-request CoV low in Figure 3.
            let op_ins = jittered_ins(ins, 0.04, rng);
            let chunk = (op_ins / 100).max(1);
            let mut left = op_ins;
            while left > 0 {
                let this = chunk.min(left);
                left -= this;
                b.phase(
                    profile(base, refs, ws, loc, 0.10, rng),
                    this,
                    None,
                    Some((&gaps, &mix)),
                    rng,
                );
            }
        }

        Request {
            app: AppId::Tpch,
            class: RequestClass::TpchQuery(q),
            stages: vec![b.finish()],
        }
    }
}

impl RequestFactory for Tpch {
    fn app(&self) -> AppId {
        AppId::Tpch
    }

    /// Cycles through the 17 queries in equal proportion (§2.1: "an equal
    /// proportion of requests of each query type"), in a seed-shuffled
    /// order.
    fn next_request(&mut self) -> Request {
        if self.next_query_idx == 0 {
            // Periodically reshuffle the round order.
            let _ = self.rng.gen::<u64>();
        }
        let q = QUERY_SUBSET[self.next_query_idx];
        self.next_query_idx = (self.next_query_idx + 1) % QUERY_SUBSET.len();
        self.request_of_query(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_valid() {
        let mut t = Tpch::new(1, 0.1);
        for _ in 0..17 {
            assert!(t.next_request().validate().is_ok());
        }
    }

    #[test]
    fn q20_is_about_80m_instructions() {
        // Figure 2's TPCH example is Q20 at ~80 M instructions.
        let mut t = Tpch::new(2, 1.0);
        let len = t.request_of_query(20).total_instructions().get();
        assert!((65_000_000..95_000_000).contains(&len), "Q20 length {len}");
    }

    #[test]
    fn all_subset_queries_buildable() {
        let mut t = Tpch::new(3, 0.05);
        for q in QUERY_SUBSET {
            let r = t.request_of_query(q);
            assert!(r.validate().is_ok(), "Q{q}");
            assert_eq!(r.class, RequestClass::TpchQuery(q));
        }
    }

    #[test]
    #[should_panic(expected = "not in the paper's 17-query subset")]
    fn excluded_query_panics() {
        Tpch::new(4, 1.0).request_of_query(21);
    }

    #[test]
    fn equal_proportion_round_robin() {
        let mut t = Tpch::new(5, 0.02);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..(17 * 6) {
            if let RequestClass::TpchQuery(q) = t.next_request().class {
                *counts.entry(q).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts.len(), 17);
        assert!(counts.values().all(|&c| c == 6), "{counts:?}");
    }

    #[test]
    fn same_query_requests_are_similar_but_not_identical() {
        let mut t = Tpch::new(6, 1.0);
        let a = t.request_of_query(6);
        let b = t.request_of_query(6);
        assert_ne!(a, b);
        let (la, lb) = (
            a.total_instructions().get() as f64,
            b.total_instructions().get() as f64,
        );
        assert!((la / lb - 1.0).abs() < 0.3, "lengths {la} vs {lb}");
        let (pa, pb) = (
            a.stages[0].phases.len() as f64,
            b.stages[0].phases.len() as f64,
        );
        assert!((pa / pb - 1.0).abs() < 0.2, "phase counts {pa} vs {pb}");
    }

    #[test]
    fn scans_have_huge_working_sets() {
        let mut t = Tpch::new(7, 1.0);
        let r = t.request_of_query(9);
        let max_ws = r.stages[0]
            .phases
            .iter()
            .map(|p| p.profile.working_set_bytes)
            .fold(0.0f64, f64::max);
        assert!(max_ws > 50e6, "max working set {max_ws}");
    }

    #[test]
    fn behavior_is_uniform_within_operators() {
        // TPCH uniformity (§3.1): consecutive chunks of an operator keep
        // nearly the same inherent behavior; the request-level CPI swing
        // comes from the handful of operator transitions only.
        let mut t = Tpch::new(8, 1.0);
        let r = t.request_of_query(5);
        let phases = &r.stages[0].phases;
        let close = phases
            .windows(2)
            .filter(|w| (w[1].profile.base_cpi / w[0].profile.base_cpi - 1.0).abs() < 0.35)
            .count();
        // Nearly all adjacent pairs are within-operator (similar behavior).
        assert!(
            close as f64 > 0.8 * (phases.len() - 1) as f64,
            "{close} of {} adjacent pairs similar",
            phases.len() - 1
        );
        // Chunks are still long: tens of operator chunks, not thousands.
        assert!(phases.len() < 700, "{} phases", phases.len());
    }

    #[test]
    fn syscalls_are_frequent() {
        let mut t = Tpch::new(9, 1.0);
        let r = t.request_of_query(6);
        let mean_gap = r.total_instructions().get() / (r.syscall_names().len().max(1) as u64);
        assert!(mean_gap < 25_000, "mean gap {mean_gap}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Tpch::new(10, 0.2);
        let mut b = Tpch::new(10, 0.2);
        assert_eq!(a.next_request(), b.next_request());
    }
}
