//! Request, stage, and phase types shared by all five application models.
//!
//! A *request* (the paper's unit of analysis, §1) is the set of server
//! activities serving one user call. We represent it as a sequence of
//! [`Stage`]s — one per server component it propagates through (web tier,
//! application server, database; single-stage for the web server) — each a
//! sequence of behavior [`Phase`]s plus a pre-drawn stream of
//! [`SyscallEvent`]s.
//!
//! A phase carries a [`SegmentProfile`] (base CPI, L2 reference intensity,
//! working set, locality): the *inherent* behavior of that stretch of
//! execution. How it actually performs — the CPI and L2 miss ratio a
//! hardware counter would observe — is decided at run time by the
//! contention model in `rbv-mem`, given whatever happens to be co-running.
//! This split is exactly the paper's distinction between application
//! semantics and dynamic resource competition (§2.3).

use std::fmt;

use rbv_mem::SegmentProfile;
use rbv_sim::Instructions;

use crate::syscalls::SyscallName;

/// The five server applications of the paper plus the two microbenchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// Apache 2.2 serving the SPECweb99 static content mix.
    WebServer,
    /// TPC-C order-entry transactions on MySQL/InnoDB.
    Tpcc,
    /// TPC-H decision support (17-query subset) on MySQL.
    Tpch,
    /// RUBiS three-tier online auction (Apache / JBoss EJB / MySQL).
    Rubis,
    /// WeBWorK user-content-driven online teaching application.
    Webwork,
    /// Mbench-Spin: CPU spin with almost no data access (Table 1).
    MbenchSpin,
    /// Mbench-Data: repeated sequential scans of 16 MB (Table 1).
    MbenchData,
}

impl AppId {
    /// The five real server applications, in the paper's order.
    pub const SERVER_APPS: [AppId; 5] = [
        AppId::WebServer,
        AppId::Tpcc,
        AppId::Tpch,
        AppId::Rubis,
        AppId::Webwork,
    ];

    /// The per-request counter sampling period the paper uses for this
    /// application (§3.1): 10 µs for the web server, 100 µs for TPCC and
    /// RUBiS, 1 ms for the long-request TPCH and WeBWorK. Microbenchmarks
    /// use the web server's fine period.
    pub fn sampling_period_micros(self) -> u64 {
        match self {
            AppId::WebServer | AppId::MbenchSpin | AppId::MbenchData => 10,
            AppId::Tpcc | AppId::Rubis => 100,
            AppId::Tpch | AppId::Webwork => 1_000,
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppId::WebServer => "Web server",
            AppId::Tpcc => "TPCC",
            AppId::Tpch => "TPCH",
            AppId::Rubis => "RUBiS",
            AppId::Webwork => "WeBWorK",
            AppId::MbenchSpin => "Mbench-Spin",
            AppId::MbenchData => "Mbench-Data",
        };
        f.write_str(name)
    }
}

/// Application-level class of a request: the paper groups requests with
/// "similar application-level semantics and instruction streams" (§4.3) by
/// exactly these identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RequestClass {
    /// SPECweb99 static file class (0 = 100 B range .. 3 = 100 KB–900 KB).
    WebFile(u8),
    /// TPC-C transaction type.
    TpccTxn(TpccTxn),
    /// TPC-H query number (2..22, the 17-query subset).
    TpchQuery(u8),
    /// RUBiS interaction type.
    Rubis(RubisInteraction),
    /// WeBWorK teacher-created problem identifier.
    WebworkProblem(u32),
    /// Microbenchmark iteration.
    Mbench,
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestClass::WebFile(c) => write!(f, "web-class{c}"),
            RequestClass::TpccTxn(t) => write!(f, "tpcc-{t}"),
            RequestClass::TpchQuery(q) => write!(f, "tpch-Q{q}"),
            RequestClass::Rubis(i) => write!(f, "rubis-{i}"),
            RequestClass::WebworkProblem(p) => write!(f, "webwork-{p}"),
            RequestClass::Mbench => write!(f, "mbench"),
        }
    }
}

/// TPC-C transaction types with the benchmark's standard mix
/// (45 / 43 / 4 / 4 / 4, §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TpccTxn {
    /// "new order" — 45% of requests.
    NewOrder,
    /// "payment" — 43%.
    Payment,
    /// "order status" — 4%.
    OrderStatus,
    /// "delivery" — 4%.
    Delivery,
    /// "stock level" — 4%.
    StockLevel,
}

impl TpccTxn {
    /// All types with their mix weight in percent.
    pub const MIX: [(TpccTxn, u32); 5] = [
        (TpccTxn::NewOrder, 45),
        (TpccTxn::Payment, 43),
        (TpccTxn::OrderStatus, 4),
        (TpccTxn::Delivery, 4),
        (TpccTxn::StockLevel, 4),
    ];
}

impl fmt::Display for TpccTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TpccTxn::NewOrder => "new-order",
            TpccTxn::Payment => "payment",
            TpccTxn::OrderStatus => "order-status",
            TpccTxn::Delivery => "delivery",
            TpccTxn::StockLevel => "stock-level",
        };
        f.write_str(name)
    }
}

/// Core RUBiS interactions (selling, browsing, bidding; §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RubisInteraction {
    /// Browse top-level categories.
    BrowseCategories,
    /// Search items in a category (the Figure 2 example).
    SearchItemsByCategory,
    /// View one item's detail page.
    ViewItem,
    /// View a user's profile and comments.
    ViewUserInfo,
    /// Place a bid on an item.
    PlaceBid,
    /// Put a comment on a user.
    PutComment,
    /// Register a new item for sale.
    RegisterItem,
    /// The user's own summary page.
    AboutMe,
}

impl RubisInteraction {
    /// All interactions with browse-heavy mix weights.
    pub const MIX: [(RubisInteraction, u32); 8] = [
        (RubisInteraction::BrowseCategories, 12),
        (RubisInteraction::SearchItemsByCategory, 25),
        (RubisInteraction::ViewItem, 25),
        (RubisInteraction::ViewUserInfo, 10),
        (RubisInteraction::PlaceBid, 12),
        (RubisInteraction::PutComment, 6),
        (RubisInteraction::RegisterItem, 5),
        (RubisInteraction::AboutMe, 5),
    ];
}

impl fmt::Display for RubisInteraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RubisInteraction::BrowseCategories => "BrowseCategories",
            RubisInteraction::SearchItemsByCategory => "SearchItemsByCategory",
            RubisInteraction::ViewItem => "ViewItem",
            RubisInteraction::ViewUserInfo => "ViewUserInfo",
            RubisInteraction::PlaceBid => "PlaceBid",
            RubisInteraction::PutComment => "PutComment",
            RubisInteraction::RegisterItem => "RegisterItem",
            RubisInteraction::AboutMe => "AboutMe",
        };
        f.write_str(name)
    }
}

/// The server component a stage executes in. Stage hops model the paper's
/// request context propagation through socket IPC (§2.1, [27 §4.1]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Front-end web server process.
    WebTier,
    /// Application server (JBoss EJB container for RUBiS).
    AppTier,
    /// Database server process.
    Database,
    /// Single-process application (web server, WeBWorK handler).
    Standalone,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::WebTier => "web-tier",
            Component::AppTier => "app-tier",
            Component::Database => "database",
            Component::Standalone => "standalone",
        };
        f.write_str(name)
    }
}

/// One behavior phase: an instruction range with a fixed inherent profile.
///
/// `end_ins` is cumulative within the enclosing stage: phase `i` covers
/// instructions `[phases[i-1].end_ins, phases[i].end_ins)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Inherent hardware behavior of this stretch of execution.
    pub profile: SegmentProfile,
    /// Cumulative instruction offset at which the phase ends.
    pub end_ins: Instructions,
}

/// A system call issued at a given instruction offset within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallEvent {
    /// Cumulative instruction offset of the call within the stage.
    pub at_ins: Instructions,
    /// Which system call.
    pub name: SyscallName,
}

/// One stage of a request: a contiguous execution within one component.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Which server component runs the stage.
    pub component: Component,
    /// Behavior phases, cumulative, non-empty, strictly increasing ends.
    pub phases: Vec<Phase>,
    /// System calls, sorted by `at_ins`.
    pub syscalls: Vec<SyscallEvent>,
}

impl Stage {
    /// Total instruction count of the stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no phases (invalid by construction).
    pub fn total_instructions(&self) -> Instructions {
        let Some(last) = self.phases.last() else {
            panic!("stage has no phases");
        };
        last.end_ins
    }

    /// The phase active at instruction offset `ins` (clamped to the last
    /// phase at or beyond the end).
    pub fn phase_at(&self, ins: Instructions) -> &Phase {
        match self.phases.binary_search_by(|p| p.end_ins.cmp(&ins)) {
            // ins == some end boundary: that phase is over; next one active.
            Ok(i) => self.phases.get(i + 1).unwrap_or(&self.phases[i]),
            Err(i) => self
                .phases
                .get(i)
                .or_else(|| self.phases.last())
                .unwrap_or_else(|| panic!("stage has no phases")),
        }
    }

    /// Checks structural invariants: non-empty, strictly increasing phase
    /// ends, sorted syscalls within bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("stage has no phases".into());
        }
        let mut prev = Instructions::ZERO;
        for (i, p) in self.phases.iter().enumerate() {
            if p.end_ins <= prev {
                return Err(format!("phase {i} end {} not increasing", p.end_ins));
            }
            p.profile.validate()?;
            prev = p.end_ins;
        }
        let total = self.total_instructions();
        let mut prev_sc = Instructions::ZERO;
        for (i, sc) in self.syscalls.iter().enumerate() {
            if i > 0 && sc.at_ins < prev_sc {
                return Err(format!("syscall {i} at {} out of order", sc.at_ins));
            }
            if sc.at_ins > total {
                return Err(format!(
                    "syscall {i} at {} beyond stage end {total}",
                    sc.at_ins
                ));
            }
            prev_sc = sc.at_ins;
        }
        Ok(())
    }
}

/// A complete request: class identity plus its stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Which application issued it.
    pub app: AppId,
    /// Application-level class (transaction type, query id, ...).
    pub class: RequestClass,
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl Request {
    /// Total instructions across all stages.
    pub fn total_instructions(&self) -> Instructions {
        self.stages.iter().map(Stage::total_instructions).sum()
    }

    /// The full ordered system call name sequence across stages (the
    /// Magpie-style software signature used by the Levenshtein measure).
    pub fn syscall_names(&self) -> Vec<SyscallName> {
        self.stages
            .iter()
            .flat_map(|s| s.syscalls.iter().map(|e| e.name))
            .collect()
    }

    /// Checks all stage invariants plus non-emptiness.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("request has no stages".into());
        }
        for (i, s) in self.stages.iter().enumerate() {
            s.validate().map_err(|e| format!("stage {i}: {e}"))?;
        }
        Ok(())
    }
}

/// A source of requests: each application model implements this.
pub trait RequestFactory {
    /// Which application this factory models.
    fn app(&self) -> AppId;

    /// Draws the next request. Implementations are deterministic given
    /// their construction-time seed.
    fn next_request(&mut self) -> Request;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SegmentProfile {
        SegmentProfile {
            base_cpi: 1.0,
            l2_refs_per_ins: 0.005,
            working_set_bytes: 1e6,
            reuse_locality: 0.8,
        }
    }

    fn stage(ends: &[u64]) -> Stage {
        Stage {
            component: Component::Standalone,
            phases: ends
                .iter()
                .map(|&e| Phase {
                    profile: profile(),
                    end_ins: Instructions::new(e),
                })
                .collect(),
            syscalls: vec![],
        }
    }

    #[test]
    fn total_instructions_is_last_phase_end() {
        let s = stage(&[100, 300, 450]);
        assert_eq!(s.total_instructions(), Instructions::new(450));
    }

    #[test]
    fn phase_at_selects_correct_phase() {
        let s = stage(&[100, 300, 450]);
        assert_eq!(s.phase_at(Instructions::new(0)).end_ins.get(), 100);
        assert_eq!(s.phase_at(Instructions::new(99)).end_ins.get(), 100);
        // Exactly at a boundary: the next phase is active.
        assert_eq!(s.phase_at(Instructions::new(100)).end_ins.get(), 300);
        assert_eq!(s.phase_at(Instructions::new(449)).end_ins.get(), 450);
        // At or past the end: clamps to last.
        assert_eq!(s.phase_at(Instructions::new(450)).end_ins.get(), 450);
        assert_eq!(s.phase_at(Instructions::new(999)).end_ins.get(), 450);
    }

    #[test]
    fn validate_catches_bad_structure() {
        let empty = Stage {
            component: Component::Standalone,
            phases: vec![],
            syscalls: vec![],
        };
        assert!(empty.validate().is_err());

        let mut s = stage(&[100, 100]);
        assert!(s.validate().is_err()); // non-increasing
        s = stage(&[100, 200]);
        assert!(s.validate().is_ok());

        s.syscalls = vec![SyscallEvent {
            at_ins: Instructions::new(300),
            name: SyscallName::Read,
        }];
        assert!(s.validate().is_err()); // beyond end

        s.syscalls = vec![
            SyscallEvent {
                at_ins: Instructions::new(50),
                name: SyscallName::Read,
            },
            SyscallEvent {
                at_ins: Instructions::new(20),
                name: SyscallName::Write,
            },
        ];
        assert!(s.validate().is_err()); // out of order
    }

    #[test]
    fn request_aggregates_stages() {
        let r = Request {
            app: AppId::Rubis,
            class: RequestClass::Rubis(RubisInteraction::ViewItem),
            stages: vec![stage(&[100]), stage(&[200]), stage(&[50])],
        };
        assert_eq!(r.total_instructions(), Instructions::new(350));
        assert!(r.validate().is_ok());

        let empty = Request {
            app: AppId::Rubis,
            class: RequestClass::Rubis(RubisInteraction::ViewItem),
            stages: vec![],
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn syscall_names_flatten_across_stages() {
        let mut s1 = stage(&[100]);
        s1.syscalls = vec![SyscallEvent {
            at_ins: Instructions::new(10),
            name: SyscallName::Accept,
        }];
        let mut s2 = stage(&[100]);
        s2.syscalls = vec![SyscallEvent {
            at_ins: Instructions::new(20),
            name: SyscallName::Writev,
        }];
        let r = Request {
            app: AppId::WebServer,
            class: RequestClass::WebFile(1),
            stages: vec![s1, s2],
        };
        assert_eq!(
            r.syscall_names(),
            vec![SyscallName::Accept, SyscallName::Writev]
        );
    }

    #[test]
    fn sampling_periods_match_paper() {
        assert_eq!(AppId::WebServer.sampling_period_micros(), 10);
        assert_eq!(AppId::Tpcc.sampling_period_micros(), 100);
        assert_eq!(AppId::Rubis.sampling_period_micros(), 100);
        assert_eq!(AppId::Tpch.sampling_period_micros(), 1_000);
        assert_eq!(AppId::Webwork.sampling_period_micros(), 1_000);
    }

    #[test]
    fn display_names() {
        assert_eq!(AppId::WebServer.to_string(), "Web server");
        assert_eq!(
            RequestClass::TpccTxn(TpccTxn::NewOrder).to_string(),
            "tpcc-new-order"
        );
        assert_eq!(RequestClass::TpchQuery(20).to_string(), "tpch-Q20");
        assert_eq!(
            RequestClass::Rubis(RubisInteraction::SearchItemsByCategory).to_string(),
            "rubis-SearchItemsByCategory"
        );
    }

    #[test]
    fn tpcc_mix_sums_to_100() {
        let total: u32 = TpccTxn::MIX.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn rubis_mix_sums_to_100() {
        let total: u32 = RubisInteraction::MIX.iter().map(|&(_, w)| w).sum();
        assert_eq!(total, 100);
    }
}
