//! Shared construction helpers for the application models.
//!
//! Each model builds requests from class *templates*: a deterministic phase
//! skeleton per request class plus per-request multiplicative jitter, so
//! requests of one class share a recognizable variation pattern (the basis
//! of the classification and signature experiments, §4) while no two
//! requests are identical.

use rand::Rng;
use rbv_mem::SegmentProfile;
use rbv_sim::{Instructions, SimRng};

use crate::request::{Component, Phase, Stage, SyscallEvent};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// Multiplies `base` by a log-normal factor with the given relative sigma
/// (sigma 0.1 ≈ ±10% typical deviation). Deterministic in `rng`.
pub fn jittered(base: f64, rel_sigma: f64, rng: &mut SimRng) -> f64 {
    if rel_sigma <= 0.0 {
        return base;
    }
    // Box-Muller normal draw; exponentiate for a log-normal multiplier.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    base * (rel_sigma * z).exp()
}

/// Like [`jittered`] but clamps the factor into `[lo, hi] * base`.
pub fn jittered_clamped(base: f64, rel_sigma: f64, lo: f64, hi: f64, rng: &mut SimRng) -> f64 {
    jittered(base, rel_sigma, rng).clamp(base * lo, base * hi)
}

/// Jitters an instruction count (at least 1).
pub fn jittered_ins(base: u64, rel_sigma: f64, rng: &mut SimRng) -> u64 {
    (jittered(base as f64, rel_sigma, rng) as u64).max(1)
}

/// Incrementally builds one [`Stage`], keeping the cumulative instruction
/// cursor and laying background syscalls into each phase.
#[derive(Debug)]
pub struct StageBuilder {
    component: Component,
    phases: Vec<Phase>,
    syscalls: Vec<SyscallEvent>,
    cursor: Instructions,
    /// Remaining instructions until the next background syscall, carried
    /// across phase boundaries so the gap process is not restarted (and
    /// its density inflated) at every phase.
    gap_carry: u64,
}

impl StageBuilder {
    /// Starts an empty stage for `component`.
    pub fn new(component: Component) -> StageBuilder {
        StageBuilder {
            component,
            phases: Vec::new(),
            syscalls: Vec::new(),
            cursor: Instructions::ZERO,
            gap_carry: 0,
        }
    }

    /// Current cumulative instruction offset.
    pub fn cursor(&self) -> Instructions {
        self.cursor
    }

    /// Appends a phase of `ins` instructions with the given inherent
    /// profile. `entry` places a syscall exactly at the phase start (a
    /// behavior transition signal, §3.2); `background` lays additional
    /// calls through the phase body from a gap process and name mix.
    ///
    /// Zero-length phases are skipped silently (jitter can round down).
    pub fn phase(
        &mut self,
        profile: SegmentProfile,
        ins: u64,
        entry: Option<SyscallName>,
        background: Option<(&GapProcess, &SyscallMix)>,
        rng: &mut SimRng,
    ) -> &mut StageBuilder {
        if ins == 0 {
            return self;
        }
        if let Some(name) = entry {
            self.syscalls.push(SyscallEvent {
                at_ins: self.cursor,
                name,
            });
        }
        if let Some((gaps, mix)) = background {
            let start = self.cursor;
            let mut pos = self.gap_carry;
            while pos < ins {
                self.syscalls.push(SyscallEvent {
                    at_ins: start + Instructions::new(pos),
                    name: mix.draw(rng),
                });
                pos += gaps.draw(rng).get();
            }
            self.gap_carry = pos - ins;
        }
        self.cursor += Instructions::new(ins);
        self.phases.push(Phase {
            profile,
            end_ins: self.cursor,
        });
        self
    }

    /// Finishes the stage.
    ///
    /// # Panics
    ///
    /// Panics if no phase was added (a stage must execute something) or an
    /// internal invariant broke — both programming errors in a model.
    pub fn finish(self) -> Stage {
        let stage = Stage {
            component: self.component,
            phases: self.phases,
            syscalls: self.syscalls,
        };
        if let Err(e) = stage.validate() {
            panic!("model produced an invalid stage: {e}");
        }
        stage
    }
}

/// Shorthand for building a [`SegmentProfile`] with jitter applied to the
/// base CPI and reference intensity (the two axes dynamic behavior shows up
/// on), leaving working set and locality at their template values.
pub fn profile(
    base_cpi: f64,
    l2_refs_per_ins: f64,
    working_set_bytes: f64,
    reuse_locality: f64,
    jitter_sigma: f64,
    rng: &mut SimRng,
) -> SegmentProfile {
    SegmentProfile {
        base_cpi: jittered_clamped(base_cpi, jitter_sigma, 0.6, 1.8, rng).max(0.2),
        l2_refs_per_ins: jittered_clamped(l2_refs_per_ins, jitter_sigma, 0.5, 2.0, rng).max(0.0),
        working_set_bytes,
        reuse_locality: reuse_locality.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(cpi: f64) -> SegmentProfile {
        SegmentProfile {
            base_cpi: cpi,
            l2_refs_per_ins: 0.001,
            working_set_bytes: 1e5,
            reuse_locality: 0.9,
        }
    }

    #[test]
    fn jitter_centers_on_base() {
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| jittered(10.0, 0.1, &mut rng)).sum::<f64>() / n as f64;
        // Log-normal mean is base * exp(sigma^2/2) ≈ 10.05.
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = SimRng::seed_from(2);
        assert_eq!(jittered(7.5, 0.0, &mut rng), 7.5);
    }

    #[test]
    fn clamped_jitter_stays_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1_000 {
            let v = jittered_clamped(10.0, 0.8, 0.5, 2.0, &mut rng);
            assert!((5.0..=20.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn jittered_ins_never_zero() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1_000 {
            assert!(jittered_ins(1, 1.0, &mut rng) >= 1);
        }
    }

    #[test]
    fn builder_accumulates_phases() {
        let mut rng = SimRng::seed_from(5);
        let mut b = StageBuilder::new(Component::Standalone);
        b.phase(flat(1.0), 100, None, None, &mut rng);
        b.phase(flat(2.0), 200, None, None, &mut rng);
        assert_eq!(b.cursor(), Instructions::new(300));
        let s = b.finish();
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.total_instructions(), Instructions::new(300));
    }

    #[test]
    fn builder_places_entry_syscall_at_phase_start() {
        let mut rng = SimRng::seed_from(6);
        let mut b = StageBuilder::new(Component::Standalone);
        b.phase(flat(1.0), 100, None, None, &mut rng);
        b.phase(flat(3.0), 50, Some(SyscallName::Writev), None, &mut rng);
        let s = b.finish();
        assert_eq!(s.syscalls.len(), 1);
        assert_eq!(s.syscalls[0].at_ins, Instructions::new(100));
        assert_eq!(s.syscalls[0].name, SyscallName::Writev);
    }

    #[test]
    fn builder_lays_background_syscalls_within_phase() {
        let mut rng = SimRng::seed_from(7);
        let gaps = GapProcess::exponential(1_000.0);
        let mix = SyscallMix::new(&[(SyscallName::Pread, 1)]);
        let mut b = StageBuilder::new(Component::Database);
        b.phase(flat(1.0), 50_000, None, Some((&gaps, &mix)), &mut rng);
        let s = b.finish();
        assert!(s.syscalls.len() > 10);
        assert!(s
            .syscalls
            .iter()
            .all(|e| e.at_ins < Instructions::new(50_000)));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn builder_skips_zero_length_phases() {
        let mut rng = SimRng::seed_from(8);
        let mut b = StageBuilder::new(Component::Standalone);
        b.phase(flat(1.0), 0, Some(SyscallName::Read), None, &mut rng);
        b.phase(flat(1.0), 10, None, None, &mut rng);
        let s = b.finish();
        assert_eq!(s.phases.len(), 1);
        assert!(s.syscalls.is_empty(), "entry of skipped phase dropped");
    }

    #[test]
    #[should_panic(expected = "invalid stage")]
    fn empty_stage_panics_on_finish() {
        StageBuilder::new(Component::Standalone).finish();
    }

    #[test]
    fn profile_helper_respects_ranges() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..500 {
            let p = profile(1.5, 0.01, 1e6, 0.8, 0.3, &mut rng);
            assert!(p.validate().is_ok());
            assert!(p.base_cpi >= 1.5 * 0.6 && p.base_cpi <= 1.5 * 1.8);
        }
    }
}
