//! TPC-C order-entry transactions on MySQL/InnoDB (§2.1).
//!
//! Five transaction types at the benchmark's 45/43/4/4/4 mix. Each type has
//! a distinct phase skeleton — B-tree index lookups, row updates, a log
//! write, commit — which gives the application its *multimodal* per-request
//! CPI distribution (Figure 1: "multiple clusters due to several
//! distinctive transaction types"). Calibration anchors:
//!
//! * a "new order" transaction runs ~1.4 M instructions (Figure 6) while
//!   "delivery" runs ~4 M (Figure 2, with its 10-district loop visible as
//!   a periodic CPI pattern);
//! * system-call-free stretches are long but ~82% of instants see a call
//!   within 1 ms (Figure 4) — the gap process mixes a chatty component
//!   with multi-million-instruction quiet stretches.

use rand::Rng;
use rbv_sim::SimRng;

use crate::builder::{jittered, jittered_ins, profile, StageBuilder};
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory, TpccTxn};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// Request generator for the TPC-C model.
#[derive(Debug)]
pub struct Tpcc {
    rng: SimRng,
    scale: f64,
    chatty_mix: SyscallMix,
}

impl Tpcc {
    /// Creates the generator; `scale` multiplies instruction counts.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> Tpcc {
        assert!(scale > 0.0, "scale must be positive");
        Tpcc {
            rng: SimRng::seed_from(seed ^ 0x7bcc),
            scale,
            chatty_mix: SyscallMix::new(&[
                (SyscallName::Pread, 4),
                (SyscallName::Futex, 3),
                (SyscallName::Gettimeofday, 2),
                (SyscallName::Lseek, 1),
            ]),
        }
    }

    fn draw_txn(&mut self) -> TpccTxn {
        let mut pick = self.rng.gen_range(0..100u32);
        for &(t, w) in &TpccTxn::MIX {
            if pick < w {
                return t;
            }
            pick -= w;
        }
        unreachable!()
    }

    /// Builds a request of a specific transaction type.
    pub fn request_of_txn(&mut self, txn: TpccTxn) -> Request {
        let s = self.scale;
        // Quiet compute stretches dominate; occasional chatty bursts.
        let gaps = GapProcess {
            short_mean_ins: 30_000.0 * s.max(0.02),
            long_mean_ins: 1_000_000.0 * s.max(0.02),
            short_weight: 0.35,
        };
        let mix = self.chatty_mix.clone();
        let rng = &mut self.rng;
        let mut b = StageBuilder::new(Component::Database);

        let ins = |base: f64, rng: &mut SimRng| jittered_ins((base * s) as u64 + 1, 0.12, rng);

        // Receive + parse the transaction.
        b.phase(
            profile(1.3, 0.005, 256e3, 0.85, 0.10, rng),
            ins(35_000.0, rng),
            Some(SyscallName::Recvfrom),
            None,
            rng,
        );

        match txn {
            TpccTxn::NewOrder => {
                // ~8 order lines: index lookup + row insert each.
                let lines = rng.gen_range(6..=10);
                for _ in 0..lines {
                    // Occasional cold lookup with a big uncached footprint:
                    // the source of the Figure 6 CPI peaks.
                    let cold = rng.gen::<f64>() < 0.15;
                    let (ws, loc) = if cold { (16e6, 0.45) } else { (3e6, 0.78) };
                    b.phase(
                        profile(1.5, 0.008, ws, loc, 0.15, rng),
                        ins(85_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                    b.phase(
                        profile(1.35, 0.011, 2e6, 0.72, 0.15, rng),
                        ins(60_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                }
            }
            TpccTxn::Payment => {
                for _ in 0..3 {
                    b.phase(
                        profile(1.5, 0.008, 3e6, 0.77, 0.15, rng),
                        ins(85_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                    b.phase(
                        profile(1.3, 0.010, 2e6, 0.72, 0.15, rng),
                        ins(75_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                }
            }
            TpccTxn::OrderStatus => {
                // Read-only: light lookups, the low-CPI cluster.
                for _ in 0..4 {
                    b.phase(
                        profile(1.2, 0.006, 2e6, 0.84, 0.12, rng),
                        ins(115_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                }
            }
            TpccTxn::Delivery => {
                // 10 districts: the periodic lookup/update pattern of Fig 2.
                for _ in 0..10 {
                    b.phase(
                        profile(1.55, 0.009, 4e6, 0.72, 0.15, rng),
                        ins(150_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                    b.phase(
                        profile(1.35, 0.010, 2.5e6, 0.70, 0.15, rng),
                        ins(220_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                }
            }
            TpccTxn::StockLevel => {
                // Join-like scan over recent orders: the high-CPI cluster.
                for _ in 0..4 {
                    b.phase(
                        profile(1.5, 0.007, 12e6, 0.60, 0.12, rng),
                        ins(650_000.0, rng),
                        None,
                        Some((&gaps, &mix)),
                        rng,
                    );
                }
            }
        }

        if txn != TpccTxn::OrderStatus && txn != TpccTxn::StockLevel {
            // Redo-log write + fsync for updating transactions.
            b.phase(
                profile(1.0, 0.007, 128e3, 0.90, 0.10, rng),
                ins(50_000.0, rng),
                Some(SyscallName::Pwrite),
                None,
                rng,
            );
            b.phase(
                profile(1.1, 0.004, 64e3, 0.92, 0.10, rng),
                ins(20_000.0, rng),
                Some(SyscallName::Fsync),
                None,
                rng,
            );
        }

        // Commit + reply to the terminal.
        b.phase(
            profile(jittered(1.2, 0.05, rng), 0.005, 128e3, 0.88, 0.10, rng),
            ins(35_000.0, rng),
            Some(SyscallName::Sendto),
            None,
            rng,
        );

        Request {
            app: AppId::Tpcc,
            class: RequestClass::TpccTxn(txn),
            stages: vec![b.finish()],
        }
    }
}

impl RequestFactory for Tpcc {
    fn app(&self) -> AppId {
        AppId::Tpcc
    }

    fn next_request(&mut self) -> Request {
        let txn = self.draw_txn();
        self.request_of_txn(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_valid() {
        let mut t = Tpcc::new(1, 1.0);
        for _ in 0..40 {
            assert!(t.next_request().validate().is_ok());
        }
    }

    #[test]
    fn new_order_length_near_1_4m() {
        let mut t = Tpcc::new(2, 1.0);
        let mean = (0..50)
            .map(|_| {
                t.request_of_txn(TpccTxn::NewOrder)
                    .total_instructions()
                    .get()
            })
            .sum::<u64>() as f64
            / 50.0;
        assert!(
            (1_000_000.0..1_800_000.0).contains(&mean),
            "new-order mean {mean}"
        );
    }

    #[test]
    fn delivery_length_near_4m() {
        let mut t = Tpcc::new(3, 1.0);
        let mean = (0..30)
            .map(|_| {
                t.request_of_txn(TpccTxn::Delivery)
                    .total_instructions()
                    .get()
            })
            .sum::<u64>() as f64
            / 30.0;
        assert!(
            (3_000_000.0..5_000_000.0).contains(&mean),
            "delivery mean {mean}"
        );
    }

    #[test]
    fn mix_matches_tpcc_spec() {
        let mut t = Tpcc::new(4, 0.05);
        let mut new_order = 0;
        let mut payment = 0;
        let n = 3_000;
        for _ in 0..n {
            match t.next_request().class {
                RequestClass::TpccTxn(TpccTxn::NewOrder) => new_order += 1,
                RequestClass::TpccTxn(TpccTxn::Payment) => payment += 1,
                RequestClass::TpccTxn(_) => {}
                other => panic!("unexpected class {other}"),
            }
        }
        assert!((1_200..1_500).contains(&new_order), "new-order {new_order}");
        assert!((1_150..1_450).contains(&payment), "payment {payment}");
    }

    #[test]
    fn delivery_has_periodic_phase_structure() {
        let mut t = Tpcc::new(5, 1.0);
        let r = t.request_of_txn(TpccTxn::Delivery);
        // parse + 10 * (lookup, update) + log + fsync + reply = 24 phases.
        assert_eq!(r.stages[0].phases.len(), 24);
    }

    #[test]
    fn read_only_txns_skip_the_log() {
        let mut t = Tpcc::new(6, 1.0);
        let r = t.request_of_txn(TpccTxn::OrderStatus);
        let names = r.syscall_names();
        assert!(!names.contains(&SyscallName::Fsync));
        let w = t.request_of_txn(TpccTxn::Payment);
        assert!(w.syscall_names().contains(&SyscallName::Fsync));
    }

    #[test]
    fn txn_types_have_distinct_mean_base_cpi() {
        // The multimodal CPI clusters of Figure 1 require distinct
        // instruction-weighted inherent CPIs per type.
        let mut t = Tpcc::new(7, 1.0);
        let mean_cpi = |t: &mut Tpcc, txn: TpccTxn| {
            let mut cyc = 0.0;
            let mut ins = 0.0;
            for _ in 0..20 {
                let r = t.request_of_txn(txn);
                let mut prev = 0u64;
                for p in &r.stages[0].phases {
                    let len = (p.end_ins.get() - prev) as f64;
                    cyc += len * p.profile.base_cpi;
                    ins += len;
                    prev = p.end_ins.get();
                }
            }
            cyc / ins
        };
        let status = mean_cpi(&mut t, TpccTxn::OrderStatus);
        let new_order = mean_cpi(&mut t, TpccTxn::NewOrder);
        let stock = mean_cpi(&mut t, TpccTxn::StockLevel);
        assert!(status < new_order, "status {status} new_order {new_order}");
        assert!(new_order < stock + 0.3, "some separation expected");
    }

    #[test]
    fn long_syscall_free_stretches_exist() {
        // Figure 4: TPCC exhibits long system-call-free executions.
        let mut t = Tpcc::new(8, 1.0);
        let r = t.request_of_txn(TpccTxn::Delivery);
        let sc = &r.stages[0].syscalls;
        let max_gap = sc
            .windows(2)
            .map(|w| w[1].at_ins.get() - w[0].at_ins.get())
            .max()
            .unwrap_or(0);
        assert!(max_gap > 200_000, "max gap {max_gap}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Tpcc::new(9, 1.0);
        let mut b = Tpcc::new(9, 1.0);
        assert_eq!(a.next_request(), b.next_request());
    }
}
