//! Statistical workload models of the paper's five server applications
//! (§2.1) plus the Table 1 microbenchmarks.
//!
//! Each model emits [`Request`]s — sequences of [`Stage`]s (one per server
//! component the request propagates through) made of behavior [`Phase`]s
//! with inherent [`SegmentProfile`]s and pre-drawn system call streams.
//! How a phase *performs* is decided later by the contention model in
//! `rbv-mem` given its co-runners; the models here only fix the inherent
//! behavior, calibrated against every quantitative anchor the paper
//! publishes (request lengths, CPI clusters, syscall-gap distributions,
//! transaction mixes, transition-signal phase layout).
//!
//! | Model | Paper workload | Key reproduced traits |
//! |---|---|---|
//! | [`WebServer`] | Apache + SPECweb99 static | 4 file classes, writev CPI spike, syscall-dense |
//! | [`Tpcc`] | TPC-C on MySQL/InnoDB | 45/43/4/4/4 mix, multimodal CPI, long quiet stretches |
//! | [`Tpch`] | TPC-H 17-query subset | few uniform phases, streaming scans, Q20 ≈ 80 M ins |
//! | [`Rubis`] | RUBiS on JBoss + MySQL | 3 stages over socket IPC, componentized EJB phases |
//! | [`Webwork`] | WeBWorK + Moodle | ~600 M-ins requests, identical prefix, unstable tail |
//! | [`Mbench`] | Mbench-Spin / Mbench-Data | observer-effect extremes for Table 1 |
//!
//! # Example
//!
//! ```
//! use rbv_workloads::{RequestFactory, Tpcc};
//!
//! let mut factory = Tpcc::new(42, 1.0);
//! let request = factory.next_request();
//! assert!(request.validate().is_ok());
//! assert!(request.total_instructions().get() > 100_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod builder;
pub mod mbench;
pub mod request;
pub mod rubis;
pub mod syscalls;
pub mod tpcc;
pub mod tpch;
pub mod web;
pub mod webwork;

pub use mbench::Mbench;
pub use request::{
    AppId, Component, Phase, Request, RequestClass, RequestFactory, RubisInteraction, Stage,
    SyscallEvent, TpccTxn,
};
pub use rubis::Rubis;
pub use syscalls::{GapProcess, SyscallMix, SyscallName};
pub use tpcc::Tpcc;
pub use tpch::Tpch;
pub use web::WebServer;
pub use webwork::Webwork;

pub use rbv_mem::SegmentProfile;

/// Builds the standard factory for an application at a given seed/scale.
///
/// Microbenchmark iterations default to 1 M instructions.
pub fn factory_for(app: AppId, seed: u64, scale: f64) -> Box<dyn RequestFactory + Send> {
    match app {
        AppId::WebServer => Box::new(WebServer::new(seed, scale)),
        AppId::Tpcc => Box::new(Tpcc::new(seed, scale)),
        AppId::Tpch => Box::new(Tpch::new(seed, scale)),
        AppId::Rubis => Box::new(Rubis::new(seed, scale)),
        AppId::Webwork => Box::new(Webwork::new(seed, scale)),
        AppId::MbenchSpin => Box::new(Mbench::spin((1e6 * scale) as u64 + 1)),
        AppId::MbenchData => Box::new(Mbench::data((1e6 * scale) as u64 + 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_for_builds_every_app() {
        for app in AppId::SERVER_APPS {
            let mut f = factory_for(app, 1, 0.02);
            assert_eq!(f.app(), app);
            assert!(f.next_request().validate().is_ok());
        }
        assert!(factory_for(AppId::MbenchSpin, 1, 1.0)
            .next_request()
            .validate()
            .is_ok());
    }
}
