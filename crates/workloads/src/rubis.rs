//! RUBiS three-tier online auction service (§2.1).
//!
//! RUBiS runs a front-end web server, nine EJB business-logic components on
//! JBoss, and a MySQL back-end. A request *propagates across components*
//! through socket IPC — the paper's request-context tracking follows it —
//! so our requests have three [`Stage`]s joined by `sendto`/`recvfrom`
//! pairs. The componentized EJB tier executes many fine-grained phases,
//! which (with the frequent socket calls) makes RUBiS both syscall-dense
//! (72% of instants see a call within 16 µs, Figure 4) and strongly
//! variable within a request (Figure 3).
//!
//! [`Stage`]: crate::request::Stage

use rand::Rng;
use rbv_sim::SimRng;

use crate::builder::{jittered_ins, profile, StageBuilder};
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory, RubisInteraction};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// Per-interaction template: (EJB phase count, EJB phase mean instructions,
/// DB phase count, DB phase mean instructions, has a scan-ish DB phase).
fn template(i: RubisInteraction) -> (usize, f64, usize, f64, bool) {
    use RubisInteraction::*;
    match i {
        BrowseCategories => (5, 110e3, 2, 120e3, false),
        SearchItemsByCategory => (9, 140e3, 4, 260e3, true),
        ViewItem => (7, 120e3, 3, 150e3, false),
        ViewUserInfo => (6, 130e3, 3, 170e3, false),
        PlaceBid => (8, 120e3, 4, 160e3, false),
        PutComment => (7, 130e3, 3, 180e3, false),
        RegisterItem => (9, 140e3, 4, 190e3, false),
        AboutMe => (11, 140e3, 5, 200e3, true),
    }
}

/// Request generator for the RUBiS model.
#[derive(Debug)]
pub struct Rubis {
    rng: SimRng,
    scale: f64,
    web_mix: SyscallMix,
    ejb_mix: SyscallMix,
    db_mix: SyscallMix,
}

impl Rubis {
    /// Creates the generator; `scale` multiplies instruction counts.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> Rubis {
        assert!(scale > 0.0, "scale must be positive");
        Rubis {
            rng: SimRng::seed_from(seed ^ 0x4b15),
            scale,
            web_mix: SyscallMix::new(&[
                (SyscallName::Read, 4),
                (SyscallName::Write, 3),
                (SyscallName::Poll, 2),
                (SyscallName::Gettimeofday, 1),
            ]),
            ejb_mix: SyscallMix::new(&[
                (SyscallName::Futex, 5),
                (SyscallName::Read, 2),
                (SyscallName::Write, 2),
                (SyscallName::Mmap, 1),
                (SyscallName::Gettimeofday, 2),
            ]),
            db_mix: SyscallMix::new(&[
                (SyscallName::Pread, 5),
                (SyscallName::Futex, 2),
                (SyscallName::Lseek, 1),
                (SyscallName::Gettimeofday, 1),
            ]),
        }
    }

    fn draw_interaction(&mut self) -> RubisInteraction {
        let mut pick = self.rng.gen_range(0..100u32);
        for &(i, w) in &RubisInteraction::MIX {
            if pick < w {
                return i;
            }
            pick -= w;
        }
        unreachable!()
    }

    /// Builds a request for a specific interaction.
    pub fn request_of_interaction(&mut self, interaction: RubisInteraction) -> Request {
        let (ejb_n, ejb_len, db_n, db_len, has_scan) = template(interaction);
        let s = self.scale;
        let gaps = GapProcess::exponential(12_000.0 * s.max(0.02));
        let (web_mix, ejb_mix, db_mix) = (
            self.web_mix.clone(),
            self.ejb_mix.clone(),
            self.db_mix.clone(),
        );
        let rng = &mut self.rng;

        // Stage 1: Apache front end — parse, route, proxy to JBoss.
        let mut web = StageBuilder::new(Component::WebTier);
        web.phase(
            profile(1.7, 0.004, 256e3, 0.88, 0.12, rng),
            jittered_ins((90e3 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Accept),
            Some((&gaps, &web_mix)),
            rng,
        );
        web.phase(
            profile(1.4, 0.005, 128e3, 0.88, 0.12, rng),
            jittered_ins((60e3 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Sendto), // hands off to the EJB tier
            Some((&gaps, &web_mix)),
            rng,
        );

        // Stage 2: JBoss EJB container — many fine-grained component
        // phases with Java-typical heap churn.
        let mut ejb = StageBuilder::new(Component::AppTier);
        let mut first = true;
        for k in 0..ejb_n {
            // Distinct per-component inherent behavior, deterministic in
            // the interaction template position.
            let mut crng = SimRng::seed_from(0x4b15_0000 + (interaction as u64) * 64 + k as u64);
            let base = crng.gen_range(1.4..2.2);
            let refs = crng.gen_range(0.004..0.009);
            let ws = crng.gen_range(2e6..10e6);
            let loc = crng.gen_range(0.70..0.85);
            ejb.phase(
                profile(base, refs, ws, loc, 0.12, rng),
                jittered_ins(
                    (ejb_len * s * crng.gen_range(0.5..1.6)) as u64 + 1,
                    0.15,
                    rng,
                ),
                first.then_some(SyscallName::Recvfrom),
                Some((&gaps, &ejb_mix)),
                rng,
            );
            first = false;
        }
        ejb.phase(
            profile(1.3, 0.005, 512e3, 0.9, 0.10, rng),
            jittered_ins((40e3 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Sendto), // query the database
            None,
            rng,
        );

        // Stage 3: MySQL back end.
        let mut db = StageBuilder::new(Component::Database);
        let mut first = true;
        for k in 0..db_n {
            let scan_phase = has_scan && k == db_n - 1;
            let (base, refs, ws, loc) = if scan_phase {
                (1.4, 0.007, 40e6, 0.45)
            } else {
                (1.5, 0.006, 3e6, 0.80)
            };
            db.phase(
                profile(base, refs, ws, loc, 0.14, rng),
                jittered_ins((db_len * s) as u64 + 1, 0.18, rng),
                first.then_some(SyscallName::Recvfrom),
                Some((&gaps, &db_mix)),
                rng,
            );
            first = false;
        }
        db.phase(
            profile(1.2, 0.005, 256e3, 0.88, 0.10, rng),
            jittered_ins((30e3 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Sendto), // result set back up the tiers
            None,
            rng,
        );

        Request {
            app: AppId::Rubis,
            class: RequestClass::Rubis(interaction),
            stages: vec![web.finish(), ejb.finish(), db.finish()],
        }
    }
}

impl RequestFactory for Rubis {
    fn app(&self) -> AppId {
        AppId::Rubis
    }

    fn next_request(&mut self) -> Request {
        let i = self.draw_interaction();
        self.request_of_interaction(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_valid_and_three_stage() {
        let mut r = Rubis::new(1, 1.0);
        for _ in 0..30 {
            let req = r.next_request();
            assert!(req.validate().is_ok());
            assert_eq!(req.stages.len(), 3);
            assert_eq!(req.stages[0].component, Component::WebTier);
            assert_eq!(req.stages[1].component, Component::AppTier);
            assert_eq!(req.stages[2].component, Component::Database);
        }
    }

    #[test]
    fn stage_hops_use_socket_ops() {
        let mut r = Rubis::new(2, 1.0);
        let req = r.request_of_interaction(RubisInteraction::ViewItem);
        for stage in &req.stages {
            let names: Vec<_> = stage.syscalls.iter().map(|e| e.name).collect();
            assert!(
                names.contains(&SyscallName::Sendto)
                    || names.contains(&SyscallName::Recvfrom)
                    || names.contains(&SyscallName::Accept),
                "stage lacks socket ops: {names:?}"
            );
        }
    }

    #[test]
    fn request_length_is_millions_of_instructions() {
        // Figure 2's SearchItemsByCategory example spans ~4-5 M instructions.
        let mut r = Rubis::new(3, 1.0);
        let mean = (0..30)
            .map(|_| {
                r.request_of_interaction(RubisInteraction::SearchItemsByCategory)
                    .total_instructions()
                    .get()
            })
            .sum::<u64>() as f64
            / 30.0;
        assert!(
            (2_000_000.0..7_000_000.0).contains(&mean),
            "mean length {mean}"
        );
    }

    #[test]
    fn ejb_tier_dominates_instruction_count() {
        let mut r = Rubis::new(4, 1.0);
        let req = r.request_of_interaction(RubisInteraction::ViewItem);
        let ejb = req.stages[1].total_instructions().get();
        let web = req.stages[0].total_instructions().get();
        assert!(ejb > web * 2, "ejb {ejb} web {web}");
    }

    #[test]
    fn ejb_phases_vary_in_inherent_behavior() {
        // Componentized execution => strong intra-request variation.
        let mut r = Rubis::new(5, 1.0);
        let req = r.request_of_interaction(RubisInteraction::AboutMe);
        let cpis: Vec<f64> = req.stages[1]
            .phases
            .iter()
            .map(|p| p.profile.base_cpi)
            .collect();
        let min = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cpis.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.25, "phase CPIs too uniform: {cpis:?}");
    }

    #[test]
    fn interaction_mix_favors_browsing() {
        let mut r = Rubis::new(6, 0.05);
        let mut search = 0;
        let n = 2_000;
        for _ in 0..n {
            if let RequestClass::Rubis(RubisInteraction::SearchItemsByCategory) =
                r.next_request().class
            {
                search += 1;
            }
        }
        assert!((380..620).contains(&search), "search {search}");
    }

    #[test]
    fn syscalls_are_frequent() {
        let mut r = Rubis::new(7, 1.0);
        let req = r.request_of_interaction(RubisInteraction::ViewItem);
        let mean_gap = req.total_instructions().get() / (req.syscall_names().len().max(1) as u64);
        assert!(mean_gap < 35_000, "mean gap {mean_gap}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rubis::new(8, 1.0);
        let mut b = Rubis::new(8, 1.0);
        assert_eq!(a.next_request(), b.next_request());
    }
}
