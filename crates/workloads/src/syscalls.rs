//! System call names, mixes, and gap processes.
//!
//! The paper exploits frequent system calls in server applications for
//! low-cost in-kernel counter sampling (§3.2). What matters to that
//! machinery is (a) *when* system calls occur — the next-syscall distance
//! distributions of Figure 4 — and (b) *which* call occurs, since call
//! names act as behavior transition signals (Table 2). This module provides
//! the name vocabulary, weighted name mixes, and the gap-drawing helpers
//! the application models use to lay syscalls into their stages.

use rand::Rng;
use rbv_sim::{Instructions, SimRng};

/// The system call vocabulary used by the five applications.
///
/// The subset is taken from the calls the paper names (Table 2: `writev`,
/// `lseek`, `stat`, `poll`, `shutdown`, `read`, `open`, `write`) plus the
/// socket and synchronization calls a multi-tier server inevitably issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the syscall names themselves
pub enum SyscallName {
    Read,
    Write,
    Writev,
    Open,
    Close,
    Stat,
    Lseek,
    Poll,
    Select,
    Shutdown,
    Accept,
    Sendto,
    Recvfrom,
    Pread,
    Pwrite,
    Fsync,
    Mmap,
    Brk,
    Futex,
    Gettimeofday,
}

impl SyscallName {
    /// All names, for exhaustive iteration in tests and training tables.
    pub const ALL: [SyscallName; 20] = [
        SyscallName::Read,
        SyscallName::Write,
        SyscallName::Writev,
        SyscallName::Open,
        SyscallName::Close,
        SyscallName::Stat,
        SyscallName::Lseek,
        SyscallName::Poll,
        SyscallName::Select,
        SyscallName::Shutdown,
        SyscallName::Accept,
        SyscallName::Sendto,
        SyscallName::Recvfrom,
        SyscallName::Pread,
        SyscallName::Pwrite,
        SyscallName::Fsync,
        SyscallName::Mmap,
        SyscallName::Brk,
        SyscallName::Futex,
        SyscallName::Gettimeofday,
    ];

    /// True for the socket operations that propagate a request context to
    /// another component in a multi-stage server ([27 §4.1]).
    pub fn is_socket_op(self) -> bool {
        matches!(
            self,
            SyscallName::Sendto
                | SyscallName::Recvfrom
                | SyscallName::Accept
                | SyscallName::Shutdown
        )
    }
}

impl std::fmt::Display for SyscallName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SyscallName::Read => "read",
            SyscallName::Write => "write",
            SyscallName::Writev => "writev",
            SyscallName::Open => "open",
            SyscallName::Close => "close",
            SyscallName::Stat => "stat",
            SyscallName::Lseek => "lseek",
            SyscallName::Poll => "poll",
            SyscallName::Select => "select",
            SyscallName::Shutdown => "shutdown",
            SyscallName::Accept => "accept",
            SyscallName::Sendto => "sendto",
            SyscallName::Recvfrom => "recvfrom",
            SyscallName::Pread => "pread",
            SyscallName::Pwrite => "pwrite",
            SyscallName::Fsync => "fsync",
            SyscallName::Mmap => "mmap",
            SyscallName::Brk => "brk",
            SyscallName::Futex => "futex",
            SyscallName::Gettimeofday => "gettimeofday",
        };
        f.write_str(name)
    }
}

/// A weighted mix of system call names for drawing background calls.
#[derive(Debug, Clone)]
pub struct SyscallMix {
    entries: Vec<(SyscallName, u32)>,
    total: u32,
}

impl SyscallMix {
    /// Builds a mix from `(name, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no entry has positive weight.
    pub fn new(entries: &[(SyscallName, u32)]) -> SyscallMix {
        let entries: Vec<_> = entries.iter().copied().filter(|&(_, w)| w > 0).collect();
        let total = entries.iter().map(|&(_, w)| w).sum();
        assert!(total > 0, "syscall mix needs positive total weight");
        SyscallMix { entries, total }
    }

    /// Draws one name according to the weights.
    pub fn draw(&self, rng: &mut SimRng) -> SyscallName {
        let mut pick = rng.gen_range(0..self.total);
        for &(name, w) in &self.entries {
            if pick < w {
                return name;
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Draws syscall gap lengths in instructions.
///
/// Server phases alternate between I/O-chatty stretches (short,
/// exponential-ish gaps) and compute stretches (no calls at all); the
/// mixture below covers both with two exponentials, which reproduces the
/// knee shapes of Figure 4.
#[derive(Debug, Clone, Copy)]
pub struct GapProcess {
    /// Mean gap of the frequent component, instructions.
    pub short_mean_ins: f64,
    /// Mean gap of the rare/long component, instructions.
    pub long_mean_ins: f64,
    /// Probability of drawing from the short component, in [0, 1].
    pub short_weight: f64,
}

impl GapProcess {
    /// A single-exponential process with the given mean gap.
    pub fn exponential(mean_ins: f64) -> GapProcess {
        GapProcess {
            short_mean_ins: mean_ins,
            long_mean_ins: mean_ins,
            short_weight: 1.0,
        }
    }

    /// Draws one gap (at least 1 instruction).
    ///
    /// # Panics
    ///
    /// Panics if means are not positive or the weight is out of range
    /// (debug builds).
    pub fn draw(&self, rng: &mut SimRng) -> Instructions {
        debug_assert!(self.short_mean_ins > 0.0 && self.long_mean_ins > 0.0);
        debug_assert!((0.0..=1.0).contains(&self.short_weight));
        let mean = if rng.gen::<f64>() < self.short_weight {
            self.short_mean_ins
        } else {
            self.long_mean_ins
        };
        // Inverse-CDF exponential draw.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = -mean * u.ln();
        Instructions::new(gap.max(1.0) as u64)
    }

    /// Lays out syscall offsets over `[0, total)` instructions.
    pub fn lay_out(
        &self,
        total: Instructions,
        mix: &SyscallMix,
        rng: &mut SimRng,
    ) -> Vec<(Instructions, SyscallName)> {
        let mut out = Vec::new();
        let mut at = Instructions::ZERO;
        loop {
            at += self.draw(rng);
            if at >= total {
                break;
            }
            out.push((at, mix.draw(rng)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_draws_only_listed_names() {
        let mix = SyscallMix::new(&[(SyscallName::Read, 3), (SyscallName::Write, 1)]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            let n = mix.draw(&mut rng);
            assert!(n == SyscallName::Read || n == SyscallName::Write);
        }
    }

    #[test]
    fn mix_respects_weights() {
        let mix = SyscallMix::new(&[(SyscallName::Read, 9), (SyscallName::Write, 1)]);
        let mut rng = SimRng::seed_from(2);
        let reads = (0..10_000)
            .filter(|_| mix.draw(&mut rng) == SyscallName::Read)
            .count();
        assert!((8_700..9_300).contains(&reads), "reads {reads}");
    }

    #[test]
    fn mix_skips_zero_weights() {
        let mix = SyscallMix::new(&[(SyscallName::Read, 0), (SyscallName::Poll, 5)]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..50 {
            assert_eq!(mix.draw(&mut rng), SyscallName::Poll);
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        SyscallMix::new(&[(SyscallName::Read, 0)]);
    }

    #[test]
    fn exponential_gap_mean_is_right() {
        let g = GapProcess::exponential(10_000.0);
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| g.draw(&mut rng).get()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10_000.0).abs() < 300.0, "mean {mean}");
    }

    #[test]
    fn mixture_produces_heavy_tail() {
        let g = GapProcess {
            short_mean_ins: 1_000.0,
            long_mean_ins: 1_000_000.0,
            short_weight: 0.9,
        };
        let mut rng = SimRng::seed_from(5);
        let gaps: Vec<u64> = (0..10_000).map(|_| g.draw(&mut rng).get()).collect();
        let long = gaps.iter().filter(|&&x| x > 100_000).count();
        // ~10% of draws come from the long component.
        assert!((500..2_000).contains(&long), "long gaps {long}");
    }

    #[test]
    fn lay_out_is_sorted_and_in_bounds() {
        let g = GapProcess::exponential(5_000.0);
        let mix = SyscallMix::new(&[(SyscallName::Pread, 1)]);
        let mut rng = SimRng::seed_from(6);
        let total = Instructions::new(200_000);
        let events = g.lay_out(total, &mix, &mut rng);
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(events.iter().all(|&(at, _)| at < total));
    }

    #[test]
    fn socket_ops_classified() {
        assert!(SyscallName::Sendto.is_socket_op());
        assert!(SyscallName::Accept.is_socket_op());
        assert!(!SyscallName::Writev.is_socket_op());
        assert!(!SyscallName::Pread.is_socket_op());
    }

    #[test]
    fn display_matches_linux_names() {
        assert_eq!(SyscallName::Writev.to_string(), "writev");
        assert_eq!(SyscallName::Gettimeofday.to_string(), "gettimeofday");
    }

    #[test]
    fn all_covers_every_variant_once() {
        let mut names: Vec<String> = SyscallName::ALL.iter().map(|n| n.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), SyscallName::ALL.len());
    }
}
