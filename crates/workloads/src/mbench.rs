//! The two microbenchmarks of Table 1 (§3.1).
//!
//! * **Mbench-Spin** spins the CPU with almost no data access — it gives
//!   the *minimum* sampling observer effect, which the "do no harm"
//!   compensation subtracts.
//! * **Mbench-Data** repeatedly scans 16 MB sequentially — it replaces the
//!   entire cache state between samples, giving the *maximum* observer
//!   effect (the sampling handler's own statistics lines must be re-fetched
//!   on every sample).
//!
//! Both are exposed two ways: as [`Request`]s for the execution engine
//! (request-level experiments) and as address-trace generators for the
//! trace-driven cache hierarchy (the Table 1 cost measurements).

use rbv_mem::trace::{Access, SequentialStream};
use rbv_mem::SegmentProfile;
use rbv_sim::SimRng;

use crate::builder::StageBuilder;
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory};

/// Bytes scanned per iteration by Mbench-Data (the paper's 16 MB).
pub const MBENCH_DATA_BYTES: u64 = 16 << 20;

/// Inherent profile of the spin loop: pure register arithmetic.
pub fn spin_profile() -> SegmentProfile {
    SegmentProfile {
        base_cpi: 0.4,
        l2_refs_per_ins: 0.0,
        working_set_bytes: 4e3,
        reuse_locality: 1.0,
    }
}

/// Inherent profile of the sequential 16 MB scan.
pub fn data_profile() -> SegmentProfile {
    SegmentProfile {
        base_cpi: 0.6,
        // One 64 B line per 16 accesses of 4 B, ~2 instructions each.
        l2_refs_per_ins: 0.03,
        working_set_bytes: MBENCH_DATA_BYTES as f64,
        reuse_locality: 0.05,
    }
}

/// A factory producing fixed-length microbenchmark requests.
#[derive(Debug)]
pub struct Mbench {
    app: AppId,
    iteration_ins: u64,
}

impl Mbench {
    /// Spin variant; each "request" is one timing iteration of
    /// `iteration_ins` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `iteration_ins` is zero.
    pub fn spin(iteration_ins: u64) -> Mbench {
        assert!(iteration_ins > 0, "iteration must be nonzero");
        Mbench {
            app: AppId::MbenchSpin,
            iteration_ins,
        }
    }

    /// Data-scan variant.
    ///
    /// # Panics
    ///
    /// Panics if `iteration_ins` is zero.
    pub fn data(iteration_ins: u64) -> Mbench {
        assert!(iteration_ins > 0, "iteration must be nonzero");
        Mbench {
            app: AppId::MbenchData,
            iteration_ins,
        }
    }
}

impl RequestFactory for Mbench {
    fn app(&self) -> AppId {
        self.app
    }

    fn next_request(&mut self) -> Request {
        let profile = match self.app {
            AppId::MbenchSpin => spin_profile(),
            AppId::MbenchData => data_profile(),
            _ => unreachable!("Mbench only builds microbenchmarks"),
        };
        let mut rng = SimRng::seed_from(0); // no stochastic content
        let mut b = StageBuilder::new(Component::Standalone);
        b.phase(profile, self.iteration_ins, None, None, &mut rng);
        Request {
            app: self.app,
            class: RequestClass::Mbench,
            stages: vec![b.finish()],
        }
    }
}

/// Address trace of Mbench-Data: sequential 4-byte strides over a 16 MB
/// region, wrapping forever (each wrap "repeats the procedure").
pub fn mbench_data_trace(rng: SimRng) -> impl Iterator<Item = Access> {
    SequentialStream::new(0, 4, 0, rng).map(|a| Access {
        addr: a.addr % MBENCH_DATA_BYTES,
        is_write: false,
    })
}

/// Address trace of Mbench-Spin: re-touches a single hot line (its loop
/// counter spills), modeling "almost no data access".
pub fn mbench_spin_trace() -> impl Iterator<Item = Access> {
    std::iter::repeat(Access {
        addr: 0x1000,
        is_write: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_mem::cache::{CacheConfig, SetAssocCache};

    #[test]
    fn profiles_are_valid() {
        assert!(spin_profile().validate().is_ok());
        assert!(data_profile().validate().is_ok());
    }

    #[test]
    fn spin_touches_no_l2() {
        assert_eq!(spin_profile().l2_refs_per_ins, 0.0);
    }

    #[test]
    fn requests_have_single_flat_phase() {
        let mut m = Mbench::spin(1_000_000);
        let r = m.next_request();
        assert!(r.validate().is_ok());
        assert_eq!(r.stages[0].phases.len(), 1);
        assert_eq!(r.total_instructions().get(), 1_000_000);
        assert_eq!(r.app, AppId::MbenchSpin);

        let mut d = Mbench::data(500_000);
        assert_eq!(d.next_request().app, AppId::MbenchData);
    }

    #[test]
    fn data_trace_wraps_at_16mb() {
        let addrs: Vec<u64> = mbench_data_trace(SimRng::seed_from(1))
            .take((MBENCH_DATA_BYTES / 4 + 2) as usize)
            .map(|a| a.addr)
            .collect();
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[(MBENCH_DATA_BYTES / 4) as usize], 0); // wrapped
        assert!(addrs.iter().all(|&a| a < MBENCH_DATA_BYTES));
    }

    #[test]
    fn data_trace_replaces_entire_cache_state() {
        // The paper: Mbench-Data "very quickly replaces the entire cache
        // state". One full scan through a 256 KB cache must evict any
        // previously resident line.
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 256 << 10,
            associativity: 8,
            line_bytes: 64,
        });
        let marker = 0x2000_0000u64; // outside the scan region
        c.access(marker, 0);
        assert!(c.contains(marker));
        for a in mbench_data_trace(SimRng::seed_from(2)).take((MBENCH_DATA_BYTES / 4) as usize) {
            c.access(a.addr, 0);
        }
        assert!(!c.contains(marker), "scan should have evicted the marker");
    }

    #[test]
    fn spin_trace_stays_on_one_line() {
        let mut c = SetAssocCache::new(CacheConfig {
            size_bytes: 4 << 10,
            associativity: 2,
            line_bytes: 64,
        });
        for a in mbench_spin_trace().take(10_000) {
            c.access(a.addr, 0);
        }
        assert_eq!(c.misses(), 1, "only the cold miss");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_iteration_panics() {
        Mbench::spin(0);
    }
}
