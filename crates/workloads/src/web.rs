//! Apache web server serving the SPECweb99 static content mix (§2.1).
//!
//! SPECweb99's static portion has four file classes spanning 100 B to
//! 900 KB; the class mix is strongly skewed toward small files. A request
//! walks the classic accept → parse → stat/open → write headers → send
//! loop → finish pipeline. Two calibration anchors from the paper:
//!
//! * requests execute "a few hundred thousand instructions" (Figure 2);
//! * `writev` (header write) signals a *large CPI increase* while `lseek`
//!   and `stat` signal decreases (Table 2) — the phase CPIs below are laid
//!   out to reproduce those transition signs.

use rand::Rng;
use rbv_sim::SimRng;

use crate::builder::{jittered_ins, profile, StageBuilder};
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// SPECweb99 static file class mix, percent: 35 / 50 / 14 / 1.
const CLASS_MIX: [(u8, u32); 4] = [(0, 35), (1, 50), (2, 14), (3, 1)];

/// Base file size per class, bytes (class files are `base * 1..=9`).
const CLASS_BASE_BYTES: [u64; 4] = [100, 1_000, 10_000, 100_000];

/// Request generator for the Apache/SPECweb99 model.
#[derive(Debug)]
pub struct WebServer {
    rng: SimRng,
    scale: f64,
    parse_mix: SyscallMix,
    send_mix: SyscallMix,
}

impl WebServer {
    /// Creates the generator. `scale` multiplies instruction counts
    /// (1.0 = paper scale); use small values for fast tests.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> WebServer {
        assert!(scale > 0.0, "scale must be positive");
        WebServer {
            rng: SimRng::seed_from(seed ^ 0x8EB0),
            scale,
            parse_mix: SyscallMix::new(&[
                (SyscallName::Read, 5),
                (SyscallName::Gettimeofday, 3),
                (SyscallName::Stat, 1),
            ]),
            send_mix: SyscallMix::new(&[
                (SyscallName::Write, 6),
                (SyscallName::Sendto, 2),
                (SyscallName::Gettimeofday, 1),
            ]),
        }
    }

    /// Draws the file class according to the SPECweb99 mix.
    fn draw_class(&mut self) -> u8 {
        let mut pick = self.rng.gen_range(0..100u32);
        for &(class, w) in &CLASS_MIX {
            if pick < w {
                return class;
            }
            pick -= w;
        }
        unreachable!()
    }

    /// Builds a request for a specific file class (for experiments that
    /// need a fixed class).
    pub fn request_of_class(&mut self, class: u8) -> Request {
        assert!(class < 4, "SPECweb99 has classes 0..4");
        let file_bytes = CLASS_BASE_BYTES[class as usize] * self.rng.gen_range(1..=9u64);
        let s = self.scale;
        let rng = &mut self.rng;

        let fine_gaps = GapProcess::exponential(6_000.0 * s.max(0.05));
        let mut b = StageBuilder::new(Component::Standalone);

        // accept + parse: branchy string matching over the HTTP request.
        b.phase(
            profile(1.4, 0.005, 128e3, 0.80, 0.10, rng),
            jittered_ins((18_000.0 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Accept),
            Some((&fine_gaps, &self.parse_mix)),
            rng,
        );
        // stat + open the target file: cheap metadata work (CPI drops).
        b.phase(
            profile(1.0, 0.003, 64e3, 0.85, 0.10, rng),
            jittered_ins((6_000.0 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Stat),
            None,
            rng,
        );
        // writev: building + writing HTTP headers — fragmented piecemeal
        // memory accesses, the paper's example of a high-CPI region.
        b.phase(
            profile(3.9, 0.008, 48e3, 0.60, 0.12, rng),
            jittered_ins((9_000.0 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Writev),
            None,
            rng,
        );
        // send loop: streaming the file body (CPI drops back down).
        let send_ins = ((600.0 * (file_bytes as f64 / 1024.0) + 4_000.0) * s) as u64 + 1;
        b.phase(
            profile(0.85, 0.005, file_bytes as f64, 0.50, 0.10, rng),
            jittered_ins(send_ins, 0.10, rng),
            Some(SyscallName::Lseek),
            Some((
                &GapProcess::exponential(14_000.0 * s.max(0.05)),
                &self.send_mix,
            )),
            rng,
        );
        // poll for more pipelined requests / keepalive bookkeeping.
        b.phase(
            profile(1.9, 0.004, 64e3, 0.80, 0.10, rng),
            jittered_ins((7_000.0 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Poll),
            None,
            rng,
        );
        // connection shutdown + access-log append.
        b.phase(
            profile(2.1, 0.004, 64e3, 0.80, 0.10, rng),
            jittered_ins((3_000.0 * s) as u64 + 1, 0.15, rng),
            Some(SyscallName::Shutdown),
            None,
            rng,
        );

        Request {
            app: AppId::WebServer,
            class: RequestClass::WebFile(class),
            stages: vec![b.finish()],
        }
    }
}

impl RequestFactory for WebServer {
    fn app(&self) -> AppId {
        AppId::WebServer
    }

    fn next_request(&mut self) -> Request {
        let class = self.draw_class();
        self.request_of_class(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbv_sim::Instructions;

    #[test]
    fn requests_are_valid() {
        let mut w = WebServer::new(1, 1.0);
        for _ in 0..50 {
            let r = w.next_request();
            assert!(r.validate().is_ok());
            assert_eq!(r.app, AppId::WebServer);
        }
    }

    #[test]
    fn request_length_is_a_few_hundred_thousand_instructions() {
        // Figure 2: "a web server request typically executes a few hundred
        // thousand instructions".
        let mut w = WebServer::new(2, 1.0);
        let lens: Vec<u64> = (0..200)
            .map(|_| w.next_request().total_instructions().get())
            .collect();
        let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
        assert!((40_000.0..600_000.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn class_mix_matches_specweb99() {
        let mut w = WebServer::new(3, 0.1);
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            match w.next_request().class {
                RequestClass::WebFile(c) => counts[c as usize] += 1,
                other => panic!("unexpected class {other}"),
            }
        }
        assert!((1_200..1_600).contains(&counts[0]), "{counts:?}");
        assert!((1_800..2_200).contains(&counts[1]), "{counts:?}");
        assert!((400..720).contains(&counts[2]), "{counts:?}");
        assert!(counts[3] < 120, "{counts:?}");
    }

    #[test]
    fn writev_phase_has_highest_base_cpi() {
        let mut w = WebServer::new(4, 1.0);
        let r = w.request_of_class(1);
        let stage = &r.stages[0];
        let writev_at = stage
            .syscalls
            .iter()
            .find(|e| e.name == SyscallName::Writev)
            .expect("writev present")
            .at_ins;
        let writev_phase = stage.phase_at(writev_at);
        for p in &stage.phases {
            assert!(writev_phase.profile.base_cpi >= p.profile.base_cpi - 1e-9);
        }
    }

    #[test]
    fn larger_class_means_longer_request() {
        let mut w = WebServer::new(5, 1.0);
        let avg = |w: &mut WebServer, c: u8| {
            (0..30)
                .map(|_| w.request_of_class(c).total_instructions().get())
                .sum::<u64>() as f64
                / 30.0
        };
        let small = avg(&mut w, 0);
        let big = avg(&mut w, 3);
        assert!(big > small * 2.0, "class3 {big} vs class0 {small}");
    }

    #[test]
    fn scale_shrinks_requests() {
        let mut full = WebServer::new(6, 1.0);
        let mut tiny = WebServer::new(6, 0.05);
        let f = full.next_request().total_instructions().get();
        let t = tiny.next_request().total_instructions().get();
        assert!(t < f / 5, "scaled {t} vs full {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WebServer::new(7, 1.0);
        let mut b = WebServer::new(7, 1.0);
        assert_eq!(a.next_request(), b.next_request());
    }

    #[test]
    fn syscalls_are_frequent() {
        // Figure 4: the web server is the most syscall-dense application.
        let mut w = WebServer::new(8, 1.0);
        let r = w.request_of_class(2);
        let total = r.total_instructions().get();
        let count = r.syscall_names().len() as u64;
        let mean_gap = total / count.max(1);
        assert!(mean_gap < 30_000, "mean syscall gap {mean_gap} ins");
    }

    #[test]
    fn first_syscall_is_accept_at_zero() {
        let mut w = WebServer::new(9, 1.0);
        let r = w.next_request();
        let first = r.stages[0].syscalls.first().unwrap();
        assert_eq!(first.name, SyscallName::Accept);
        assert_eq!(first.at_ins, Instructions::ZERO);
    }

    #[test]
    #[should_panic(expected = "classes 0..4")]
    fn bad_class_panics() {
        WebServer::new(10, 1.0).request_of_class(4);
    }
}
