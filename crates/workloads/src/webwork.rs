//! WeBWorK user-content-driven online teaching application (§2.1).
//!
//! WeBWorK interprets teacher-supplied problem scripts (≈3,000 problem
//! sets at the real site) through a stack of fine-grained Perl modules.
//! Load-bearing properties reproduced here:
//!
//! * requests are *long* — hundreds of millions of instructions (Figure 2
//!   shows a ~600 M-instruction example);
//! * every request begins with a common session/Moodle prefix whose
//!   processing is nearly identical across requests — which is why online
//!   signature identification fails for WeBWorK in Figure 10;
//! * the later portion executes many fine-grained interpreter/rendering
//!   phases with *unstable* CPI (Figure 2), defeating long-stable-phase
//!   assumptions;
//! * working sets are small and reference rates low: math computation and
//!   rendering are compute-bound, so WeBWorK is essentially immune to
//!   multicore cache contention (Figure 1) and shows long syscall-free
//!   stretches (Figure 4);
//! * problem popularity is Zipf-skewed (user-content-driven traffic).

use rand::Rng;
use rand_distr::{Distribution, Zipf};
use rbv_sim::SimRng;

use crate::builder::{jittered, jittered_ins, profile, StageBuilder};
use crate::request::{AppId, Component, Request, RequestClass, RequestFactory};
use crate::syscalls::{GapProcess, SyscallMix, SyscallName};

/// Number of teacher-created problems in the modeled site.
pub const PROBLEM_COUNT: u32 = 3_000;

/// Request generator for the WeBWorK model.
#[derive(Debug)]
pub struct Webwork {
    rng: SimRng,
    scale: f64,
    popularity: Zipf<f64>,
    quiet_mix: SyscallMix,
}

impl Webwork {
    /// Creates the generator; `scale` multiplies instruction counts.
    /// WeBWorK requests are enormous (hundreds of M instructions at paper
    /// scale); most experiments run them scaled down.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(seed: u64, scale: f64) -> Webwork {
        assert!(scale > 0.0, "scale must be positive");
        Webwork {
            rng: SimRng::seed_from(seed ^ 0x3e88),
            scale,
            popularity: Zipf::new(PROBLEM_COUNT as u64, 0.9)
                .unwrap_or_else(|_| unreachable!("constant zipf parameters are valid")),
            quiet_mix: SyscallMix::new(&[
                (SyscallName::Read, 3),
                (SyscallName::Brk, 2),
                (SyscallName::Open, 1),
                (SyscallName::Stat, 1),
                (SyscallName::Gettimeofday, 2),
            ]),
        }
    }

    /// Builds a request for a specific problem identifier.
    ///
    /// # Panics
    ///
    /// Panics if `problem` is not in `1..=PROBLEM_COUNT`.
    pub fn request_of_problem(&mut self, problem: u32) -> Request {
        assert!(
            (1..=PROBLEM_COUNT).contains(&problem),
            "problem id out of range"
        );
        let s = self.scale;
        // Long quiet stretches; ~81% of instants still see a call within
        // 1 ms (Figure 4).
        let gaps = GapProcess {
            short_mean_ins: 80_000.0 * s.max(0.005),
            long_mean_ins: 1_400_000.0 * s.max(0.005),
            short_weight: 0.55,
        };
        let mix = self.quiet_mix.clone();
        let rng = &mut self.rng;

        let mut b = StageBuilder::new(Component::Standalone);

        // --- Common prefix: session validation, Moodle course lookup,
        // translator setup. Identical processing for every request: no
        // jitter at all (the Figure 10 failure mode requires
        // indistinguishable early executions).
        const PREFIX: [(f64, f64, f64, f64, f64); 4] = [
            (1.35, 0.0008, 512e3, 0.96, 2.5e6),
            (1.15, 0.0005, 256e3, 0.97, 3.0e6),
            (1.50, 0.0012, 1.0e6, 0.95, 2.0e6),
            (1.25, 0.0006, 384e3, 0.97, 2.5e6),
        ];
        for (base, refs, ws, loc, ins) in PREFIX {
            b.phase(
                profile(base, refs, ws, loc, 0.0, rng),
                (ins * s) as u64 + 1,
                None,
                Some((&gaps, &mix)),
                rng,
            );
        }

        // --- Problem body: deterministic per-problem structure with small
        // per-request jitter. Per-problem RNG derived from the identifier.
        let mut prng = SimRng::seed_from(0x3e88_0000 + problem as u64);
        // Total body length: log-normal around ~450 M instructions,
        // clamped into the observed 120 M – 1.1 B band.
        let body_ins = {
            let ln = 450e6 * (prng.gen_range(-1.0..1.0f64) * 0.65).exp();
            ln.clamp(120e6, 1.1e9)
        };
        let body_ins = jittered(body_ins, 0.06, rng) * s;

        // Three acts: setup (stable), computation, rendering (unstable,
        // fine-grained). Shares of the body length.
        let acts = [
            // (share, mean phase len, cpi lo..hi, refs lo..hi, jitter)
            (0.25, 4.0e6, (1.0, 1.4), (0.0003, 0.0010), 0.05),
            (0.40, 2.0e6, (1.0, 1.6), (0.0003, 0.0015), 0.08),
            (0.35, 0.7e6, (1.1, 2.1), (0.0005, 0.0030), 0.12),
        ];
        for (share, mean_len, (clo, chi), (rlo, rhi), jit) in acts {
            let act_ins = body_ins * share;
            let mut done = 0.0f64;
            let mut heavy_burst = 0u32;
            while done < act_ins {
                let len = (mean_len * s * prng.gen_range(0.5..1.8))
                    .min(act_ins - done)
                    .max(1.0);
                let base = prng.gen_range(clo..chi);
                // A small fraction of rendering stretches touch larger
                // graphics buffers, in bursts of several consecutive
                // phases: the rare sustained periods where a WeBWorK
                // request feels multicore contention (the Figure 9 anomaly
                // regions and the §5.2 high-usage periods) without moving
                // the app's contention-immune CPI distribution (Figure 1).
                if heavy_burst == 0 && jit > 0.1 && prng.gen::<f64>() < 0.025 {
                    heavy_burst = prng.gen_range(3..9);
                }
                let heavy = heavy_burst > 0;
                heavy_burst = heavy_burst.saturating_sub(1);
                let (refs, ws, loc) = if heavy {
                    (
                        prng.gen_range(0.003..0.005),
                        prng.gen_range(4e6..8e6),
                        prng.gen_range(0.72..0.82),
                    )
                } else {
                    (
                        prng.gen_range(rlo..rhi),
                        prng.gen_range(128e3..2e6),
                        prng.gen_range(0.92..0.98),
                    )
                };
                b.phase(
                    profile(base, refs, ws, loc, jit, rng),
                    jittered_ins(len as u64 + 1, 0.05, rng),
                    None,
                    Some((&gaps, &mix)),
                    rng,
                );
                done += len;
            }
        }

        // Render the final page back to the web server.
        b.phase(
            profile(1.8, 0.0020, 512e3, 0.9, 0.08, rng),
            jittered_ins((1.5e6 * s) as u64 + 1, 0.10, rng),
            Some(SyscallName::Writev),
            None,
            rng,
        );

        Request {
            app: AppId::Webwork,
            class: RequestClass::WebworkProblem(problem),
            stages: vec![b.finish()],
        }
    }
}

impl RequestFactory for Webwork {
    fn app(&self) -> AppId {
        AppId::Webwork
    }

    fn next_request(&mut self) -> Request {
        let problem = self.popularity.sample(&mut self.rng) as u32;
        self.request_of_problem(problem.clamp(1, PROBLEM_COUNT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Paper-scale requests are huge; tests use a small scale.
    const S: f64 = 0.02;

    #[test]
    fn requests_are_valid() {
        let mut w = Webwork::new(1, S);
        for _ in 0..10 {
            assert!(w.next_request().validate().is_ok());
        }
    }

    #[test]
    fn paper_scale_requests_run_hundreds_of_millions_of_instructions() {
        let mut w = Webwork::new(2, 1.0);
        let lens: Vec<u64> = (0..8)
            .map(|_| w.next_request().total_instructions().get())
            .collect();
        let mean = lens.iter().sum::<u64>() as f64 / lens.len() as f64;
        assert!(
            (1.5e8..1.2e9).contains(&mean),
            "mean length {mean}, lens {lens:?}"
        );
    }

    #[test]
    fn prefix_is_identical_across_problems() {
        // The Figure 10 failure mode: all requests share the same early
        // processing regardless of problem.
        let mut w = Webwork::new(3, S);
        let a = w.request_of_problem(1);
        let b = w.request_of_problem(2_999);
        let pa = &a.stages[0].phases[..4];
        let pb = &b.stages[0].phases[..4];
        for (x, y) in pa.iter().zip(pb) {
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.end_ins, y.end_ins);
        }
    }

    #[test]
    fn same_problem_requests_resemble_each_other() {
        let mut w = Webwork::new(4, S);
        let a = w.request_of_problem(42);
        let b = w.request_of_problem(42);
        assert_ne!(a, b); // jitter individualizes
        let (la, lb) = (
            a.total_instructions().get() as f64,
            b.total_instructions().get() as f64,
        );
        assert!((la / lb - 1.0).abs() < 0.4, "lengths {la} vs {lb}");
    }

    #[test]
    fn different_problems_differ_in_length() {
        let mut w = Webwork::new(5, S);
        let lens: Vec<u64> = (1..=20)
            .map(|p| w.request_of_problem(p * 100).total_instructions().get())
            .collect();
        let min = *lens.iter().min().unwrap() as f64;
        let max = *lens.iter().max().unwrap() as f64;
        assert!(max > min * 1.5, "problem lengths too uniform: {lens:?}");
    }

    #[test]
    fn late_phases_are_finer_grained_than_early_ones() {
        // Figure 2: the later portion exhibits unstable, fine variation.
        let mut w = Webwork::new(6, 1.0);
        let r = w.request_of_problem(7);
        let phases = &r.stages[0].phases;
        let n = phases.len();
        assert!(n > 50, "expected many phases, got {n}");
        let len_of = |i: usize| {
            let start = if i == 0 {
                0
            } else {
                phases[i - 1].end_ins.get()
            };
            (phases[i].end_ins.get() - start) as f64
        };
        let third = n / 3;
        let early: f64 = (1..third).map(len_of).sum::<f64>() / (third - 1) as f64;
        let late: f64 = ((2 * third)..n - 1).map(len_of).sum::<f64>() / (n - 1 - 2 * third) as f64;
        assert!(
            late < early,
            "late {late} should be finer than early {early}"
        );
    }

    #[test]
    fn working_sets_stay_mostly_small() {
        // Cache-light execution => multicore immunity (Figure 1). A small
        // fraction of heavy rendering phases is allowed (Figure 9), but
        // the instruction-weighted bulk must stay tiny.
        let mut w = Webwork::new(7, S);
        let r = w.next_request();
        let mut heavy_ins = 0u64;
        let mut prev = 0u64;
        for p in &r.stages[0].phases {
            assert!(p.profile.l2_refs_per_ins < 0.011);
            let len = p.end_ins.get() - prev;
            prev = p.end_ins.get();
            if p.profile.working_set_bytes > 2e6 + 1.0 {
                heavy_ins += len;
            }
        }
        let total = r.total_instructions().get();
        assert!(
            (heavy_ins as f64) < 0.10 * total as f64,
            "heavy phases {heavy_ins} of {total}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let mut w = Webwork::new(8, 0.002);
        let mut top10 = 0usize;
        let n = 800;
        for _ in 0..n {
            if let RequestClass::WebworkProblem(p) = w.next_request().class {
                if p <= 10 {
                    top10 += 1;
                }
            }
        }
        // Zipf(0.9) over 3000: the top 10 problems draw far more than the
        // uniform 0.3%.
        assert!(top10 > n / 40, "top-10 share too small: {top10}/{n}");
    }

    #[test]
    #[should_panic(expected = "problem id out of range")]
    fn bad_problem_panics() {
        Webwork::new(9, 1.0).request_of_problem(0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Webwork::new(10, S);
        let mut b = Webwork::new(10, S);
        assert_eq!(a.next_request(), b.next_request());
    }
}
